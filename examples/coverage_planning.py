"""Coverage planning: pick a deployment density for a target sensing guarantee.

The Corollary 3.4 question in operational form: "what density λ do I need so
that the probability of a 2x2 blind spot (a square with no connected sensor)
is below 1%?"  The script sweeps λ, measures the empty-box probability of
the resulting UDG-SENS networks and reports the smallest density meeting the
target, together with the fitted decay rates showing the paper's
sharper-decay-with-density claim.

Run with::

    python examples/coverage_planning.py
"""

import numpy as np

from repro import Rect, build_udg_sens
from repro.analysis.tables import format_table
from repro.core.coverage import empty_box_probability, measure_coverage

WINDOW = Rect(0, 0, 26.0, 26.0)
BLIND_SPOT_SIDE = 2.0
TARGET_PROBABILITY = 0.01
DENSITIES = [8.0, 12.0, 16.0, 20.0, 28.0]
SEED = 2024


def main() -> None:
    rng = np.random.default_rng(SEED)
    rows = []
    chosen = None
    for lam in DENSITIES:
        net = build_udg_sens(intensity=lam, window=WINDOW, seed=SEED + int(lam),
                             build_base_graph=False)
        sens_points = net.sens.graph.points
        p_blind = empty_box_probability(
            sens_points, WINDOW, BLIND_SPOT_SIDE, n_boxes=600, rng=rng
        )
        report = measure_coverage(
            sens_points, WINDOW, box_sizes=[0.75, 1.0, 1.5, 2.0, 2.5], n_boxes=400, rng=rng
        )
        rows.append(
            {
                "lambda": lam,
                "deployed": net.n_deployed,
                "sens_nodes": net.n_sens_nodes,
                "good_tiles": f"{net.fraction_good_tiles:.2f}",
                "P(blind 2x2 spot)": p_blind,
                "decay_rate": report.decay_rate,
            }
        )
        if chosen is None and p_blind <= TARGET_PROBABILITY:
            chosen = lam

    print(format_table(rows, title="Coverage planning sweep (UDG-SENS)"))
    if chosen is None:
        print(f"\nNo probed density met the target "
              f"P(blind {BLIND_SPOT_SIDE:g}x{BLIND_SPOT_SIDE:g} spot) <= {TARGET_PROBABILITY}.")
    else:
        print(f"\nSmallest probed density meeting the target: lambda = {chosen:g} "
              f"(P <= {TARGET_PROBABILITY}).")
    print("Note how the decay rate grows with lambda — the paper's monotone-coverage claim.")


if __name__ == "__main__":
    main()
