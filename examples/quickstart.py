"""Quickstart: build UDG-SENS on a Poisson deployment and inspect its properties.

Run with::

    python examples/quickstart.py

The script reproduces, on one random deployment, the headline story of the
paper: deploy densely, keep only a sparse degree-≤4 overlay of representative
and relay nodes, and still get a connected, well-covering, low-stretch
network while most nodes can switch themselves off.
"""

import numpy as np

from repro import Rect, build_udg_sens, measure_coverage, measure_stretch
from repro.analysis.tables import format_table

SEED = 7
WINDOW = Rect(0.0, 0.0, 26.0, 26.0)
INTENSITY = 20.0  # nodes per unit area (λ)


def main() -> None:
    rng = np.random.default_rng(SEED)

    print(f"Deploying a Poisson({INTENSITY}) sensor field on a "
          f"{WINDOW.width:g}x{WINDOW.height:g} region ...")
    net = build_udg_sens(intensity=INTENSITY, window=WINDOW, seed=SEED)

    summary = net.summary()
    print(format_table([summary], title="\n== Network summary =="))

    print("\nKey facts:")
    print(f"  deployed nodes              : {net.n_deployed}")
    print(f"  good tiles                  : {net.classification.n_good} / {net.tiling.n_tiles}"
          f"  ({net.fraction_good_tiles:.1%})")
    print(f"  nodes in UDG-SENS           : {net.n_sens_nodes}"
          f"  ({net.participation_fraction:.1%} of deployed)")
    print(f"  nodes that can switch off   : {net.unused_fraction:.1%}")
    print(f"  max degree in UDG-SENS      : {net.sens.graph.degrees().max()} (paper bound: 4)")
    print(f"  overlay edges in base UDG   : {bool(net.sens.verify_edges_in_base(net.base_graph).all())}")

    stretch = measure_stretch(net, n_pairs=200, rng=rng)
    print("\n== Distance stretch between tile representatives (P2) ==")
    print(f"  mean stretch : {stretch.mean_stretch:.3f}")
    print(f"  95th pct     : {stretch.quantile(0.95):.3f}")
    print(f"  max stretch  : {stretch.max_stretch:.3f}")

    coverage = measure_coverage(
        net.sens.graph.points, WINDOW, box_sizes=[0.5, 1.0, 1.5, 2.0, 3.0], n_boxes=400, rng=rng
    )
    print("\n== Coverage: probability an l x l box misses the SENS network (P3) ==")
    print(format_table(coverage.as_rows()))
    if np.isfinite(coverage.decay_rate):
        print(f"  fitted exponential decay rate: {coverage.decay_rate:.2f} per unit of box side")


if __name__ == "__main__":
    main()
