"""Collaborative target tracking over NN-SENS (the paper's §1 motivation).

A target moves across the field along a piecewise-linear path.  At every time
step the sensors within sensing range detect it; detections are useful only
if the detecting sensor can relay them over the connected overlay to the
fusion sink, so the script reports both raw detection coverage (any deployed
node) and *network* coverage (nodes of the NN-SENS overlay), plus the relay
cost of shipping the detections to the sink over the overlay.

Run with::

    python examples/target_tracking.py
"""

import numpy as np

from repro import Rect, build_nn_sens
from repro.analysis.tables import format_table
from repro.core.tiles_nn import NNTileSpec
from repro.routing.baselines import shortest_path_route
from repro.simulation.sensing import MovingTarget, SensingField

SEED = 5
K = 240  # comfortably above the k_s threshold so most tiles are good
SENSING_RADIUS = 4.0


def main() -> None:
    spec = NNTileSpec.default()
    side = spec.tile_side * 4
    window = Rect(0, 0, side, side)
    print(f"Building NN-SENS(2, {K}) with a = {spec.a} on a {side:.1f} x {side:.1f} field ...")
    net = build_nn_sens(k=K, window=window, seed=SEED, spec=spec, build_base_graph=False)
    overlay = net.sens
    print(f"  deployed nodes: {net.n_deployed}, overlay nodes: {overlay.n_nodes}, "
          f"good tiles: {net.classification.n_good}/{net.tiling.n_tiles}")

    field = SensingField(window, sensing_radius=SENSING_RADIUS)
    target = MovingTarget(
        np.array(
            [
                [0.1 * side, 0.15 * side],
                [0.8 * side, 0.3 * side],
                [0.6 * side, 0.85 * side],
                [0.15 * side, 0.7 * side],
            ]
        ),
        speed=side / 40.0,
    )

    overlay_points = overlay.graph.points
    sink = int(np.argmin(np.linalg.norm(overlay_points - overlay_points.mean(axis=0), axis=1)))

    rows = []
    detected_any, detected_overlay, relayed, total_hops = 0, 0, 0, 0
    for step, position in enumerate(target.positions()):
        any_detectors = field.detectors_of(net.points, position)
        overlay_detectors = field.detectors_of(overlay_points, position)
        detected_any += bool(len(any_detectors))
        detected_overlay += bool(len(overlay_detectors))
        if len(overlay_detectors):
            # The nearest overlay detector relays the detection to the sink.
            reporter = int(overlay_detectors[
                int(np.argmin(np.linalg.norm(overlay_points[overlay_detectors] - position, axis=1)))
            ])
            route = shortest_path_route(overlay.graph, reporter, sink)
            if route.success:
                relayed += 1
                total_hops += route.hops
        if step % 8 == 0:
            rows.append(
                {
                    "step": step,
                    "target_x": round(float(position[0]), 1),
                    "target_y": round(float(position[1]), 1),
                    "deployed_detectors": len(any_detectors),
                    "overlay_detectors": len(overlay_detectors),
                }
            )
    steps = step + 1

    print(format_table(rows, title="\nSampled tracking timeline"))
    print("\n== Tracking summary ==")
    print(f"  time steps                      : {steps}")
    print(f"  detected by any deployed node   : {detected_any / steps:.1%}")
    print(f"  detected by the NN-SENS overlay : {detected_overlay / steps:.1%}")
    print(f"  detections relayed to the sink  : {relayed / max(detected_overlay, 1):.1%}")
    if relayed:
        print(f"  mean relay hops to the sink     : {total_hops / relayed:.1f}")
    print(
        "\nThe overlay has far fewer detectors per position than the full deployment (it keeps\n"
        "only representatives and relays), yet it still sees the target for most of the path and\n"
        "every detection it makes can actually be delivered over the connected backbone - the\n"
        "paper's point: coverage by *connected* nodes is what matters for the sensing task."
    )


if __name__ == "__main__":
    main()
