"""Serving-mode demo: a client driving the daemon core through a storm.

Stands up the transport-agnostic serving session (the same core behind
``python -m repro.serve``), streams a seeded mobility storm through it —
bursts of moves with duplicate re-reports, light churn, empty ticks —
queries the maintained overlay between ticks, snapshots mid-stream and
proves the restored world answers byte-identically.  Finishes with the
latency/SLO report the ``stats`` op serves in production.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import json
import tempfile

import numpy as np

from repro.analysis.tables import format_table
from repro.serve import LiveWorld, ServeSession, WorldConfig, restore_world
from repro.serve.bench import generate_storm

SEED = 29
N_NODES = 700
SIDE = 8.0
N_TICKS = 20
EVENTS_PER_TICK = 40


def main() -> None:
    rng = np.random.default_rng(SEED)
    initial = rng.uniform(0.0, SIDE, size=(N_NODES, 2))
    config = WorldConfig(window_xmax=SIDE, window_ymax=SIDE)
    storm = generate_storm(N_NODES, N_TICKS, EVENTS_PER_TICK, rng, side=SIDE)
    n_events = sum(len(tick) for tick in storm)
    print(f"Serving {N_NODES} sensors; streaming {n_events} events "
          f"over {N_TICKS} ticks\n")

    with tempfile.TemporaryDirectory() as tmp:
        store = f"{tmp}/snapshots"
        session = ServeSession(LiveWorld(initial, config), snapshot_store=store)
        rows = []
        for tick_no, tick in enumerate(storm):
            for payload in tick:
                result = session.handle_line(json.dumps(payload))
                assert result.immediate is None, "backpressure tripped"
            session.flush()
            if tick_no == N_TICKS // 2:
                reply = json.loads(
                    session.handle_line('{"op": "snapshot"}').immediate
                )
                print(f"snapshot at applied_seq={reply['snapshot_seq']} "
                      f"(digest {reply['digest'][:12]}…)")
            if tick_no % 5 == 4:
                world = session.world
                reps = sorted(world.engine.result().representatives.values())
                # Route between the first rep pair the overlay still connects.
                hops = next(
                    (
                        route["hops"]
                        for i, source in enumerate(reps[:8])
                        for target in reps[i + 1 : 8]
                        for route in [world.route(source, target)]
                        if route["success"] and route["hops"] > 0
                    ),
                    None,
                )
                rows.append({
                    "tick": tick_no,
                    "alive": world.n_alive,
                    "applied_seq": world.applied_seq,
                    "overlay_edges": len(world.engine.result().edges),
                    "route_hops": hops,
                })
        print("\n" + format_table(rows) + "\n")

        # The kill-safe story: a fresh world from the snapshot answers
        # byte-identically to the live one at that seq (the daemon's
        # --restore path replays the tail from here).
        restored = restore_world(store)
        print(f"restored world from snapshot: seq={restored.applied_seq}, "
              f"digest verified byte-identical\n")

        report = json.loads(session.handle_line('{"op": "stats"}').immediate)
        latency = report["latency"]
        print("serving report:")
        print(f"  events applied : {latency['events_applied']}")
        print(f"  ticks          : {latency['ticks']}")
        print(f"  p50 latency    : {latency['p50_ms']} ms")
        print(f"  p99 latency    : {latency['p99_ms']} ms")
        print(f"  sustained rate : {latency['events_per_s']} events/s")
        print(f"  overload drops : {report['rejected_overload']}")


if __name__ == "__main__":
    main()
