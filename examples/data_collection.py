"""Data collection: convergecast energy on UDG-SENS vs the full UDG.

The paper's motivation is energy-efficient multihop relaying.  This workload
makes the comparison concrete: every node in the communication topology
periodically reports to a sink; reports travel along minimum-power routes
(Li–Wan–Wang d^beta metric) and every transmit/receive is charged to the
forwarding node's battery.

Two topologies are compared on the *same* deployment:

* the full unit-disk graph (every node participates and reports), and
* the UDG-SENS overlay (only representatives/relays participate; they serve
  as the backbone for the sensing function while everyone else sleeps).

Run with::

    python examples/data_collection.py
"""

import numpy as np

from repro import Rect, build_udg_sens
from repro.analysis.tables import format_table
from repro.simulation.datacollection import run_convergecast
from repro.simulation.energy import EnergyModel

SEED = 11
WINDOW = Rect(0, 0, 14.0, 14.0)
INTENSITY = 12.0
ROUNDS = 5


def main() -> None:
    net = build_udg_sens(intensity=INTENSITY, window=WINDOW, seed=SEED)
    model = EnergyModel(beta=2.0)

    rows = []
    for name, graph in (("UDG (all nodes report)", net.base_graph),
                        ("UDG-SENS backbone", net.sens.graph)):
        sink = int(np.argmin(np.linalg.norm(graph.points - graph.points.mean(axis=0), axis=1)))
        result = run_convergecast(graph, sink=sink, rounds=ROUNDS, energy_model=model)
        rows.append(
            {
                "topology": name,
                "nodes": graph.n_nodes,
                "edges": graph.n_edges,
                "reports_delivered": result.delivered,
                "mean_hops": round(result.mean_hops, 2),
                "total_energy_mJ": round(result.total_energy * 1e3, 3),
                "energy_per_report_uJ": round(result.energy_per_delivered * 1e6, 1),
                "hotspot_energy_uJ": round(result.max_node_energy * 1e6, 1),
                "est_rounds_to_first_death": round(result.rounds_to_first_death, 0),
            }
        )

    print(format_table(rows, title="Convergecast over one deployment "
                                   f"(lambda={INTENSITY:g}, {ROUNDS} rounds)"))
    print(
        "\nReading the table: the SENS backbone involves an order of magnitude fewer nodes\n"
        "and links, delivers every report it is responsible for, and keeps per-report energy\n"
        "within a small factor of the dense network — while the nodes outside the backbone\n"
        "spend nothing at all, which is where the fleet-level energy saving comes from."
    )


if __name__ == "__main__":
    main()
