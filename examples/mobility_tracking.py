"""Target tracking over a *mobile* sensor field (the dynamics subsystem demo).

The static examples freeze the deployment; here the sensors themselves drift
(random-waypoint mobility) while a target crosses the field.  A
``DynamicSpatialIndex`` absorbs every step as in-place moves, a
``TopologyTracker`` repairs the UDG edge set incrementally, and detection
queries run against the *current* positions — no structure is ever rebuilt
from scratch, and the final state is checked byte-identical to a rebuild.

Run with::

    PYTHONPATH=src python examples/mobility_tracking.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.tiles_udg import UDGTileSpec
from repro.distributed import DistributedRepairEngine
from repro.dynamics import DynamicSpatialIndex, RandomWaypoint, TopologyTracker
from repro.geometry.index import build_index
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.graphs.metrics import largest_component_nodes
from repro.simulation.sensing import MovingTarget

SEED = 11
INTENSITY = 3.0
SIDE = 16.0
RADIO_RANGE = 1.0
SENSING_RADIUS = 2.0
NODE_SPEED = 0.12
N_STEPS = 40


def main() -> None:
    rng = np.random.default_rng(SEED)
    window = Rect(0, 0, SIDE, SIDE)
    pts = poisson_points(window, INTENSITY, rng)
    print(f"Deployed {len(pts)} mobile sensors on a {SIDE:g} x {SIDE:g} field "
          f"(radio range {RADIO_RANGE:g}, sensing radius {SENSING_RADIUS:g})")

    mobility = RandomWaypoint(pts, window, speed_range=(0.5 * NODE_SPEED, 1.5 * NODE_SPEED), rng=rng)
    index = DynamicSpatialIndex(pts, radius=RADIO_RANGE, backend="grid")
    tracker = TopologyTracker(index, RADIO_RANGE)
    target = MovingTarget(
        np.array([[0.1 * SIDE, 0.2 * SIDE], [0.9 * SIDE, 0.4 * SIDE], [0.3 * SIDE, 0.9 * SIDE]]),
        speed=SIDE / N_STEPS * 1.8,
    )

    rows = []
    detected, connected_detections, total_churn = 0, 0, 0
    for step, position in enumerate(target.positions()):
        if step >= N_STEPS:
            break
        index.move(index.ids(), mobility.step(1.0))
        diff = tracker.update()
        total_churn += diff.churn
        detectors = index.query_radius(position, SENSING_RADIUS)
        graph = tracker.graph()
        lcc_ids = index.ids()[largest_component_nodes(graph)]
        in_lcc = np.intersect1d(detectors, lcc_ids)
        detected += bool(len(detectors))
        connected_detections += bool(len(in_lcc))
        if step % 5 == 0:
            rows.append(
                {
                    "step": step,
                    "edges": tracker.n_edges,
                    "edge_churn": diff.churn,
                    "detectors": len(detectors),
                    "connected_detectors": len(in_lcc),
                }
            )

    print(format_table(rows, title="\nSampled timeline (mobile sensors, moving target)"))
    print("\n== Summary ==")
    print(f"  steps simulated                 : {N_STEPS}")
    print(f"  target detected                 : {detected / N_STEPS:.1%} of steps")
    print(f"  detected by a *connected* node  : {connected_detections / N_STEPS:.1%} of steps")
    print(f"  total edge churn                : {total_churn} "
          f"({total_churn / N_STEPS:.1f} edge changes/step, repaired incrementally)")
    print(f"  index maintenance               : {index.stats}")

    rebuilt = build_index(index.positions(), radius=RADIO_RANGE, backend="grid")
    ids = index.ids()
    consistent = all(
        np.array_equal(a, ids[b])
        for a, b in zip(index.neighbour_lists(RADIO_RANGE), rebuilt.neighbour_lists(RADIO_RANGE))
    ) and tracker.matches_recompute()
    print(f"  incremental state == rebuild    : {consistent}")
    print(
        "\nEvery step moved every sensor, yet only boundary-crossing nodes touched the index\n"
        "and only dirty neighbourhoods were re-queried for edges - the same answers as a\n"
        "rebuild-per-step at a fraction of the work (see the registered S02 benchmark)."
    )

    # -- Overlay repair vs rebuild (the distributed construction) -------------
    # Now keep the Figure-7 overlay itself current while a sparse fraction of
    # the field keeps moving: the repair engine re-elects only the tiles each
    # diff touched instead of re-running the whole construction.
    print("\n== Overlay repair vs rebuild (sparse motion, Figure-7 construction) ==")
    spec = UDGTileSpec.default()
    engine = DistributedRepairEngine(index, spec, window)
    full_messages = engine.stats.messages_sent
    repair_messages = dirty_tiles_total = 0
    repair_steps = 10
    for _ in range(repair_steps):
        movers = np.sort(rng.choice(index.ids(), size=max(1, len(index) // 100), replace=False))
        index.move(movers, index.id_positions()[movers] + rng.normal(0, 0.2, (len(movers), 2)))
        dirty, deleted = index.consume_dirty()   # one stream feeds both consumers
        tracker.update(dirty=dirty, deleted=deleted)
        report = engine.update(dirty=dirty, deleted=deleted)
        repair_messages += report.messages
        dirty_tiles_total += report.dirty_tiles
    overlay_consistent = engine.matches_rebuild()
    print(f"  steps repaired                  : {repair_steps} (1% of sensors moving per step)")
    print(f"  tiles re-examined               : {dirty_tiles_total} of "
          f"{engine.tiling.n_tiles * repair_steps} tile-steps")
    print(f"  repair protocol messages        : {repair_messages} total "
          f"(one full build costs {full_messages})")
    print(f"  spliced overlay == full rebuild : {overlay_consistent}")
    print(
        "\nA rebuild-per-step would have paid the full message bill every step; the repair\n"
        "engine paid it once and then only for the dirty tiles (see the S03 benchmark and\n"
        "the M02 workload for the measured gap)."
    )


if __name__ == "__main__":
    main()
