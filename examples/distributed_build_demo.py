"""Distributed construction demo (the Figure-7 algorithm, property P4).

Runs the local-information construction of UDG-SENS on a small deployment,
prints the message/round accounting, and verifies that the result is
identical to the centralized construction — then routes a packet across the
freshly built overlay with the Figure-9 mesh router.

Run with::

    python examples/distributed_build_demo.py

Pass ``--shards N`` to additionally run the domain-decomposed parallel
build (one tile-column block per shard, halo exchange at the seams) and
print its shard-count-invariance certificate against the simulated run.
"""


import argparse

from repro import Rect, build_udg_sens
from repro.analysis.tables import format_table
from repro.distributed.construct import distributed_build
from repro.distributed.sharding import matches_unsharded, sharded_build
from repro.routing.overlay import route_on_overlay

SEED = 3
WINDOW = Rect(0, 0, 12.0, 12.0)
INTENSITY = 22.0


def main(n_shards: int = 0) -> None:
    net = build_udg_sens(intensity=INTENSITY, window=WINDOW, seed=SEED, build_base_graph=False)
    print(f"Deployment: {net.n_deployed} nodes, {net.tiling.n_tiles} tiles "
          f"({net.classification.n_good} good)")

    print("\nRunning the Figure-7 distributed construction "
          "(GPS + one-hop messages only) ...")
    result = distributed_build(net.points, net.spec, WINDOW)

    print(f"  synchronous rounds : {result.stats.rounds}")
    print(f"  messages sent      : {result.stats.messages_sent}"
          f" ({result.stats.messages_sent / net.n_deployed:.1f} per node)")
    print(format_table(
        [{"kind": k, "count": v} for k, v in sorted(result.stats.messages_by_kind.items())],
        title="  messages by kind",
    ))
    print(f"  good tiles found   : {len(result.good_tiles)}")
    print(f"  overlay edges      : {len(result.edges)}")
    print(f"  matches centralized classification : {result.matches_classification(net.classification)}")
    print(f"  matches centralized overlay edges  : {result.matches_overlay(net.overlay)}")

    if n_shards:
        print(f"\nSharded build: {n_shards} column shard(s), halo exchange at the seams ...")
        stitched, info = sharded_build(net.points, net.spec, WINDOW, n_shards=n_shards)
        print(format_table(
            [
                {
                    "shard": shard.shard_id,
                    "owned nodes": shard.n_owned,
                    "halo nodes": shard.n_halo,
                    "wall_s": round(shard.wall_s, 4),
                }
                for shard in info.shards
            ],
            title="  per-shard accounting",
        ))
        print(f"  halo overhead      : {info.halo_overhead:.4f} ghost nodes per owned node")
        print(f"  matches unsharded build (edges, tiles, reps, relays, messages) : "
              f"{matches_unsharded(stitched, result)}")

    # Route a packet between two far-apart good tiles of the overlay just built.
    good = sorted(t for t in net.classification.good_tiles() if t in net.sens.tile_representatives)
    if len(good) >= 2:
        src, tgt = good[0], good[-1]
        route = route_on_overlay(net, src, tgt)
        print("\nRouting a packet across the overlay with the Figure-9 x-y router:")
        print(f"  from tile {src} to tile {tgt}")
        print(f"  delivered          : {route.success}")
        print(f"  overlay hops       : {route.hops}")
        print(f"  lattice probes     : {route.mesh_result.probes}")
        print(f"  route length       : {route.euclidean_length:.2f} "
              f"(straight line {route.straight_line:.2f}, stretch {route.stretch:.2f})")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="also run the domain-decomposed build with N shards and certify it",
    )
    main(n_shards=parser.parse_args().shards)
