"""Uniform spatial hash grid for fixed-radius neighbour queries.

scipy's ``cKDTree`` covers most neighbour queries in the library, but the
distributed-construction simulator needs a structure whose query pattern
mirrors what a sensor node can actually do: enumerate the points that fall in
its own tile / region ("which nodes share my region?") and the points within
its radio range.  A uniform grid keyed by integer cell coordinates supports
both in expected O(1) per query and is trivially vectorised with
``numpy.floor_divide``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.geometry.primitives import as_points

__all__ = ["GridIndex"]


class GridIndex:
    """Bucket points into square cells of a given size.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.
    cell_size:
        Side of the (axis-aligned) hash cells.  For radius-``r`` neighbour
        queries a cell size of ``r`` means only the 3×3 block of cells around
        a query needs scanning.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = as_points(points)
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        if len(self.points):
            keys = np.floor(self.points / self.cell_size).astype(np.int64)
            for idx, (cx, cy) in enumerate(map(tuple, keys)):
                self._cells[(int(cx), int(cy))].append(idx)

    def __len__(self) -> int:
        return len(self.points)

    def cell_of(self, point: Iterable[float]) -> Tuple[int, int]:
        """Integer cell coordinates containing ``point``."""
        x, y = point
        return (int(np.floor(x / self.cell_size)), int(np.floor(y / self.cell_size)))

    def points_in_cell(self, cell: Tuple[int, int]) -> np.ndarray:
        """Indices of points bucketed into ``cell``."""
        return np.asarray(self._cells.get(cell, []), dtype=np.int64)

    def occupied_cells(self) -> List[Tuple[int, int]]:
        """All cells that contain at least one point."""
        return list(self._cells.keys())

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of ``center`` (exact closed ball).

        Scans the minimal block of cells that can contain qualifying points
        and filters by exact squared distance (``d² <= r²``, no tolerance) —
        the same closed-ball predicate ``scipy.spatial.cKDTree`` applies in
        :func:`repro.graphs.udg.udg_edges`, so the distributed simulator and
        the centralized builder agree on every boundary pair.  At
        ``radius == 0`` only exactly coincident points qualify.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        cx, cy = center
        reach = int(np.ceil(radius / self.cell_size))
        base = self.cell_of(center)
        candidates: List[int] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                candidates.extend(self._cells.get((base[0] + dx, base[1] + dy), ()))
        if not candidates:
            return np.empty(0, dtype=np.int64)
        idx = np.asarray(candidates, dtype=np.int64)
        diff = self.points[idx] - np.asarray([cx, cy], dtype=np.float64)
        keep = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return idx[keep]

    def neighbours_of(self, index: int, radius: float, include_self: bool = False) -> np.ndarray:
        """Indices of points within ``radius`` of the stored point ``index``."""
        result = self.query_radius(self.points[index], radius)
        if include_self:
            return result
        return result[result != index]
