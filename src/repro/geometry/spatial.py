"""Backward-compatible home of :class:`GridIndex`.

The implementation moved to :mod:`repro.geometry.index`, which hosts the
pluggable :class:`~repro.geometry.index.SpatialIndex` backend layer (the
vectorised grid, the cKDTree wrapper and the :func:`~repro.geometry.index.build_index`
factory).  This module re-exports :class:`GridIndex` so existing imports keep
working.
"""

from repro.geometry.index import GridIndex

__all__ = ["GridIndex"]
