"""Homogeneous Poisson point processes on rectangular windows.

The paper models sensor deployments as a homogeneous Poisson point process of
intensity ``λ`` on R².  We work on finite rectangular windows; every
quantity the paper measures (tile goodness, stretch, coverage) is local, so a
window that is large relative to the tile size plus an analysis margin is an
adequate stand-in for the infinite process (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.primitives import Rect
from repro.rng import resolve_rng

__all__ = ["PoissonProcess", "poisson_points", "binomial_points"]


def poisson_points(rect: Rect, intensity: float, rng: np.random.Generator) -> np.ndarray:
    """Sample a homogeneous Poisson process of the given ``intensity`` on ``rect``.

    The number of points is Poisson with mean ``intensity * rect.area`` and,
    conditioned on the count, the points are i.i.d. uniform on the window —
    the standard two-step construction.

    Parameters
    ----------
    rect:
        Sampling window.
    intensity:
        Expected number of points per unit area (``λ`` in the paper).
    rng:
        Numpy random generator; all randomness flows through it.

    Returns
    -------
    numpy.ndarray
        ``(n, 2)`` array of point coordinates (possibly ``n == 0``).
    """
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    mean = intensity * rect.area
    n = int(rng.poisson(mean))
    return rect.sample_uniform(n, rng)


def binomial_points(rect: Rect, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample exactly ``n`` uniform points on ``rect`` (a binomial point process).

    Useful for experiments that want to control the node count exactly, e.g.
    finite-network connectivity sweeps in E11.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return rect.sample_uniform(n, rng)


@dataclass
class PoissonProcess:
    """Reusable sampler for a homogeneous Poisson point process.

    Attributes
    ----------
    intensity:
        Points per unit area (``λ``).
    window:
        Rectangular sampling window.
    seed:
        Seed for the internal generator.  Two processes built with the same
        seed generate identical realisations, which the experiment harness
        relies on for paired comparisons (same deployment, different
        topologies).
    """

    intensity: float
    window: Rect
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.intensity < 0:
            raise ValueError("intensity must be non-negative")
        self._rng = resolve_rng(seed=self.seed)

    @property
    def expected_count(self) -> float:
        """Mean number of points per realisation."""
        return self.intensity * self.window.area

    def sample(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw one realisation; uses the instance generator unless ``rng`` is given."""
        return poisson_points(self.window, self.intensity, rng or self._rng)

    def sample_many(self, count: int) -> list[np.ndarray]:
        """Draw ``count`` independent realisations."""
        return [self.sample() for _ in range(count)]

    def thinned(self, keep_probability: float) -> "PoissonProcess":
        """Return an *independent thinning* of this process.

        Thinning a Poisson process with retention probability ``p`` yields a
        Poisson process of intensity ``p·λ``; we exploit this in coverage
        experiments that compare densities on a common footing.
        """
        if not 0.0 <= keep_probability <= 1.0:
            raise ValueError("keep_probability must lie in [0, 1]")
        return PoissonProcess(self.intensity * keep_probability, self.window, seed=self.seed)
