"""Vectorised planar primitives.

All functions accept ``(n, 2)`` float arrays of points and avoid Python-level
loops in hot paths; distance kernels are written so numpy broadcasts do the
work (see the project guide on vectorising loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

__all__ = [
    "Disc",
    "Rect",
    "as_points",
    "squared_distances",
    "pairwise_distances",
    "points_in_disc",
    "points_in_rect",
    "rect_union",
    "distance_to_rect_boundary",
]


def as_points(points: Iterable | np.ndarray) -> np.ndarray:
    """Coerce input into an ``(n, 2)`` float64 array.

    Accepts lists of pairs, a single pair, or an existing array.  A single
    point ``(x, y)`` is promoted to shape ``(1, 2)``.

    Raises
    ------
    ValueError
        If the input cannot be interpreted as planar points.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        if arr.size == 0:
            return arr.reshape(0, 2)
        if arr.shape[0] != 2:
            raise ValueError(f"a single point must have 2 coordinates, got {arr.shape}")
        arr = arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array of planar points, got shape {arr.shape}")
    return arr


def squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between two point sets.

    Parameters
    ----------
    a, b:
        Arrays of shape ``(n, 2)`` and ``(m, 2)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(n, m)`` matrix of squared distances.
    """
    a = as_points(a)
    b = as_points(b)
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Euclidean distance matrix between ``a`` and ``b`` (or ``a`` and itself)."""
    if b is None:
        b = a
    return np.sqrt(squared_distances(a, b))


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[xmin, xmax] × [ymin, ymax]``.

    Used both as the deployment window for point processes and as the tile
    footprint in the SENS constructions.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmax >= self.xmin and self.ymax >= self.ymin):
            raise ValueError(f"degenerate Rect: {self}")

    @classmethod
    def centered(cls, center: Tuple[float, float], width: float, height: float | None = None) -> "Rect":
        """Rectangle of the given ``width``/``height`` centred at ``center``."""
        if height is None:
            height = width
        cx, cy = center
        return cls(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @classmethod
    def square(cls, side: float, origin: Tuple[float, float] = (0.0, 0.0)) -> "Rect":
        """Axis-aligned square of the given ``side`` with lower-left corner at ``origin``."""
        ox, oy = origin
        return cls(ox, oy, ox + side, oy + side)

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def contains(self, points: np.ndarray, closed: bool = True) -> np.ndarray:
        """Boolean mask of points falling inside the rectangle.

        ``closed=True`` (default) includes the boundary.
        """
        pts = as_points(points)
        if closed:
            return (
                (pts[:, 0] >= self.xmin)
                & (pts[:, 0] <= self.xmax)
                & (pts[:, 1] >= self.ymin)
                & (pts[:, 1] <= self.ymax)
            )
        return (
            (pts[:, 0] > self.xmin)
            & (pts[:, 0] < self.xmax)
            & (pts[:, 1] > self.ymin)
            & (pts[:, 1] < self.ymax)
        )

    def shrink(self, margin: float) -> "Rect":
        """Rectangle shrunk by ``margin`` on every side (used to discard boundary effects)."""
        if 2 * margin > min(self.width, self.height):
            raise ValueError("margin larger than half the rectangle extent")
        return Rect(self.xmin + margin, self.ymin + margin, self.xmax - margin, self.ymax - margin)

    def expand(self, margin: float) -> "Rect":
        """Rectangle expanded by ``margin`` on every side."""
        return Rect(self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin)

    def translate(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def sample_uniform(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points uniformly at random from the rectangle."""
        xs = rng.uniform(self.xmin, self.xmax, size=n)
        ys = rng.uniform(self.ymin, self.ymax, size=n)
        return np.column_stack([xs, ys])

    def grid(self, resolution: int) -> np.ndarray:
        """Regular ``resolution × resolution`` grid of cell-centre sample points."""
        xs = np.linspace(self.xmin, self.xmax, resolution, endpoint=False) + self.width / (2 * resolution)
        ys = np.linspace(self.ymin, self.ymax, resolution, endpoint=False) + self.height / (2 * resolution)
        gx, gy = np.meshgrid(xs, ys)
        return np.column_stack([gx.ravel(), gy.ravel()])


@dataclass(frozen=True)
class Disc:
    """Closed disc of radius ``radius`` centred at ``(cx, cy)``."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("disc radius must be non-negative")

    @property
    def center(self) -> np.ndarray:
        return np.array([self.cx, self.cy], dtype=np.float64)

    @property
    def area(self) -> float:
        return float(np.pi * self.radius**2)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the closed disc."""
        pts = as_points(points)
        d2 = (pts[:, 0] - self.cx) ** 2 + (pts[:, 1] - self.cy) ** 2
        return d2 <= self.radius**2 + 1e-12

    def boundary_points(self, n: int) -> np.ndarray:
        """``n`` points evenly spaced on the boundary circle."""
        theta = np.linspace(0.0, 2 * np.pi, n, endpoint=False)
        return np.column_stack(
            [self.cx + self.radius * np.cos(theta), self.cy + self.radius * np.sin(theta)]
        )

    def translate(self, dx: float, dy: float) -> "Disc":
        return Disc(self.cx + dx, self.cy + dy, self.radius)


def points_in_disc(points: np.ndarray, center: Tuple[float, float], radius: float) -> np.ndarray:
    """Convenience wrapper: mask of ``points`` within ``radius`` of ``center``."""
    return Disc(center[0], center[1], radius).contains(points)


def points_in_rect(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Convenience wrapper: mask of ``points`` inside ``rect``."""
    return rect.contains(points)


def rect_union(a: Rect, b: Rect) -> Rect:
    """Bounding box of two rectangles (used for the pair of tiles t ∪ t_r)."""
    return Rect(min(a.xmin, b.xmin), min(a.ymin, b.ymin), max(a.xmax, b.xmax), max(a.ymax, b.ymax))


def distance_to_rect_boundary(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Distance from each (interior) point to the boundary of ``rect``.

    For points outside the rectangle the returned value is negative (the
    negated distance to the rectangle), which is convenient for "largest disc
    centred at p that stays inside the rectangle" computations used by the
    NN-SENS relay regions.
    """
    pts = as_points(points)
    dx = np.minimum(pts[:, 0] - rect.xmin, rect.xmax - pts[:, 0])
    dy = np.minimum(pts[:, 1] - rect.ymin, rect.ymax - pts[:, 1])
    return np.minimum(dx, dy)
