"""Region predicates.

The SENS constructions carve each tile into *regions* (the representative
region ``C0`` and the relay regions ``E_l, E_r, E_t, E_b``; for NN-SENS also
``C_l, C_r, C_t, C_b``).  A region is represented here as a
:class:`RegionPredicate`: a callable that maps an ``(n, 2)`` array of points
to a boolean membership mask.  Predicates compose with intersection, union
and difference, and every predicate carries a bounding box so that areas can
be integrated numerically (:mod:`repro.geometry.integration`).

The trickiest region in the paper is the UDG relay region, defined as "the
intersection of all unit discs centred at points of C0 and of the
neighbouring tile's facing relay region".  :class:`DiscIntersectionPredicate`
implements "within distance r of *every* point of a compact anchor set" by
reducing the universal quantifier to a maximum over the anchor set boundary
(for a convex anchor the farthest anchor point from any query lies on the
anchor's boundary), evaluated against a dense boundary sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.primitives import Disc, Rect, as_points

__all__ = [
    "RegionPredicate",
    "DiscPredicate",
    "AnnulusPredicate",
    "RectPredicate",
    "HalfPlanePredicate",
    "IntersectionPredicate",
    "UnionPredicate",
    "DifferencePredicate",
    "DiscIntersectionPredicate",
    "EmptyPredicate",
]


class RegionPredicate:
    """Base class for planar region membership tests.

    Subclasses implement :meth:`contains` and expose :attr:`bounds`, an
    axis-aligned bounding rectangle that encloses the region (it may be
    loose).  The bounding box is what the numeric area estimators integrate
    over.
    """

    bounds: Rect

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean membership mask for an ``(n, 2)`` point array."""
        raise NotImplementedError

    def __call__(self, points: np.ndarray) -> np.ndarray:
        return self.contains(points)

    # -- composition helpers ------------------------------------------------
    def intersect(self, other: "RegionPredicate") -> "IntersectionPredicate":
        return IntersectionPredicate([self, other])

    def union(self, other: "RegionPredicate") -> "UnionPredicate":
        return UnionPredicate([self, other])

    def minus(self, other: "RegionPredicate") -> "DifferencePredicate":
        return DifferencePredicate(self, other)

    def is_empty(self, resolution: int = 256) -> bool:
        """Heuristic emptiness check on a ``resolution²`` grid over the bounds.

        Used to diagnose the degenerate paper-parameter UDG relay regions
        (DESIGN.md §2).  A ``True`` result means no grid sample fell inside
        the region; for the region shapes used in this library (finite unions
        and intersections of discs and rectangles) that is a reliable
        indicator of zero or near-zero area.
        """
        if self.bounds.area == 0:
            return True
        pts = self.bounds.grid(resolution)
        return not bool(np.any(self.contains(pts)))


def _intersect_bounds(bounds: Sequence[Rect]) -> Rect:
    xmin = max(b.xmin for b in bounds)
    ymin = max(b.ymin for b in bounds)
    xmax = min(b.xmax for b in bounds)
    ymax = min(b.ymax for b in bounds)
    if xmax < xmin or ymax < ymin:
        # Empty intersection: collapse to a degenerate box.
        return Rect(xmin, ymin, xmin, ymin)
    return Rect(xmin, ymin, xmax, ymax)


def _union_bounds(bounds: Sequence[Rect]) -> Rect:
    return Rect(
        min(b.xmin for b in bounds),
        min(b.ymin for b in bounds),
        max(b.xmax for b in bounds),
        max(b.ymax for b in bounds),
    )


@dataclass
class DiscPredicate(RegionPredicate):
    """Closed disc region."""

    disc: Disc

    def __post_init__(self) -> None:
        r = self.disc.radius
        self.bounds = Rect(self.disc.cx - r, self.disc.cy - r, self.disc.cx + r, self.disc.cy + r)

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.disc.contains(points)


@dataclass
class AnnulusPredicate(RegionPredicate):
    """Closed annulus ``inner < d(p, c) <= outer`` centred at ``center``.

    The inner boundary is *open* so that an annulus composed with the disc it
    surrounds forms a partition (a point never belongs to both).
    """

    cx: float
    cy: float
    inner: float
    outer: float

    def __post_init__(self) -> None:
        if not 0 <= self.inner <= self.outer:
            raise ValueError("annulus radii must satisfy 0 <= inner <= outer")
        self.bounds = Rect(
            self.cx - self.outer, self.cy - self.outer, self.cx + self.outer, self.cy + self.outer
        )

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        d2 = (pts[:, 0] - self.cx) ** 2 + (pts[:, 1] - self.cy) ** 2
        return (d2 > self.inner**2) & (d2 <= self.outer**2 + 1e-12)


@dataclass
class RectPredicate(RegionPredicate):
    """Axis-aligned rectangular region."""

    rect: Rect
    closed: bool = True

    def __post_init__(self) -> None:
        self.bounds = self.rect

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.rect.contains(points, closed=self.closed)


@dataclass
class HalfPlanePredicate(RegionPredicate):
    """Half-plane ``a·x + b·y <= c``.

    The bounding box is taken from an explicit ``clip`` rectangle because a
    half-plane is unbounded; callers always intersect half-planes with a tile.
    """

    a: float
    b: float
    c: float
    clip: Rect

    def __post_init__(self) -> None:
        if self.a == 0 and self.b == 0:
            raise ValueError("half-plane normal must be non-zero")
        self.bounds = self.clip

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        return self.a * pts[:, 0] + self.b * pts[:, 1] <= self.c + 1e-12


@dataclass
class IntersectionPredicate(RegionPredicate):
    """Intersection of several regions."""

    parts: Sequence[RegionPredicate]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("intersection of zero regions is undefined here")
        self.bounds = _intersect_bounds([p.bounds for p in self.parts])

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        mask = np.ones(len(pts), dtype=bool)
        for part in self.parts:
            if not mask.any():
                break
            mask &= part.contains(pts)
        return mask


@dataclass
class UnionPredicate(RegionPredicate):
    """Union of several regions."""

    parts: Sequence[RegionPredicate]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("union of zero regions is undefined here")
        self.bounds = _union_bounds([p.bounds for p in self.parts])

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        mask = np.zeros(len(pts), dtype=bool)
        for part in self.parts:
            if mask.all():
                break
            mask |= part.contains(pts)
        return mask


@dataclass
class DifferencePredicate(RegionPredicate):
    """Set difference ``base \\ removed``."""

    base: RegionPredicate
    removed: RegionPredicate

    def __post_init__(self) -> None:
        self.bounds = self.base.bounds

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        return self.base.contains(pts) & ~self.removed.contains(pts)


class EmptyPredicate(RegionPredicate):
    """The empty region (useful as a neutral element and in degeneracy reports)."""

    def __init__(self) -> None:
        self.bounds = Rect(0.0, 0.0, 0.0, 0.0)

    def contains(self, points: np.ndarray) -> np.ndarray:
        return np.zeros(len(as_points(points)), dtype=bool)


class DiscIntersectionPredicate(RegionPredicate):
    """Points within a (possibly anchor-dependent) radius of *every* anchor point.

    Implements regions of the form

    .. math::  \\{ q : \\forall c \\in A,\\  d(q, c) \\le r(c) \\}

    where ``A`` is a compact anchor set approximated by a dense sample
    (typically the boundary of a disc plus its centre) and ``r`` is either a
    constant or a per-anchor radius array.

    This is exactly the shape of the paper's relay regions:

    * UDG-SENS ``E_r``: anchors = all points of ``C0(t)`` (and of the facing
      relay region), constant radius 1 (the UDG connection radius).
    * NN-SENS ``E_r``: anchors = all points of ``C0 ∪ C_r``; the radius of the
      disc anchored at ``c`` is the distance from ``c`` to the boundary of the
      two-tile rectangle ("largest circle centred at c that lies wholly within
      the two tiles").

    For convex anchor sets with a constant radius the binding constraint is
    attained on the anchor boundary, so sampling the boundary densely gives a
    conservative, convergent approximation; we additionally include interior
    anchor samples when per-anchor radii are supplied because the binding
    anchor need not be extremal in that case.
    """

    def __init__(self, anchors: np.ndarray, radii: float | np.ndarray, bounds: Rect) -> None:
        self.anchors = as_points(anchors)
        if len(self.anchors) == 0:
            raise ValueError("anchor set must be non-empty")
        radii_arr = np.asarray(radii, dtype=np.float64)
        if radii_arr.ndim == 0:
            radii_arr = np.full(len(self.anchors), float(radii_arr))
        if radii_arr.shape != (len(self.anchors),):
            raise ValueError("radii must be a scalar or one value per anchor")
        if np.any(radii_arr < 0):
            raise ValueError("radii must be non-negative")
        self.radii = radii_arr
        self.bounds = bounds

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = as_points(points)
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        # Process in chunks to bound the (n_points × n_anchors) temporary.
        chunk = max(1, int(2_000_000 / max(len(self.anchors), 1)))
        out = np.empty(len(pts), dtype=bool)
        r2 = self.radii**2
        for start in range(0, len(pts), chunk):
            block = pts[start : start + chunk]
            diff = block[:, None, :] - self.anchors[None, :, :]
            d2 = np.einsum("ijk,ijk->ij", diff, diff)
            out[start : start + chunk] = np.all(d2 <= r2[None, :] + 1e-12, axis=1)
        return out
