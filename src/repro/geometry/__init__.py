"""Planar geometry substrate.

This package provides the low-level geometric machinery the paper's
constructions rest on:

* :mod:`repro.geometry.primitives` — points, distance kernels, discs,
  rectangles and axis-aligned windows, all vectorised over numpy arrays.
* :mod:`repro.geometry.poisson` — homogeneous Poisson point processes on
  rectangular windows (the node deployment model of the paper).
* :mod:`repro.geometry.predicates` — membership predicates for the tile
  regions (discs, annuli, lenses, intersections of disc families).
* :mod:`repro.geometry.integration` — numeric area computation for arbitrary
  predicates (uniform grid and Monte-Carlo estimators with error bounds).
* :mod:`repro.geometry.index` — the pluggable :class:`SpatialIndex` backend
  layer (vectorised uniform hash grid and cKDTree wrapper) answering
  fixed-radius neighbour queries, in bulk, in (expected) linear time.

Everything here is deterministic given a :class:`numpy.random.Generator`
seed; no global random state is used anywhere in the library.
"""

from repro.geometry.index import BACKENDS, GridIndex, KDTreeIndex, SpatialIndex, build_index
from repro.geometry.integration import estimate_area_grid, estimate_area_monte_carlo
from repro.geometry.poisson import PoissonProcess, poisson_points
from repro.geometry.predicates import (
    AnnulusPredicate,
    DiscIntersectionPredicate,
    DiscPredicate,
    HalfPlanePredicate,
    IntersectionPredicate,
    DifferencePredicate,
    RegionPredicate,
    UnionPredicate,
)
from repro.geometry.primitives import (
    Disc,
    Rect,
    pairwise_distances,
    points_in_disc,
    points_in_rect,
    squared_distances,
)

__all__ = [
    "Disc",
    "Rect",
    "pairwise_distances",
    "points_in_disc",
    "points_in_rect",
    "squared_distances",
    "PoissonProcess",
    "poisson_points",
    "RegionPredicate",
    "DiscPredicate",
    "AnnulusPredicate",
    "HalfPlanePredicate",
    "IntersectionPredicate",
    "UnionPredicate",
    "DifferencePredicate",
    "DiscIntersectionPredicate",
    "estimate_area_grid",
    "estimate_area_monte_carlo",
    "BACKENDS",
    "GridIndex",
    "KDTreeIndex",
    "SpatialIndex",
    "build_index",
]
