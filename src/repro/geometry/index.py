"""Pluggable spatial-index backends with vectorised bulk queries.

Every layer of the library ultimately reduces to fixed-radius neighbour
queries over planar point sets: the UDG builder enumerates all pairs within
the connection radius, the distributed simulator checks one-hop locality, the
sensing model asks which sensors cover an event, and continuum percolation
derives adjacency from the same closed ball.  This module gives those
consumers one interface — :class:`SpatialIndex` — with two interchangeable
backends:

* :class:`GridIndex` — a uniform spatial hash.  The cell table is built with
  one ``np.unique`` over packed integer cell keys (CSR-style: points sorted
  by cell plus start/count arrays), and :meth:`GridIndex.query_radius_many`
  answers *all* queries with one candidate gather and one squared-distance
  mask instead of a Python loop per query.
* :class:`KDTreeIndex` — a thin wrapper over :class:`scipy.spatial.cKDTree`.

Both backends implement the exact closed ball (``d² <= r²``, no tolerance;
at ``radius == 0`` only exactly coincident points qualify) and return
identical, deterministically ordered results, so consumers can switch
backends without changing which graph they build.  :func:`build_index` is the
factory the consumers go through.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Tuple, runtime_checkable

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.primitives import as_points

__all__ = ["SpatialIndex", "GridIndex", "KDTreeIndex", "build_index", "BACKENDS"]


@runtime_checkable
class SpatialIndex(Protocol):
    """Common query surface of the spatial-index backends.

    All radius queries are exact closed balls: a point at distance exactly
    ``radius`` *is* a neighbour, a point at ``radius + ulp`` is not, and at
    ``radius == 0`` only exactly coincident points qualify.  Results are
    sorted ascending (scalar queries / per-query lists) or in canonical
    ``(i, j)``-lexicographic order with ``i < j`` (:meth:`query_pairs`), so
    two backends built over the same points return *identical* arrays.
    """

    points: np.ndarray

    def __len__(self) -> int: ...

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of one ``center``, ascending."""
        ...

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Per-center neighbour index arrays for a whole batch of centers."""
        ...

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour *counts* (cheaper than materialising indices)."""
        ...

    def query_pairs(self, radius: float) -> np.ndarray:
        """All index pairs ``(i, j)``, ``i < j``, within ``radius`` of each other."""
        ...

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        """Neighbour array per stored point (self excluded unless requested)."""
        ...


def _strip_self(lists: List[np.ndarray], include_self: bool) -> List[np.ndarray]:
    if include_self:
        return lists
    return [arr[arr != i] for i, arr in enumerate(lists)]


def _pairs_from_lists(lists: List[np.ndarray]) -> np.ndarray:
    """Canonical ``(m, 2)`` pair array from per-point neighbour lists."""
    n = len(lists)
    counts = np.fromiter((len(a) for a in lists), dtype=np.int64, count=n)
    total = int(counts.sum())
    if total == 0:
        return np.zeros((0, 2), dtype=np.int64)
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    targets = np.concatenate(lists)
    keep = targets > sources  # each unordered pair once, smaller index first
    pairs = np.column_stack([sources[keep], targets[keep]])
    # Sources ascend by construction and per-list targets are sorted, so the
    # rows are already in (i, j)-lexicographic order.
    return pairs


class GridIndex:
    """Uniform spatial hash over square cells of a given size.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.
    cell_size:
        Side of the (axis-aligned) hash cells.  For radius-``r`` neighbour
        queries a cell size of ``r`` means only the 3×3 block of cells around
        a query needs scanning.

    The constructor is fully vectorised: integer cell keys are packed into one
    ``int64`` per point, a stable argsort groups points by cell, and a single
    ``np.unique`` yields the CSR-style ``(cell id, start, count)`` table.  No
    per-point Python loop runs at build or bulk-query time.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = as_points(points)
        self.cell_size = float(cell_size)
        n = len(self.points)
        if n:
            keys = np.floor(self.points / self.cell_size).astype(np.int64)
            self._key_min = keys.min(axis=0)
            self._spans = keys.max(axis=0) - self._key_min + 1
            if int(self._spans[0]) * int(self._spans[1]) >= 2**62:
                raise ValueError(
                    "point spread spans too many grid cells for this cell_size; "
                    "use a larger cell_size or the 'kdtree' backend"
                )
            packed = (keys[:, 0] - self._key_min[0]) * self._spans[1] + (
                keys[:, 1] - self._key_min[1]
            )
            # Stable sort keeps original index order inside each cell.
            self._order = np.argsort(packed, kind="stable")
            self._cell_ids, starts = np.unique(packed[self._order], return_index=True)
            self._starts = starts.astype(np.int64)
            self._counts = np.diff(np.append(self._starts, n)).astype(np.int64)
        else:
            self._key_min = np.zeros(2, dtype=np.int64)
            self._spans = np.ones(2, dtype=np.int64)
            self._order = np.zeros(0, dtype=np.int64)
            self._cell_ids = np.zeros(0, dtype=np.int64)
            self._starts = np.zeros(0, dtype=np.int64)
            self._counts = np.zeros(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.points)

    # -- cell accessors -----------------------------------------------------------
    def cell_of(self, point: Iterable[float]) -> Tuple[int, int]:
        """Integer cell coordinates containing ``point``."""
        x, y = point
        return (int(np.floor(x / self.cell_size)), int(np.floor(y / self.cell_size)))

    def _cell_slice(self, cx: int, cy: int) -> np.ndarray:
        """Stored-point indices in cell ``(cx, cy)`` (ascending; empty if none)."""
        rx = cx - int(self._key_min[0])
        ry = cy - int(self._key_min[1])
        if not (0 <= rx < int(self._spans[0]) and 0 <= ry < int(self._spans[1])):
            return np.zeros(0, dtype=np.int64)
        packed = rx * int(self._spans[1]) + ry
        pos = int(np.searchsorted(self._cell_ids, packed))
        if pos == len(self._cell_ids) or self._cell_ids[pos] != packed:
            return np.zeros(0, dtype=np.int64)
        start = self._starts[pos]
        return self._order[start : start + self._counts[pos]]

    def points_in_cell(self, cell: Tuple[int, int]) -> np.ndarray:
        """Indices of points bucketed into ``cell``, ascending."""
        cx, cy = cell
        return self._cell_slice(int(cx), int(cy)).copy()

    def occupied_cells(self) -> List[Tuple[int, int]]:
        """All cells that contain at least one point."""
        span_y = int(self._spans[1])
        cx = self._cell_ids // span_y + self._key_min[0]
        cy = self._cell_ids % span_y + self._key_min[1]
        return list(zip(cx.tolist(), cy.tolist()))

    # -- scalar queries -----------------------------------------------------------
    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of ``center`` (exact closed ball).

        Scans the minimal block of cells that can contain qualifying points
        and filters by exact squared distance (``d² <= r²``, no tolerance) —
        the same closed-ball predicate :class:`KDTreeIndex` applies, so the
        distributed simulator and the centralized builder agree on every
        boundary pair.  At ``radius == 0`` only exactly coincident points
        qualify.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        cx, cy = center
        reach = int(np.ceil(radius / self.cell_size))
        base = self.cell_of(center)
        parts = [
            self._cell_slice(base[0] + dx, base[1] + dy)
            for dx in range(-reach, reach + 1)
            for dy in range(-reach, reach + 1)
        ]
        idx = np.concatenate(parts)
        if idx.size == 0:
            return idx
        diff = self.points[idx] - np.asarray([cx, cy], dtype=np.float64)
        keep = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return np.sort(idx[keep])

    def neighbours_of(self, index: int, radius: float, include_self: bool = False) -> np.ndarray:
        """Indices of points within ``radius`` of the stored point ``index``."""
        result = self.query_radius(self.points[index], radius)
        if include_self:
            return result
        return result[result != index]

    # -- bulk queries -------------------------------------------------------------
    def _matches(self, centers: np.ndarray, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All (query, point) index pairs within ``radius``, unordered.

        The shared engine of the bulk queries: for each of the
        ``(2·reach + 1)²`` cell offsets (3×3 when ``radius <= cell_size``)
        the candidate ranges of *all* queries are located with one
        ``searchsorted`` into the packed cell table and expanded with a
        vectorised range gather; a single squared-distance mask then filters
        the pooled candidates.
        """
        reach = int(np.ceil(radius / self.cell_size))
        qkeys = np.floor(centers / self.cell_size).astype(np.int64) - self._key_min
        qidx = np.arange(len(centers), dtype=np.int64)
        span_x, span_y = int(self._spans[0]), int(self._spans[1])
        n_cells = len(self._cell_ids)

        cand_query_parts: List[np.ndarray] = []
        cand_point_parts: List[np.ndarray] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                rx = qkeys[:, 0] + dx
                ry = qkeys[:, 1] + dy
                inside = (rx >= 0) & (rx < span_x) & (ry >= 0) & (ry < span_y)
                if not inside.any():
                    continue
                packed = rx[inside] * span_y + ry[inside]
                pos = np.searchsorted(self._cell_ids, packed)
                hit = (pos < n_cells) & (self._cell_ids[np.minimum(pos, n_cells - 1)] == packed)
                if not hit.any():
                    continue
                pos = pos[hit]
                starts = self._starts[pos]
                counts = self._counts[pos]
                total = int(counts.sum())
                # Range gather: expand each (start, count) run into indices.
                offsets = np.repeat(np.cumsum(counts) - counts, counts)
                flat = np.repeat(starts, counts) + np.arange(total, dtype=np.int64) - offsets
                cand_point_parts.append(self._order[flat])
                cand_query_parts.append(np.repeat(qidx[inside][hit], counts))

        if not cand_point_parts:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        cand_points = np.concatenate(cand_point_parts)
        cand_queries = np.concatenate(cand_query_parts)
        diff = self.points[cand_points] - centers[cand_queries]
        keep = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return cand_queries[keep], cand_points[keep]

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Answer all ``centers`` at once with one gather + one distance mask.

        Returns one sorted index array per center; see :meth:`_matches` for
        the vectorised candidate-gathering scheme.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        centers = as_points(centers)
        q = len(centers)
        if q == 0:
            return []
        if len(self) == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(q)]
        cand_queries, cand_points = self._matches(centers, radius)
        # Group by query, ascending point index inside each group.
        order = np.lexsort((cand_points, cand_queries))
        cand_points = cand_points[order]
        per_query = np.bincount(cand_queries, minlength=q)
        return np.split(cand_points, np.cumsum(per_query)[:-1])

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour counts — skips the sort/split of the full query."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        centers = as_points(centers)
        if len(centers) == 0 or len(self) == 0:
            return np.zeros(len(centers), dtype=np.int64)
        cand_queries, _ = self._matches(centers, radius)
        return np.bincount(cand_queries, minlength=len(centers))

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        """Neighbour array per stored point via one bulk query."""
        return _strip_self(self.query_radius_many(self.points, radius), include_self)

    def query_pairs(self, radius: float) -> np.ndarray:
        """All pairs within ``radius`` (``i < j``, lexicographically ordered)."""
        return _pairs_from_lists(self.query_radius_many(self.points, radius))


class KDTreeIndex:
    """:class:`scipy.spatial.cKDTree` behind the :class:`SpatialIndex` surface.

    ``cKDTree`` already implements the exact closed ball (``d <= r``); this
    wrapper only normalises result ordering so the two backends are
    interchangeable array-for-array.
    """

    def __init__(self, points: np.ndarray) -> None:
        self.points = as_points(points)
        self._tree = cKDTree(self.points) if len(self.points) else None

    def __len__(self) -> int:
        return len(self.points)

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if self._tree is None:
            return np.zeros(0, dtype=np.int64)
        hits = self._tree.query_ball_point(np.asarray(tuple(center), dtype=np.float64), radius)
        return np.sort(np.asarray(hits, dtype=np.int64))

    def neighbours_of(self, index: int, radius: float, include_self: bool = False) -> np.ndarray:
        result = self.query_radius(self.points[index], radius)
        if include_self:
            return result
        return result[result != index]

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        centers = as_points(centers)
        if len(centers) == 0:
            return []
        if self._tree is None:
            return [np.zeros(0, dtype=np.int64) for _ in range(len(centers))]
        hits = self._tree.query_ball_point(centers, radius)
        return [np.sort(np.asarray(h, dtype=np.int64)) for h in hits]

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour counts via cKDTree's ``return_length`` fast path."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        centers = as_points(centers)
        if len(centers) == 0 or self._tree is None:
            return np.zeros(len(centers), dtype=np.int64)
        return np.asarray(
            self._tree.query_ball_point(centers, radius, return_length=True), dtype=np.int64
        )

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        return _strip_self(self.query_radius_many(self.points, radius), include_self)

    def query_pairs(self, radius: float) -> np.ndarray:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if self._tree is None or len(self) < 2:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = self._tree.query_pairs(r=radius, output_type="ndarray")
        if pairs.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = np.sort(pairs.astype(np.int64), axis=1)
        return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]

    def query_nearest(self, centers: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest stored points per center (``(q, k)``).

        Nearest first; when fewer than ``k`` points are stored the available
        columns are returned (callers pad).  This is a KD-tree-only extension
        used by the kNN graph builder — grids have no efficient nearest-point
        query, which is exactly why the backend layer is pluggable.
        """
        if k < 1:
            raise ValueError("k must be positive")
        centers = as_points(centers)
        if self._tree is None:
            raise ValueError("cannot run nearest-neighbour queries on an empty index")
        k_eff = min(k, len(self))
        _, idx = self._tree.query(centers, k=k_eff)
        return np.asarray(idx, dtype=np.int64).reshape(len(centers), k_eff)


#: Names accepted by :func:`build_index`.
BACKENDS = ("grid", "kdtree")


def build_index(
    points: np.ndarray,
    radius: float | None = None,
    backend: str = "grid",
    cell_size: float | None = None,
) -> SpatialIndex:
    """Build a :class:`SpatialIndex` over ``points``.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.
    radius:
        The query radius the index will mostly serve.  The grid backend uses
        it as its cell size (the optimal choice for fixed-radius queries);
        the KD-tree backend ignores it.
    backend:
        ``"grid"`` or ``"kdtree"``.
    cell_size:
        Grid-only override of the cell size derived from ``radius``.
    """
    if backend == "kdtree":
        return KDTreeIndex(points)
    if backend == "grid":
        size = cell_size if cell_size is not None else radius
        if size is None or size <= 0:
            size = 1.0  # radius-0 queries only match coincident points; any cell works
        return GridIndex(points, cell_size=size)
    raise ValueError(f"unknown spatial-index backend {backend!r}; known: {', '.join(BACKENDS)}")
