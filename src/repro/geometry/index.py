"""Pluggable spatial-index backends with vectorised bulk queries.

Every layer of the library ultimately reduces to fixed-radius neighbour
queries over planar point sets: the UDG builder enumerates all pairs within
the connection radius, the distributed simulator checks one-hop locality, the
sensing model asks which sensors cover an event, and continuum percolation
derives adjacency from the same closed ball.  This module gives those
consumers one interface — :class:`SpatialIndex` — with two interchangeable
backends:

* :class:`GridIndex` — a uniform spatial hash.  The cell table is built with
  one ``np.unique`` over packed integer cell keys (CSR-style: points sorted
  by cell plus start/count arrays), and :meth:`GridIndex.query_radius_many`
  answers *all* queries with one candidate gather and one exact-distance
  mask instead of a Python loop per query.
* :class:`KDTreeIndex` — a thin wrapper over :class:`scipy.spatial.cKDTree`.

Both backends implement the exact closed ball through one shared predicate,
:func:`within_ball` (true Euclidean distance via ``np.hypot``, no tolerance;
at ``radius == 0`` only exactly coincident points qualify) and return
identical, deterministically ordered results, so consumers can switch
backends without changing which graph they build.  :func:`build_index` is the
factory the consumers go through.
"""

from __future__ import annotations

from fractions import Fraction
import inspect
from typing import Iterable, List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.primitives import as_points
from repro.kernels import ops as kernel_ops
from repro.kernels.layout import CellTable, pack_bounds, pack_keys, spans_fit_packed

#: ``cKDTree.query_ball_point(..., workers=-1)`` parallelises bulk queries
#: across all cores (scipy >= 1.6); the guard keeps older scipy working.
#: Only the *bulk* entry points pass it — thread fan-out on a single-center
#: query costs more than it saves.
_KDTREE_WORKERS = (
    {"workers": -1}
    if "workers" in inspect.signature(cKDTree.query_ball_point).parameters
    else {}
)

__all__ = [
    "SpatialIndex",
    "GridIndex",
    "KDTreeIndex",
    "build_index",
    "within_ball",
    "BACKENDS",
    "DEFAULT_BULK_CHUNK_SIZE",
]

#: Centers per block of one bulk candidate gather.  The peak transient of
#: :meth:`GridIndex._matches` is proportional to ``centers × mean occupancy
#: × scanned cells``, so a 10⁶-center query against a dense table could
#: materialise a multi-gigabyte candidate pool at once; processing centers in
#: blocks bounds that peak.  Results are per-center, so any chunking of the
#: centers axis is byte-identical to the one-shot gather.
DEFAULT_BULK_CHUNK_SIZE = 131072


def within_ball(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Exact closed-ball membership mask shared by every backend.

    Compares the true Euclidean distance (``np.hypot``) against ``radius``
    instead of squaring: the naive ``d² <= r²`` underflows for subnormal
    offsets (``(2e-313)²`` rounds to ``0.0``), so at tiny radii it admits
    points strictly outside the ball — and which *candidates* each backend
    generates for such points differs, so the backends disagreed.  ``hypot``
    never under- or overflows and satisfies ``hypot(dx, dy) >= max(|dx|,
    |dy|)``, which also guarantees every admitted point lies within the grid
    scan reach of ``ceil(radius / cell_size)`` cells.

    ``center`` broadcasts against ``points``, so it may be a single ``(2,)``
    center or one ``(n, 2)`` center per point.

    The predicate itself lives in the kernel layer
    (:func:`repro.kernels.ops.within_ball_mask`), where compiled backends
    can replace it; this name remains the stable public entry point.
    """
    return kernel_ops.within_ball_mask(points, center, radius)


#: Below this radius ``r²`` is subnormal, where the relative ULP spacing of
#: ``cKDTree``'s squared-distance arithmetic (up to ~1e-3) dwarfs any relative
#: slack, so candidate generation needs an absolute floor instead.
_TINY_RADIUS = 1e-154


def _candidate_radius(radius: float) -> float:
    """Inflated radius for cKDTree candidate generation.

    ``cKDTree`` prunes with its own squared-distance arithmetic, which can
    disagree with :func:`within_ball` by an ULP on exact-boundary pairs; a
    few ULPs of slack make its candidate set a strict superset of the closed
    ball, and the exact post-filter removes the extras.  When ``r²`` is
    subnormal a *relative* slack is swallowed by the subnormal ULP spacing
    and the tree could still prune true neighbours, so those radii get an
    absolute floor — a ball of radius 2e-154 only ever holds (near-)
    coincident points, so the post-filter stays cheap.
    """
    if radius < _TINY_RADIUS:
        return 2.0 * _TINY_RADIUS
    return radius * (1.0 + 1e-12)


#: Below this radius squared distances go subnormal inside ``cKDTree``, where
#: their relative rounding error is no longer ~2⁻⁵² and the bracketing-radius
#: argument of ``KDTreeIndex.count_radius_many`` breaks down; such degenerate
#: radii take the exact per-hit filter instead.
_COUNT_FAST_PATH_MIN_RADIUS = 1e-150


@runtime_checkable
class SpatialIndex(Protocol):
    """Common query surface of the spatial-index backends.

    All radius queries are exact closed balls: a point at distance exactly
    ``radius`` *is* a neighbour, a point at ``radius + ulp`` is not, and at
    ``radius == 0`` only exactly coincident points qualify.  Results are
    sorted ascending (scalar queries / per-query lists) or in canonical
    ``(i, j)``-lexicographic order with ``i < j`` (:meth:`query_pairs`), so
    two backends built over the same points return *identical* arrays.
    """

    points: np.ndarray

    def __len__(self) -> int: ...

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of one ``center``, ascending."""
        ...

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Per-center neighbour index arrays for a whole batch of centers."""
        ...

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour *counts* (cheaper than materialising indices)."""
        ...

    def query_pairs(self, radius: float) -> np.ndarray:
        """All index pairs ``(i, j)``, ``i < j``, within ``radius`` of each other."""
        ...

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        """Neighbour array per stored point (self excluded unless requested)."""
        ...

    def query_nearest(self, centers: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest stored points per center, nearest first."""
        ...


def _strip_self(lists: List[np.ndarray], include_self: bool) -> List[np.ndarray]:
    if include_self:
        return lists
    return [arr[arr != i] for i, arr in enumerate(lists)]


def _check_radius(radius: float) -> None:
    if radius < 0:
        raise ValueError("radius must be non-negative")


def _check_chunk_size(chunk_size: int | None) -> int | None:
    """Validate a bulk-chunk size (``None`` = unchunked single gather)."""
    if chunk_size is None:
        return None
    if int(chunk_size) < 1:
        raise ValueError("chunk_size must be >= 1 (or None for one gather)")
    return int(chunk_size)


class _IndexBase:
    """Backend behaviour derivable from the primitive queries.

    Kept in one place so the derived semantics (self-exclusion, ordering)
    cannot drift between backends — the exact agreement of which is this
    layer's contract.
    """

    points: np.ndarray

    def __len__(self) -> int:
        return len(self.points)

    def neighbours_of(self, index: int, radius: float, include_self: bool = False) -> np.ndarray:
        """Indices of points within ``radius`` of the stored point ``index``."""
        result = self.query_radius(self.points[index], radius)
        if include_self:
            return result
        return result[result != index]

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        """Neighbour array per stored point via one bulk query."""
        return _strip_self(self.query_radius_many(self.points, radius), include_self)


def _pairs_from_lists(
    lists: List[np.ndarray], sources: np.ndarray | None = None
) -> np.ndarray:
    """Canonical ``(m, 2)`` pair array from per-point neighbour lists.

    ``sources`` optionally relabels the list owners (ascending — e.g. the
    stable node ids of the dynamic layer, whose lists are already in id
    space); the default is the positional indices.
    """
    n = len(lists)
    counts = np.fromiter((len(a) for a in lists), dtype=np.int64, count=n)
    total = int(counts.sum())
    if total == 0:
        return np.zeros((0, 2), dtype=np.int64)
    owners = (
        np.arange(n, dtype=np.int64) if sources is None else np.asarray(sources, dtype=np.int64)
    )
    src = np.repeat(owners, counts)
    targets = np.concatenate(lists)
    keep = targets > src  # each unordered pair once, smaller index first
    pairs = np.column_stack([src[keep], targets[keep]])
    # Sources ascend by construction and per-list targets are sorted, so the
    # rows are already in (i, j)-lexicographic order.
    return pairs


class GridIndex(_IndexBase):
    """Uniform spatial hash over square cells of a given size.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.
    cell_size:
        Side of the (axis-aligned) hash cells.  For radius-``r`` neighbour
        queries a cell size of ``r`` means only the 3×3 block of cells around
        a query needs scanning.
    chunk_size:
        Bulk queries process at most this many centers per candidate gather
        (:data:`DEFAULT_BULK_CHUNK_SIZE`), bounding peak memory on 10⁶-center
        workloads; ``None`` restores the single one-shot gather.  Chunking
        never changes a result — each center's answer is independent.

    The constructor is fully vectorised: integer cell keys are packed into one
    ``int64`` per point, a stable argsort groups points by cell, and a single
    ``np.unique`` yields the CSR-style ``(cell id, start, count)`` table.  No
    per-point Python loop runs at build or bulk-query time (the exact-key
    repair of :meth:`_exact_keys` touches only coordinates whose quotient
    lands exactly on an integer).
    """

    def __init__(
        self,
        points: np.ndarray,
        cell_size: float,
        chunk_size: int | None = DEFAULT_BULK_CHUNK_SIZE,
    ) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = as_points(points)
        self.cell_size = float(cell_size)
        self.bulk_chunk_size = _check_chunk_size(chunk_size)
        n = len(self.points)
        if n:
            quot = self.points / self.cell_size
            keys_f = np.floor(quot)
            # Guard in float BEFORE the int64 cast: a key magnitude past
            # int64 range would cast to garbage, wrap the span negative, and
            # sail past the product check below into silently empty queries.
            if not np.isfinite(keys_f).all() or np.abs(keys_f).max() >= 2**62:
                raise ValueError(
                    "point spread spans too many grid cells for this cell_size; "
                    "use a larger cell_size or the 'kdtree' backend"
                )
            keys = self._exact_keys(self.points, quot=quot)
            key_min, spans = pack_bounds(keys)
            if not spans_fit_packed(spans):
                raise ValueError(
                    "point spread spans too many grid cells for this cell_size; "
                    "use a larger cell_size or the 'kdtree' backend"
                )
            # Stable sort inside CellTable keeps original index order per cell.
            self._table = CellTable.group_points(
                pack_keys(keys, key_min, spans), key_min, spans
            )
        else:
            self._table = CellTable.empty()

    @classmethod
    def from_cell_table(
        cls,
        points: np.ndarray,
        cell_size: float,
        cell_keys: np.ndarray,
        cell_members: Sequence[np.ndarray],
        chunk_size: int | None = DEFAULT_BULK_CHUNK_SIZE,
    ) -> "GridIndex":
        """Adopt an externally maintained cell table instead of deriving one.

        The dynamic layer (:class:`repro.dynamics.incremental.DynamicSpatialIndex`)
        keeps cell membership current by *patching* — a hash map of sorted
        member-id arrays touched only where nodes cross cell boundaries.  This
        constructor wraps such a table in a :class:`GridIndex` without
        re-bucketing anything, so the vectorised bulk machinery
        (:meth:`_matches` and everything built on it) runs over a patched
        table exactly as it would over a from-scratch build.

        The returned view answers *centers-in, candidates-out* queries only
        (``query_radius``, ``query_radius_many``, ``count_radius_many`` and
        the ``_matches`` engine underneath them).  Whole-index derived
        queries — ``query_pairs``, ``neighbour_lists``, ``query_nearest``,
        ``len`` — are undefined on an adopted view: they would iterate the
        raw ``points`` buffer, whose dead/spare rows are not part of the
        indexed set.  The dynamic layer exposes its own id-space versions of
        those surfaces instead.

        Parameters
        ----------
        points:
            Coordinate array indexable by the ids stored in ``cell_members``.
            It is adopted *by reference* (no copy, no validation) and may hold
            extra rows — ids never referenced by a cell are never candidates.
        cell_size:
            The cell side the keys were derived with (must match the exact
            :meth:`_exact_keys` convention, as the dynamic layer guarantees).
        cell_keys:
            ``(m, 2)`` integer keys of the occupied cells, duplicate-free.
        cell_members:
            One sorted id array per row of ``cell_keys``.

        Raises
        ------
        ValueError
            When the occupied-cell bounding box overflows the packed-key
            representation (callers fall back to scalar queries).
        """
        index = cls.__new__(cls)
        index.points = points
        index.cell_size = float(cell_size)
        index.bulk_chunk_size = _check_chunk_size(chunk_size)
        keys = np.asarray(cell_keys, dtype=np.int64).reshape(-1, 2)
        if len(keys) == 0:
            index._table = CellTable.empty()
            return index
        key_min, spans = pack_bounds(keys)
        if not spans_fit_packed(spans):
            raise ValueError(
                "occupied cells span too large a bounding box for the packed "
                "cell table; fall back to scalar queries"
            )
        index._table = CellTable.adopt_cells(
            pack_keys(keys, key_min, spans), cell_members, key_min, spans
        )
        return index

    # -- cell-table views ---------------------------------------------------------
    # The CSR arrays live in one kernel-layer CellTable (the SoA description
    # shared with the dynamic layer's adopted views and the shard workers);
    # these views keep the historical private names readable in the query
    # code below.
    @property
    def _key_min(self) -> np.ndarray:
        return self._table.key_min

    @property
    def _spans(self) -> np.ndarray:
        return self._table.spans

    @property
    def _order(self) -> np.ndarray:
        return self._table.order

    @property
    def _cell_ids(self) -> np.ndarray:
        return self._table.cell_ids

    @property
    def _starts(self) -> np.ndarray:
        return self._table.starts

    @property
    def _counts(self) -> np.ndarray:
        return self._table.counts

    # -- cell accessors -----------------------------------------------------------
    #: On x86 ``np.longdouble`` carries a 64-bit mantissa, so a key below 2¹¹
    #: times a 53-bit cell size multiplies exactly and decides boundary cases
    #: without exact-rational arithmetic.
    _LONGDOUBLE_EXACT = np.finfo(np.longdouble).nmant >= 63

    def _exact_keys(self, coords: np.ndarray, quot: np.ndarray | None = None) -> np.ndarray:
        """``floor(x / cell_size)`` with the division's up-rounding repaired.

        ``quot`` may pass in an already-computed ``coords / cell_size`` to
        spare the build path a second full-array division.

        ``fl(x / cell_size)`` can round up onto an exact integer when the true
        quotient lies within half an ULP below it, mis-bucketing ``x`` one
        cell high (down-shifts cannot happen: a correctly rounded quotient of
        a value at or past an integer never lands below it).  Only entries
        whose computed quotient is exactly an integer can hide a shift.  For
        those, comparing against the rounded product ``fl(key·cell_size)``
        decides every non-equal case outright (the product is within half an
        ULP, and an exactly representable ``key·cell_size`` rounds to
        itself); float equality — exact-lattice coordinates — is resolved by
        an exact ``longdouble`` product, leaving exact-rational arithmetic
        for the vanishing remainder.  Lattice data therefore stays
        vectorised instead of paying a per-point Python loop.
        """
        if quot is None:
            quot = coords / self.cell_size
        keys_f = np.floor(quot)
        # Query centers may sit arbitrarily far off-grid (or be non-finite);
        # saturate their keys instead of casting int64 garbage with a
        # RuntimeWarning.  The span bound checks discard them either way, and
        # this bound keeps key differences inside int64 (stored points are
        # range-checked at build time and pass through unchanged).
        limit = 2.0**62 - 2.0**10
        keys_f = np.where(np.isfinite(keys_f), np.clip(keys_f, -limit, limit), 0.0)
        keys = keys_f.astype(np.int64)
        suspect = quot == keys_f
        if suspect.any():
            prod = keys_f * self.cell_size
            shifted = suspect & (coords < prod)
            ambiguous = suspect & (coords == prod)
            if ambiguous.any() and self._LONGDOUBLE_EXACT:
                exact = ambiguous & (np.abs(keys_f) < 2.0**11)
                prod_l = keys_f.astype(np.longdouble) * np.longdouble(self.cell_size)
                shifted |= exact & (coords.astype(np.longdouble) < prod_l)
                ambiguous &= ~exact
            if ambiguous.any():
                cell = Fraction(self.cell_size)
                for pos in zip(*np.nonzero(ambiguous)):
                    if Fraction(float(coords[pos])) < int(keys[pos]) * cell:
                        shifted[pos] = True
            keys[shifted] -= 1
        return keys

    def cell_of(self, point: Iterable[float]) -> Tuple[int, int]:
        """Integer cell coordinates containing ``point``."""
        x, y = point
        key = self._exact_keys(np.array([[float(x), float(y)]], dtype=np.float64))[0]
        return (int(key[0]), int(key[1]))

    def _cell_slice(self, cx: int, cy: int) -> np.ndarray:
        """Stored-point indices in cell ``(cx, cy)`` (ascending; empty if none)."""
        rx = cx - int(self._key_min[0])
        ry = cy - int(self._key_min[1])
        if not (0 <= rx < int(self._spans[0]) and 0 <= ry < int(self._spans[1])):
            return np.zeros(0, dtype=np.int64)
        packed = rx * int(self._spans[1]) + ry
        pos = int(np.searchsorted(self._cell_ids, packed))
        if pos == len(self._cell_ids) or self._cell_ids[pos] != packed:
            return np.zeros(0, dtype=np.int64)
        start = self._starts[pos]
        return self._order[start : start + self._counts[pos]]

    def points_in_cell(self, cell: Tuple[int, int]) -> np.ndarray:
        """Indices of points bucketed into ``cell``, ascending."""
        cx, cy = cell
        return self._cell_slice(int(cx), int(cy)).copy()

    def _reach(self, radius: float) -> int:
        """Cell offsets to scan so every point of the closed ball is covered.

        ``ceil(radius / cell_size)`` alone can undercount by one ring: a true
        quotient just above an integer ``k`` may *compute* as exactly ``k``
        (e.g. radius 1.9033145596437013 over cell size 0.6344381865479004
        divides to exactly 3.0), silently dropping neighbours in ring ``k+1``.
        The covering check ``reach·cell_size >= radius`` is therefore done in
        exact rational arithmetic — a float product has its own half-ULP
        window that can hide the shortfall.  The common exact-quotient case
        (``cell_size == radius``) keeps its 3×3 scan.
        """
        reach = int(np.ceil(radius / self.cell_size))
        if reach * Fraction(self.cell_size) < Fraction(radius):
            reach += 1
        return reach

    def _boundary_slack(
        self, coords: np.ndarray, keys: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-axis ``(lo, hi)`` flags: queries within ULPs of a cell boundary.

        With exact cell keys, the only points that can pass the computed-
        difference closed-ball predicate from one ring beyond ``_reach`` are
        those whose *query* coordinate lies within about half an ULP of
        ``radius`` of a cell boundary (the difference ``px - cx`` rounds down
        to ``radius`` while the true distance extends just past ``reach``
        cells).  These flags tell the scan loops which queries need the extra
        ring on which side of which axis; generic coordinates never trigger
        them, so the common 3×3 scan is untouched.
        """
        cell = self.cell_size
        r_ulp = np.nextafter(radius, np.inf) - radius
        c_ulp = np.nextafter(np.abs(coords), np.inf) - np.abs(coords)
        guard = 2.0 * (r_ulp + c_ulp)
        lo = coords - keys * cell <= guard
        hi = (keys + 1.0) * cell - coords <= guard
        return lo, hi

    def occupied_cells(self) -> List[Tuple[int, int]]:
        """All cells that contain at least one point."""
        span_y = int(self._spans[1])
        cx = self._cell_ids // span_y + self._key_min[0]
        cy = self._cell_ids % span_y + self._key_min[1]
        return list(zip(cx.tolist(), cy.tolist()))

    # -- scalar queries -----------------------------------------------------------
    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Indices of points within ``radius`` of ``center`` (exact closed ball).

        Scans the minimal block of cells that can contain qualifying points
        and filters with :func:`within_ball` (exact true-distance closed
        ball, no tolerance) — the same predicate :class:`KDTreeIndex`
        applies, so the distributed simulator and the centralized builder
        agree on every boundary pair.  At ``radius == 0`` only exactly
        coincident points qualify.
        """
        _check_radius(radius)
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        cx, cy = center
        reach = self._reach(radius)
        coords = np.array([[float(cx), float(cy)]], dtype=np.float64)
        key = self._exact_keys(coords)
        base = (int(key[0, 0]), int(key[0, 1]))
        lo, hi = self._boundary_slack(coords, key, radius)
        parts = [
            self._cell_slice(base[0] + dx, base[1] + dy)
            for dx in range(-reach - int(lo[0, 0]), reach + int(hi[0, 0]) + 1)
            for dy in range(-reach - int(lo[0, 1]), reach + int(hi[0, 1]) + 1)
        ]
        idx = np.concatenate(parts)
        if idx.size == 0:
            return idx
        keep = within_ball(self.points[idx], np.asarray([cx, cy], dtype=np.float64), radius)
        return np.sort(idx[keep])

    # -- bulk queries -------------------------------------------------------------
    def _matches(self, centers: np.ndarray, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All (query, point) index pairs within ``radius``, unordered.

        The shared engine of the bulk queries: for each of the
        ``(2·reach + 1)²`` cell offsets (3×3 when ``radius <= cell_size``)
        the candidate ranges of *all* queries are located with one
        ``searchsorted`` into the packed cell table and expanded with a
        vectorised range gather; a single :func:`within_ball` mask then
        filters the pooled candidates.  One extra ring of offsets is scanned
        for just the queries flagged by :meth:`_boundary_slack` — in the
        common case those offsets cost one all-false mask check each.
        """
        reach = self._reach(radius)
        qkeys_abs = self._exact_keys(centers)
        lo, hi = self._boundary_slack(centers, qkeys_abs, radius)
        qkeys = qkeys_abs - self._key_min
        qidx = np.arange(len(centers), dtype=np.int64)
        span_x, span_y = int(self._spans[0]), int(self._spans[1])

        cand_query_parts: List[np.ndarray] = []
        cand_point_parts: List[np.ndarray] = []
        for dx in range(-reach - 1, reach + 2):
            for dy in range(-reach - 1, reach + 2):
                allowed = None  # None means: offset applies to every query
                if dx < -reach:
                    allowed = lo[:, 0]
                elif dx > reach:
                    allowed = hi[:, 0]
                if dy < -reach:
                    allowed = lo[:, 1] if allowed is None else allowed & lo[:, 1]
                elif dy > reach:
                    allowed = hi[:, 1] if allowed is None else allowed & hi[:, 1]
                if allowed is not None and not allowed.any():
                    continue
                rx = qkeys[:, 0] + dx
                ry = qkeys[:, 1] + dy
                inside = (rx >= 0) & (rx < span_x) & (ry >= 0) & (ry < span_y)
                if allowed is not None:
                    inside &= allowed
                if not inside.any():
                    continue
                packed = rx[inside] * span_y + ry[inside]
                owners, members = kernel_ops.cell_gather(
                    self._table, packed, qidx[inside]
                )
                if len(members):
                    cand_point_parts.append(members)
                    cand_query_parts.append(owners)

        if not cand_point_parts:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        cand_points = np.concatenate(cand_point_parts)
        cand_queries = np.concatenate(cand_query_parts)
        keep = within_ball(self.points[cand_points], centers[cand_queries], radius)
        return cand_queries[keep], cand_points[keep]

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Answer all ``centers`` at once with one gather + one distance mask.

        Returns one sorted index array per center; see :meth:`_matches` for
        the vectorised candidate-gathering scheme.  Centers are processed in
        blocks of ``bulk_chunk_size`` to bound the peak size of the candidate
        pool (results are per-center, so blocking is byte-identical to one
        gather; pass ``chunk_size=None`` at construction for the one-shot
        path).
        """
        _check_radius(radius)
        centers = as_points(centers)
        q = len(centers)
        if q == 0:
            return []
        if len(self) == 0:
            return [np.zeros(0, dtype=np.int64) for _ in range(q)]
        chunk = self.bulk_chunk_size
        if chunk is not None and q > chunk:
            out: List[np.ndarray] = []
            for start in range(0, q, chunk):
                out.extend(self._query_radius_block(centers[start : start + chunk], radius))
            return out
        return self._query_radius_block(centers, radius)

    def _query_radius_block(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        cand_queries, cand_points = self._matches(centers, radius)
        # Group by query, ascending point index inside each group.
        return kernel_ops.pair_candidates(
            cand_queries, cand_points, len(centers), len(self)
        )

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour counts — skips the sort/split of the full query.

        Chunked over centers like :meth:`query_radius_many`, and for the same
        reason: the counts of a block depend only on that block's centers.
        """
        _check_radius(radius)
        centers = as_points(centers)
        q = len(centers)
        if q == 0 or len(self) == 0:
            return np.zeros(q, dtype=np.int64)
        chunk = self.bulk_chunk_size
        if chunk is not None and q > chunk:
            return np.concatenate(
                [
                    self._count_radius_block(centers[start : start + chunk], radius)
                    for start in range(0, q, chunk)
                ]
            )
        return self._count_radius_block(centers, radius)

    def _count_radius_block(self, centers: np.ndarray, radius: float) -> np.ndarray:
        cand_queries, _ = self._matches(centers, radius)
        return kernel_ops.count_in_balls(cand_queries, len(centers))

    def query_pairs(self, radius: float) -> np.ndarray:
        """All pairs within ``radius`` (``i < j``, lexicographically ordered)."""
        return _pairs_from_lists(self.query_radius_many(self.points, radius))

    # -- nearest-neighbour queries ---------------------------------------------
    def _ring_cells(
        self,
        cx: int,
        cy: int,
        ring: int,
        box_lo: Tuple[int, int],
        box_hi: Tuple[int, int],
    ) -> List[Tuple[int, int]]:
        """Cells on the Chebyshev ring around ``(cx, cy)``, clipped to the
        occupied bounding box (so far-away centers never walk empty rings)."""
        if ring == 0:
            if box_lo[0] <= cx <= box_hi[0] and box_lo[1] <= cy <= box_hi[1]:
                return [(cx, cy)]
            return []
        cells: List[Tuple[int, int]] = []
        xs = range(max(cx - ring, box_lo[0]), min(cx + ring, box_hi[0]) + 1)
        for y in (cy - ring, cy + ring):
            if box_lo[1] <= y <= box_hi[1]:
                cells.extend((x, y) for x in xs)
        ys = range(max(cy - ring + 1, box_lo[1]), min(cy + ring - 1, box_hi[1]) + 1)
        for x in (cx - ring, cx + ring):
            if box_lo[0] <= x <= box_hi[0]:
                cells.extend((x, y) for y in ys)
        return cells

    def query_nearest(self, centers: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest stored points per center (``(q, k)``).

        Expanding-ring search: cells are scanned in growing Chebyshev rings
        around each center's cell.  Any point in an unscanned ring ``ρ + 1``
        lies strictly beyond ``ρ·cell_size``, so once the k-th candidate
        distance drops to that bound the answer is complete; one extra guard
        ring absorbs the half-ULP windows of the bound arithmetic.  Exact
        distance ties are broken by ascending point index (deterministic —
        :class:`KDTreeIndex` inherits scipy's unspecified tie order instead,
        a measure-zero difference for continuous inputs).  As for the KD-tree
        backend, fewer than ``k`` stored points return ``min(k, n)`` columns
        and an empty index raises.
        """
        if k < 1:
            raise ValueError("k must be positive")
        centers = as_points(centers)
        if len(self) == 0:
            raise ValueError("cannot run nearest-neighbour queries on an empty index")
        k_eff = min(k, len(self))
        out = np.empty((len(centers), k_eff), dtype=np.int64)
        box_lo = (int(self._key_min[0]), int(self._key_min[1]))
        box_hi = (
            int(self._key_min[0] + self._spans[0]) - 1,
            int(self._key_min[1] + self._spans[1]) - 1,
        )
        keys = self._exact_keys(centers)
        for row, center in enumerate(centers):
            cx, cy = int(keys[row, 0]), int(keys[row, 1])
            # Chebyshev distance from the center's cell to the occupied box:
            # rings below it hold no cells, rings beyond `last` none either.
            start = max(
                0, box_lo[0] - cx, cx - box_hi[0], box_lo[1] - cy, cy - box_hi[1]
            )
            last = max(
                abs(cx - box_lo[0]),
                abs(cx - box_hi[0]),
                abs(cy - box_lo[1]),
                abs(cy - box_hi[1]),
            )
            parts: List[np.ndarray] = []
            count = 0
            ring = start
            guard_scanned = False
            while ring <= last:
                for cell in self._ring_cells(cx, cy, ring, box_lo, box_hi):
                    arr = self._cell_slice(*cell)
                    if arr.size:
                        parts.append(arr)
                        count += arr.size
                if guard_scanned:
                    break
                if count >= k_eff:
                    cand = np.concatenate(parts)
                    diff = self.points[cand] - center
                    dists = np.hypot(diff[:, 0], diff[:, 1])
                    kth = np.partition(dists, k_eff - 1)[k_eff - 1]
                    if kth <= ring * self.cell_size:
                        guard_scanned = True  # one more ring, then done
                ring += 1
            cand = np.concatenate(parts)
            diff = self.points[cand] - center
            dists = np.hypot(diff[:, 0], diff[:, 1])
            order = np.lexsort((cand, dists))
            out[row] = cand[order[:k_eff]]
        return out


class KDTreeIndex(_IndexBase):
    """:class:`scipy.spatial.cKDTree` behind the :class:`SpatialIndex` surface.

    ``cKDTree`` is only used for candidate generation (at the slightly
    inflated :func:`_candidate_radius`, so its internal squared-distance
    pruning — which underflows for subnormal offsets and can disagree with
    the exact ball by an ULP on boundary pairs — never decides membership);
    every hit is post-filtered through the same :func:`within_ball` predicate
    :class:`GridIndex` applies, and result ordering is normalised, so the two
    backends are interchangeable array-for-array.
    """

    def __init__(self, points: np.ndarray) -> None:
        self.points = as_points(points)
        self._tree = cKDTree(self.points) if len(self.points) else None

    def _filter(self, hits: Iterable[int], center: np.ndarray, radius: float) -> np.ndarray:
        """Sorted hit indices that pass the shared exact-ball predicate."""
        idx = np.asarray(hits, dtype=np.int64)
        if idx.size:
            idx = idx[within_ball(self.points[idx], center, radius)]
        return np.sort(idx)

    def _candidates(self, centers: np.ndarray, radius: float, parallel: bool = False) -> List:
        """Per-center candidate hit lists at the inflated radius.

        ``parallel`` turns on scipy's ``workers=-1`` thread fan-out (bulk
        callers only; a single-center query pays more in dispatch than it
        gains).  Per-center hit *contents* are unaffected by the worker
        count, and every hit still goes through the exact post-filter.

        ``cKDTree``'s squared-distance arithmetic overflows for coordinate
        spreads past ~1e154 and raises, even though the exact predicate is
        still well defined; fall back to brute-force ``within_ball``
        candidates there so both backends keep answering identically instead
        of one of them surfacing scipy's ValueError.
        """
        workers = _KDTREE_WORKERS if parallel else {}
        try:
            return self._tree.query_ball_point(centers, _candidate_radius(radius), **workers)
        except ValueError as err:
            if "overflow" not in str(err):
                raise
            return [np.nonzero(within_ball(self.points, c, radius))[0] for c in centers]

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        _check_radius(radius)
        if self._tree is None:
            return np.zeros(0, dtype=np.int64)
        center = np.asarray(tuple(center), dtype=np.float64)
        hits = self._candidates(center[None, :], radius)[0]
        return self._filter(hits, center, radius)

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        _check_radius(radius)
        centers = as_points(centers)
        if len(centers) == 0:
            return []
        if self._tree is None:
            return [np.zeros(0, dtype=np.int64) for _ in range(len(centers))]
        hits = self._candidates(centers, radius, parallel=len(centers) > 1)
        return [self._filter(h, center, radius) for center, h in zip(centers, hits)]

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour counts via cKDTree's ``return_length`` fast path.

        ``return_length`` counts in C but with the tree's own squared-distance
        predicate, which can disagree with :func:`within_ball` only for points
        in the shell between ``radius·(1 − 1e-12)`` and
        :func:`_candidate_radius`: every point the lower count includes is
        strictly inside the closed ball, every closed-ball point is included
        by the upper count, so wherever the two counts coincide the shell is
        empty and the count is already exact.  Only the (rare) centers whose
        counts differ are re-counted with the exact predicate.  Tiny radii —
        where squared distances go subnormal and the bracketing argument
        breaks down — take the exact path for every center with a candidate.
        """
        _check_radius(radius)
        centers = as_points(centers)
        if len(centers) == 0 or self._tree is None:
            return np.zeros(len(centers), dtype=np.int64)
        workers = _KDTREE_WORKERS if len(centers) > 1 else {}
        try:
            upper = np.asarray(
                self._tree.query_ball_point(
                    centers, _candidate_radius(radius), return_length=True, **workers
                ),
                dtype=np.int64,
            )
            if radius < _COUNT_FAST_PATH_MIN_RADIUS:
                counts = np.zeros(len(centers), dtype=np.int64)
                ambiguous = np.nonzero(upper)[0]
            else:
                counts = np.asarray(
                    self._tree.query_ball_point(
                        centers, radius * (1.0 - 1e-12), return_length=True, **workers
                    ),
                    dtype=np.int64,
                )
                ambiguous = np.nonzero(upper != counts)[0]
        except ValueError as err:  # overflow fallback, see _candidates
            if "overflow" not in str(err):
                raise
            hits = self._candidates(centers, radius)
            return np.fromiter((len(h) for h in hits), dtype=np.int64, count=len(centers))
        if ambiguous.size:
            hits = self._candidates(centers[ambiguous], radius)
            for i, h in zip(ambiguous, hits):
                idx = np.asarray(h, dtype=np.int64)
                counts[i] = int(np.count_nonzero(within_ball(self.points[idx], centers[i], radius)))
        return counts

    def query_pairs(self, radius: float) -> np.ndarray:
        _check_radius(radius)
        if self._tree is None or len(self) < 2:
            return np.zeros((0, 2), dtype=np.int64)
        try:
            pairs = self._tree.query_pairs(r=_candidate_radius(radius), output_type="ndarray")
        except ValueError as err:  # overflow fallback, see _candidates
            if "overflow" not in str(err):
                raise
            return _pairs_from_lists(self.query_radius_many(self.points, radius))
        if pairs.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = pairs.astype(np.int64)
        pairs = pairs[within_ball(self.points[pairs[:, 0]], self.points[pairs[:, 1]], radius)]
        if pairs.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        pairs = np.sort(pairs, axis=1)
        return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]

    def query_nearest(self, centers: np.ndarray, k: int) -> np.ndarray:
        """Indices of the ``k`` nearest stored points per center (``(q, k)``).

        Nearest first; when fewer than ``k`` points are stored the available
        columns are returned (callers pad).  Exact distance ties keep
        scipy's unspecified order (:class:`GridIndex` breaks them by index
        instead) — a measure-zero divergence for continuous inputs.
        """
        if k < 1:
            raise ValueError("k must be positive")
        centers = as_points(centers)
        if self._tree is None:
            raise ValueError("cannot run nearest-neighbour queries on an empty index")
        k_eff = min(k, len(self))
        _, idx = self._tree.query(centers, k=k_eff)
        return np.asarray(idx, dtype=np.int64).reshape(len(centers), k_eff)


#: Names accepted by :func:`build_index`.
BACKENDS = ("grid", "kdtree")


def build_index(
    points: np.ndarray,
    radius: float | None = None,
    backend: str = "grid",
    cell_size: float | None = None,
) -> SpatialIndex:
    """Build a :class:`SpatialIndex` over ``points``.

    Parameters
    ----------
    points:
        ``(n, 2)`` point coordinates.
    radius:
        The query radius the index will mostly serve.  The grid backend uses
        it as its cell size (the optimal choice for fixed-radius queries);
        the KD-tree backend ignores it.
    backend:
        ``"grid"`` or ``"kdtree"``.
    cell_size:
        Grid-only override of the cell size derived from ``radius``.
    """
    if backend == "kdtree":
        return KDTreeIndex(points)
    if backend == "grid":
        size = cell_size if cell_size is not None else radius
        if size is None or size <= 0:
            size = 1.0  # radius-0 queries only match coincident points; any cell works
        return GridIndex(points, cell_size=size)
    raise ValueError(f"unknown spatial-index backend {backend!r}; known: {', '.join(BACKENDS)}")
