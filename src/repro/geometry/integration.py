"""Numeric area estimation for region predicates.

Two estimators are provided:

* :func:`estimate_area_grid` — deterministic midpoint-rule integration on a
  uniform grid over the predicate's bounding box.  Error is O(perimeter ×
  cell-size) for the piecewise-smooth regions used in this library.
* :func:`estimate_area_monte_carlo` — unbiased Monte-Carlo estimator with a
  binomial standard error, useful when a confidence interval is wanted.

Region areas feed the analytic tile-goodness bounds in
:mod:`repro.core.goodness` (``P(region occupied) = 1 - exp(-λ·area)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.predicates import RegionPredicate
from repro.rng import resolve_rng

__all__ = ["AreaEstimate", "estimate_area_grid", "estimate_area_monte_carlo"]


@dataclass(frozen=True)
class AreaEstimate:
    """Area estimate together with an error indication.

    Attributes
    ----------
    area:
        Point estimate of the region area.
    standard_error:
        Standard error of the estimate (0.0 for the deterministic grid rule,
        where ``cell_area`` bounds the resolution instead).
    samples:
        Number of evaluation points used.
    cell_area:
        Area represented by one grid cell / one Monte-Carlo sample.
    """

    area: float
    standard_error: float
    samples: int
    cell_area: float


def estimate_area_grid(region: RegionPredicate, resolution: int = 512) -> AreaEstimate:
    """Midpoint-rule area of ``region`` on a ``resolution × resolution`` grid.

    The grid spans the predicate's bounding box; cells whose centre lies in
    the region contribute their full cell area.
    """
    if resolution < 2:
        raise ValueError("resolution must be at least 2")
    bounds = region.bounds
    if bounds.area == 0.0:  # repro: allow[REPRO201] exact sentinel: degenerate bounding box
        return AreaEstimate(0.0, 0.0, 0, 0.0)
    pts = bounds.grid(resolution)
    inside = region.contains(pts)
    cell_area = bounds.area / (resolution * resolution)
    return AreaEstimate(float(inside.sum()) * cell_area, 0.0, len(pts), cell_area)


def estimate_area_monte_carlo(
    region: RegionPredicate,
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> AreaEstimate:
    """Monte-Carlo area of ``region`` with a binomial standard error."""
    if samples < 1:
        raise ValueError("samples must be positive")
    rng = resolve_rng(rng)
    bounds = region.bounds
    if bounds.area == 0.0:  # repro: allow[REPRO201] exact sentinel: degenerate bounding box
        return AreaEstimate(0.0, 0.0, 0, 0.0)
    pts = bounds.sample_uniform(samples, rng)
    inside = region.contains(pts)
    p_hat = float(inside.mean())
    area = p_hat * bounds.area
    se = bounds.area * float(np.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / samples))
    return AreaEstimate(area, se, samples, bounds.area / samples)
