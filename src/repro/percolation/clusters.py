"""Cluster labelling and statistics for site-percolation configurations.

The workhorse is a vectorised union–find (weighted quick-union with path
compression).  Open sites are united with their open right/down neighbours,
which labels all 4-connected open clusters in near-linear time; this is the
standard Hoshen–Kopelman-style approach expressed with numpy index arrays
instead of per-site Python loops.

The same union–find also labels *continuum* clusters: given a planar point
set, :func:`continuum_cluster_labels` derives the Gilbert-graph adjacency
from one ``query_pairs`` call on a :mod:`repro.geometry.index` backend and
unions the resulting pairs, which is how E11-style continuum-percolation
questions reduce to the cluster machinery already used on Z².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.index import build_index
from repro.geometry.primitives import as_points
from repro.percolation.lattice import LatticeConfiguration

__all__ = [
    "UnionFind",
    "ClusterStatistics",
    "label_clusters",
    "cluster_sizes",
    "cluster_statistics",
    "largest_cluster_mask",
    "has_spanning_cluster",
    "theta_estimate",
    "continuum_cluster_labels",
    "continuum_largest_cluster_fraction",
]


class UnionFind:
    """Weighted quick-union with path compression over ``n`` elements.

    Exposes both scalar operations (`find`, `union`) and a vectorised
    :meth:`find_many` used by the cluster labeller.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Root of the component containing ``x`` (with path compression)."""
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        # Path compression pass.
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return int(root)

    def union(self, a: int, b: int) -> int:
        """Merge the components of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.n_components -= 1
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def union_pairs(self, pairs_a: np.ndarray, pairs_b: np.ndarray) -> None:
        """Union many pairs; order-independent result."""
        for a, b in zip(np.asarray(pairs_a).ravel(), np.asarray(pairs_b).ravel()):
            self.union(int(a), int(b))

    def find_many(self, xs: np.ndarray) -> np.ndarray:
        """Roots for an array of elements."""
        return np.fromiter((self.find(int(x)) for x in np.asarray(xs).ravel()), dtype=np.int64)

    def component_size(self, x: int) -> int:
        return int(self.size[self.find(x)])


def _order_by_first_appearance(compact: np.ndarray) -> np.ndarray:
    """Relabel compact component ids by first (array-order) appearance.

    Fully vectorised: each unique id is ranked by the position of its first
    occurrence, so no per-point Python loop runs even on 100k+-point
    realisations.
    """
    _, first, inverse = np.unique(compact, return_index=True, return_inverse=True)
    rank = np.empty(len(first), dtype=np.int64)
    rank[np.argsort(first, kind="stable")] = np.arange(len(first), dtype=np.int64)
    return rank[inverse]


def label_clusters(config: LatticeConfiguration) -> np.ndarray:
    """Label 4-connected open clusters.

    Returns an ``(H, W)`` integer array: closed sites get label ``-1``; open
    sites get a label in ``0 .. n_clusters-1``.  Labels are contiguous and
    ordered by the first (row-major) appearance of each cluster.
    """
    mask = config.open_mask
    h, w = mask.shape
    uf = UnionFind(h * w)
    idx = np.arange(h * w).reshape(h, w)

    # Horizontal unions: open site with open right neighbour.
    horiz = mask[:, :-1] & mask[:, 1:]
    uf.union_pairs(idx[:, :-1][horiz], idx[:, 1:][horiz])
    # Vertical unions: open site with open lower neighbour.
    vert = mask[:-1, :] & mask[1:, :]
    uf.union_pairs(idx[:-1, :][vert], idx[1:, :][vert])
    if config.wrap:
        wrap_h = mask[:, -1] & mask[:, 0]
        uf.union_pairs(idx[:, -1][wrap_h], idx[:, 0][wrap_h])
        wrap_v = mask[-1, :] & mask[0, :]
        uf.union_pairs(idx[-1, :][wrap_v], idx[0, :][wrap_v])

    labels = np.full((h, w), -1, dtype=np.int64)
    open_idx = idx[mask]
    if open_idx.size == 0:
        return labels
    roots = uf.find_many(open_idx)
    _, compact = np.unique(roots, return_inverse=True)
    # Re-order labels by first appearance to make them deterministic.
    labels[mask] = _order_by_first_appearance(compact)
    return labels


def continuum_cluster_labels(
    points: np.ndarray, radius: float, backend: str = "grid"
) -> np.ndarray:
    """Connected-component labels of the Gilbert (unit-disk) graph on ``points``.

    Adjacency is derived from one :meth:`~repro.geometry.index.SpatialIndex.query_pairs`
    call (exact closed ball, so boundary pairs at distance exactly ``radius``
    are connected), and the pairs are fed to the same :class:`UnionFind` that
    labels lattice clusters.  Returns one label per point, contiguous from 0
    and ordered by first (index-order) appearance.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    pts = as_points(points)
    n = len(pts)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    uf = UnionFind(n)
    pairs = build_index(pts, radius=radius, backend=backend).query_pairs(radius)
    if len(pairs):
        uf.union_pairs(pairs[:, 0], pairs[:, 1])
    roots = uf.find_many(np.arange(n))
    _, compact = np.unique(roots, return_inverse=True)
    return _order_by_first_appearance(compact)


def continuum_largest_cluster_fraction(
    points: np.ndarray, radius: float, backend: str = "grid"
) -> float:
    """Fraction of points in the largest Gilbert-graph cluster (0.0 if empty)."""
    labels = continuum_cluster_labels(points, radius, backend=backend)
    if labels.size == 0:
        return 0.0
    return float(np.bincount(labels).max()) / labels.size


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of each labelled cluster (index = label)."""
    valid = labels[labels >= 0]
    if valid.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(valid)


@dataclass(frozen=True)
class ClusterStatistics:
    """Summary statistics of a labelled configuration.

    Attributes
    ----------
    n_clusters: number of open clusters.
    largest_size: size (site count) of the largest cluster.
    largest_fraction: largest cluster size divided by the total site count —
        the finite-volume estimate of θ(p)·(volume) normalisation used in E09.
    mean_size: mean cluster size over clusters.
    open_fraction: fraction of open sites.
    spanning: whether some cluster touches both the left and right boundary
        columns (a standard finite-size criterion for criticality).
    """

    n_clusters: int
    largest_size: int
    largest_fraction: float
    mean_size: float
    open_fraction: float
    spanning: bool


def cluster_statistics(config: LatticeConfiguration, labels: np.ndarray | None = None) -> ClusterStatistics:
    """Compute :class:`ClusterStatistics` for a configuration."""
    if labels is None:
        labels = label_clusters(config)
    sizes = cluster_sizes(labels)
    n_sites = config.n_sites
    if sizes.size == 0:
        return ClusterStatistics(0, 0, 0.0, 0.0, config.open_fraction, False)
    return ClusterStatistics(
        n_clusters=int(sizes.size),
        largest_size=int(sizes.max()),
        largest_fraction=float(sizes.max()) / n_sites,
        mean_size=float(sizes.mean()),
        open_fraction=config.open_fraction,
        spanning=has_spanning_cluster(config, labels),
    )


def largest_cluster_mask(config: LatticeConfiguration, labels: np.ndarray | None = None) -> np.ndarray:
    """Boolean mask of the largest open cluster (all-``False`` if no open site)."""
    if labels is None:
        labels = label_clusters(config)
    sizes = cluster_sizes(labels)
    if sizes.size == 0:
        return np.zeros(config.shape, dtype=bool)
    return labels == int(np.argmax(sizes))


def has_spanning_cluster(config: LatticeConfiguration, labels: np.ndarray | None = None) -> bool:
    """``True`` when one open cluster touches both the left and right edges.

    Left–right spanning of an L×L box is the classic finite-size indicator
    whose probability jumps from 0 to 1 across p_c as L grows; it drives the
    threshold estimator in :mod:`repro.percolation.critical`.
    """
    if labels is None:
        labels = label_clusters(config)
    left = labels[:, 0]
    right = labels[:, -1]
    left_labels = set(int(x) for x in left[left >= 0])
    if not left_labels:
        return False
    right_labels = set(int(x) for x in right[right >= 0])
    return bool(left_labels & right_labels)


def theta_estimate(config: LatticeConfiguration, labels: np.ndarray | None = None) -> float:
    """Finite-volume estimate of θ(p): P(a given site lies in the largest cluster).

    On the infinite lattice θ(p) is the probability that the origin belongs to
    the infinite cluster; on a finite box the standard proxy is the largest
    cluster's share of *all* sites.  The paper leans on the monotonicity of
    θ(p) for its coverage argument (§3.2), which experiment E09 verifies.
    """
    if labels is None:
        labels = label_clusters(config)
    sizes = cluster_sizes(labels)
    if sizes.size == 0:
        return 0.0
    return float(sizes.max()) / config.n_sites
