"""Finite square-lattice site-percolation configurations.

A configuration is an ``(H, W)`` boolean array: ``True`` marks an *open*
site.  Configurations come from two sources in this library:

1. Bernoulli(p) sampling (:func:`sample_site_percolation`) — used to validate
   the percolation substrate itself (experiment E09) and to drive the
   Angel-et-al routing experiments.
2. The good-tile indicator of a sensor deployment
   (:meth:`repro.core.goodness.TileClassification.open_site_mask`) — the
   coupling at the heart of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.rng import resolve_rng

__all__ = ["LatticeConfiguration", "sample_site_percolation"]

#: The four lattice neighbour offsets (von Neumann neighbourhood).
NEIGHBOUR_OFFSETS: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


@dataclass
class LatticeConfiguration:
    """A site-percolation configuration on a finite patch of Z².

    Attributes
    ----------
    open_mask:
        ``(H, W)`` boolean array; ``open_mask[row, col]`` is ``True`` when the
        site ``(row, col)`` is open.
    wrap:
        If ``True`` the lattice is a torus (periodic boundaries).  The paper's
        analysis is on the infinite lattice; a torus removes boundary effects
        for cluster statistics, while open boundaries are what the routing and
        spanning experiments want.
    """

    open_mask: np.ndarray
    wrap: bool = False

    def __post_init__(self) -> None:
        mask = np.asarray(self.open_mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("open_mask must be a 2-D boolean array")
        self.open_mask = mask

    # -- basic views ---------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.open_mask.shape

    @property
    def height(self) -> int:
        return self.open_mask.shape[0]

    @property
    def width(self) -> int:
        return self.open_mask.shape[1]

    @property
    def n_sites(self) -> int:
        return self.open_mask.size

    @property
    def n_open(self) -> int:
        return int(self.open_mask.sum())

    @property
    def open_fraction(self) -> float:
        """Empirical density of open sites (an estimate of p)."""
        return self.n_open / self.n_sites if self.n_sites else 0.0

    def is_open(self, site: Tuple[int, int]) -> bool:
        r, c = site
        return bool(self.open_mask[r, c])

    def in_bounds(self, site: Tuple[int, int]) -> bool:
        r, c = site
        return 0 <= r < self.height and 0 <= c < self.width

    def sites(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all site coordinates (row, col)."""
        for r in range(self.height):
            for c in range(self.width):
                yield (r, c)

    def open_sites(self) -> np.ndarray:
        """``(n_open, 2)`` integer array of open-site coordinates."""
        rows, cols = np.nonzero(self.open_mask)
        return np.column_stack([rows, cols])

    def neighbours(self, site: Tuple[int, int]) -> list[Tuple[int, int]]:
        """Lattice neighbours of ``site`` (respecting wrap / boundaries)."""
        r, c = site
        result = []
        for dr, dc in NEIGHBOUR_OFFSETS:
            nr, nc = r + dr, c + dc
            if self.wrap:
                nr %= self.height
                nc %= self.width
            elif not (0 <= nr < self.height and 0 <= nc < self.width):
                continue
            result.append((nr, nc))
        return result

    def open_neighbours(self, site: Tuple[int, int]) -> list[Tuple[int, int]]:
        """Open lattice neighbours of ``site``."""
        return [s for s in self.neighbours(site) if self.open_mask[s]]

    def site_index(self, site: Tuple[int, int]) -> int:
        """Flatten a (row, col) site to a linear index (row-major)."""
        r, c = site
        return r * self.width + c

    def index_site(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`site_index`."""
        return divmod(index, self.width)

    def subgraph_networkx(self):
        """The open-site adjacency graph as a :class:`networkx.Graph`.

        Nodes are (row, col) tuples of open sites; edges join open lattice
        neighbours.  Intended for cross-checking the union–find clustering and
        for small routing examples — large experiments use the array code
        paths instead.
        """
        import networkx as nx

        graph = nx.Graph()
        open_sites = list(map(tuple, self.open_sites()))
        graph.add_nodes_from(open_sites)
        for site in open_sites:
            for nb in self.open_neighbours(site):
                if site < nb:
                    graph.add_edge(site, nb)
        return graph


def sample_site_percolation(
    height: int,
    width: int,
    p: float,
    rng: np.random.Generator | None = None,
    wrap: bool = False,
) -> LatticeConfiguration:
    """Sample a Bernoulli(p) site-percolation configuration on an H×W patch."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    if height < 1 or width < 1:
        raise ValueError("lattice dimensions must be positive")
    rng = resolve_rng(rng)
    mask = rng.random((height, width)) < p
    return LatticeConfiguration(mask, wrap=wrap)
