"""Chemical distance inside percolation clusters.

The *chemical distance* D_p(x, y) is the graph distance between two open
sites through open paths.  Antal & Pisztora proved (the paper's Lemma 1.1)
that above criticality the chemical distance is, with exponentially high
probability, at most a constant multiple ρ(p) of the L¹ lattice distance.
The constant-stretch property of UDG-SENS / NN-SENS (Theorem 3.2) is inherited
directly from this result through the tile↔site coupling, so experiment E04
measures exactly this ratio.

The implementation is a numpy-friendly breadth-first search over the open
mask; multi-source BFS amortises the cost when many targets share a source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.percolation.clusters import label_clusters
from repro.percolation.lattice import LatticeConfiguration
from repro.rng import resolve_rng

__all__ = [
    "chemical_distances_from",
    "chemical_distance",
    "chemical_stretch_samples",
    "StretchSample",
]


def chemical_distances_from(
    config: LatticeConfiguration, source: Tuple[int, int]
) -> np.ndarray:
    """BFS distances from ``source`` through open sites.

    Returns an ``(H, W)`` integer array with ``-1`` for unreachable or closed
    sites and the hop count for reachable open sites (0 at the source).

    Raises
    ------
    ValueError
        If the source site is closed or out of bounds.
    """
    if not config.in_bounds(source):
        raise ValueError(f"source {source} outside the lattice")
    if not config.is_open(source):
        raise ValueError(f"source {source} is a closed site")
    h, w = config.shape
    dist = np.full((h, w), -1, dtype=np.int64)
    dist[source] = 0
    queue: deque[Tuple[int, int]] = deque([source])
    mask = config.open_mask
    wrap = config.wrap
    while queue:
        r, c = queue.popleft()
        d = dist[r, c] + 1
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nr, nc = r + dr, c + dc
            if wrap:
                nr %= h
                nc %= w
            elif not (0 <= nr < h and 0 <= nc < w):
                continue
            if mask[nr, nc] and dist[nr, nc] < 0:
                dist[nr, nc] = d
                queue.append((nr, nc))
    return dist


def chemical_distance(
    config: LatticeConfiguration, a: Tuple[int, int], b: Tuple[int, int]
) -> int:
    """Chemical distance between two open sites (``-1`` if disconnected)."""
    dist = chemical_distances_from(config, a)
    if not config.in_bounds(b):
        raise ValueError(f"target {b} outside the lattice")
    return int(dist[b])


@dataclass(frozen=True)
class StretchSample:
    """One (source, target) chemical-stretch observation.

    Attributes
    ----------
    source, target: lattice coordinates.
    l1_distance: Manhattan distance on the full lattice (D(x, y) in the paper).
    chemical: chemical distance through open sites (D_p(x, y)).
    stretch: ``chemical / l1_distance`` (``inf`` when disconnected,
        1.0 when the two coincide).
    """

    source: Tuple[int, int]
    target: Tuple[int, int]
    l1_distance: int
    chemical: int
    stretch: float


def chemical_stretch_samples(
    config: LatticeConfiguration,
    n_pairs: int,
    rng: np.random.Generator | None = None,
    restrict_to_largest: bool = True,
    min_l1: int = 1,
) -> list[StretchSample]:
    """Sample random open-site pairs and measure their chemical stretch.

    Parameters
    ----------
    config:
        The percolation configuration.
    n_pairs:
        Number of (source, target) pairs to sample.
    restrict_to_largest:
        When ``True`` (default) both endpoints are drawn from the largest
        cluster, mirroring the paper's setting where routing happens inside
        the giant component.
    min_l1:
        Discard pairs closer than this L¹ distance (ratios at tiny distances
        are noisy and uninformative).
    """
    if n_pairs < 1:
        raise ValueError("n_pairs must be positive")
    rng = resolve_rng(rng)
    labels = label_clusters(config)
    if restrict_to_largest:
        sizes = np.bincount(labels[labels >= 0]) if (labels >= 0).any() else np.zeros(0, dtype=int)
        if sizes.size == 0:
            return []
        target_label = int(np.argmax(sizes))
        candidate_mask = labels == target_label
    else:
        candidate_mask = config.open_mask
    coords = np.column_stack(np.nonzero(candidate_mask))
    if len(coords) < 2:
        return []

    samples: list[StretchSample] = []
    # Group pairs by source so that one BFS serves several targets.
    sources_needed = max(1, int(np.ceil(n_pairs / 4)))
    src_idx = rng.integers(0, len(coords), size=sources_needed)
    pair_budget = n_pairs
    for si in src_idx:
        if pair_budget <= 0:
            break
        source = tuple(int(x) for x in coords[si])
        dist = chemical_distances_from(config, source)
        targets = coords[rng.integers(0, len(coords), size=min(4, pair_budget))]
        for target_arr in targets:
            target = tuple(int(x) for x in target_arr)
            l1 = abs(target[0] - source[0]) + abs(target[1] - source[1])
            if l1 < min_l1:
                continue
            chem = int(dist[target])
            stretch = float("inf") if chem < 0 else chem / l1
            samples.append(StretchSample(source, target, l1, chem, stretch))
            pair_budget -= 1
    return samples
