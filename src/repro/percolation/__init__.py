"""Site percolation substrate on the square lattice Z².

The SENS constructions are analysed by coupling the tile process in R² with
site percolation on Z² (a site is *open* iff its tile is *good*).  This
package provides everything that coupling needs:

* :mod:`repro.percolation.lattice` — finite square-lattice configurations
  (random Bernoulli sampling or externally supplied open masks, e.g. the
  good-tile mask produced by :mod:`repro.core.goodness`).
* :mod:`repro.percolation.clusters` — union–find cluster labelling, cluster
  statistics, θ(p) estimation, spanning detection.
* :mod:`repro.percolation.critical` — finite-size estimation of the site
  percolation threshold (the paper uses p_c ∈ (0.592, 0.593)).
* :mod:`repro.percolation.chemical` — chemical (graph) distance inside the
  open cluster, the quantity bounded by the Antal–Pisztora theorem that the
  paper cites as Lemma 1.1.

The literature value of the threshold is exposed as
:data:`SITE_PERCOLATION_THRESHOLD`.
"""

from repro.percolation.chemical import chemical_distance, chemical_distances_from, chemical_stretch_samples
from repro.percolation.clusters import (
    ClusterStatistics,
    UnionFind,
    cluster_statistics,
    continuum_cluster_labels,
    continuum_largest_cluster_fraction,
    label_clusters,
    largest_cluster_mask,
    has_spanning_cluster,
    theta_estimate,
)
from repro.percolation.critical import estimate_critical_probability, spanning_probability_curve
from repro.percolation.lattice import LatticeConfiguration, sample_site_percolation

#: Accepted numerical value of the site-percolation threshold on Z²
#: (the paper uses the bracket (0.592, 0.593); modern numerics give 0.592746).
SITE_PERCOLATION_THRESHOLD: float = 0.592746

__all__ = [
    "SITE_PERCOLATION_THRESHOLD",
    "LatticeConfiguration",
    "sample_site_percolation",
    "UnionFind",
    "ClusterStatistics",
    "label_clusters",
    "cluster_statistics",
    "continuum_cluster_labels",
    "continuum_largest_cluster_fraction",
    "largest_cluster_mask",
    "has_spanning_cluster",
    "theta_estimate",
    "estimate_critical_probability",
    "spanning_probability_curve",
    "chemical_distance",
    "chemical_distances_from",
    "chemical_stretch_samples",
]
