"""Finite-size estimation of the site-percolation threshold.

The paper takes p_c ∈ (0.592, 0.593) from the literature and asks for the
smallest λ (resp. k) whose tile-goodness probability exceeds that bracket.
Experiment E09 validates the substrate by re-estimating p_c from spanning
probabilities on finite boxes: for each p the probability that an L×L box has
a left–right spanning open cluster is estimated by Monte Carlo, and the
crossing point of that sigmoid with 1/2 converges to p_c as L grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.percolation.clusters import has_spanning_cluster, label_clusters
from repro.percolation.lattice import sample_site_percolation
from repro.rng import resolve_rng

__all__ = ["SpanningCurve", "spanning_probability_curve", "estimate_critical_probability"]


@dataclass(frozen=True)
class SpanningCurve:
    """Spanning probability as a function of p for a fixed box size.

    Attributes
    ----------
    p_values: probed occupation probabilities (sorted ascending).
    spanning_probability: Monte-Carlo estimate of P(left–right spanning).
    box_size: lattice side L.
    trials: Monte-Carlo trials per p value.
    """

    p_values: np.ndarray
    spanning_probability: np.ndarray
    box_size: int
    trials: int

    def crossing_point(self, level: float = 0.5) -> float:
        """p at which the spanning probability first crosses ``level``.

        Linear interpolation between the bracketing probe points; returns the
        first or last probe when the curve never crosses.
        """
        probs = self.spanning_probability
        ps = self.p_values
        above = probs >= level
        if above.all():
            return float(ps[0])
        if not above.any():
            return float(ps[-1])
        i = int(np.argmax(above))
        if i == 0:
            return float(ps[0])
        p0, p1 = ps[i - 1], ps[i]
        y0, y1 = probs[i - 1], probs[i]
        if y1 == y0:
            return float(p1)
        return float(p0 + (level - y0) * (p1 - p0) / (y1 - y0))


def spanning_probability_curve(
    p_values: Sequence[float],
    box_size: int,
    trials: int,
    rng: np.random.Generator | None = None,
) -> SpanningCurve:
    """Estimate the spanning probability for each ``p`` on an ``box_size²`` lattice."""
    if box_size < 2:
        raise ValueError("box_size must be at least 2")
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = resolve_rng(rng)
    ps = np.sort(np.asarray(list(p_values), dtype=np.float64))
    probs = np.empty_like(ps)
    for i, p in enumerate(ps):
        hits = 0
        for _ in range(trials):
            config = sample_site_percolation(box_size, box_size, float(p), rng)
            labels = label_clusters(config)
            hits += has_spanning_cluster(config, labels)
        probs[i] = hits / trials
    return SpanningCurve(ps, probs, box_size, trials)


def estimate_critical_probability(
    box_size: int = 48,
    trials: int = 40,
    p_grid: Sequence[float] | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Point estimate of p_c via the 50% spanning crossing on one box size.

    This is intentionally a light-weight estimator (the library is validating
    a coupling, not competing with dedicated percolation codes); the defaults
    land within about ±0.01 of the accepted 0.5927, which is enough to check
    that the coupling uses a sensible threshold.
    """
    if p_grid is None:
        p_grid = np.linspace(0.50, 0.70, 21)
    curve = spanning_probability_curve(p_grid, box_size, trials, rng)
    return curve.crossing_point(0.5)
