"""Deterministic, seeded fault injection (`repro.faults`).

The subsystem follows the repo's injected-clock / injected-RNG discipline:
a :class:`FaultPlan` is sampled once from a seed (:func:`sample_plan`) and
replayed by a :class:`FaultInjector` against named injection points wired
into the production layers (``network.deliver``, ``shard.build``,
``queue.execute``, ``serve.tick``, ``serve.client``).  Fault-free runs pay
nothing and stay byte-identical; faulted runs within each layer's tolerance
envelope must *also* recover to byte-identical output — the chaos property
tests in :mod:`repro.faults.chaos` certify exactly that.
"""

from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FAULT_KINDS,
    KILL,
    STALL,
    Fault,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultToleranceExceeded,
    InjectedWorkerCrash,
    PointSpec,
    ServeKilled,
    sample_plan,
)
from repro.faults.retry import RetryError, RetryPolicy, call_with_retry

__all__ = [
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "FAULT_KINDS",
    "KILL",
    "STALL",
    "Fault",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultToleranceExceeded",
    "InjectedWorkerCrash",
    "PointSpec",
    "ServeKilled",
    "sample_plan",
    "RetryError",
    "RetryPolicy",
    "call_with_retry",
]
