"""Chaos property harness: seeded fault storms must recover or fail loudly.

Each ``chaos_*_storm`` function runs one layer of the stack under a seeded
:class:`~repro.faults.plan.FaultPlan` and certifies the robustness contract
both ways:

* **within the envelope** the run recovers to output *byte-identical* to a
  fault-free reference — certified with the layer's own equivalence
  machinery (:func:`~repro.distributed.sharding.matches_unsharded` for
  shards, canonical store records for the queue,
  :meth:`~repro.serve.world.LiveWorld.digest` plus the reply stream for the
  daemon);
* **beyond the envelope** the run degrades to an *explicit* signal
  (:class:`~repro.faults.plan.FaultToleranceExceeded`, a quarantined queue
  row) — never a silently different result, never a hang.

A storm that recovers with non-identical output raises
:class:`ChaosViolation`; that exception firing is exactly the property the
chaos tests and the CI ``chaos-smoke`` job assert never happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import pathlib
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.construct import distributed_build
from repro.distributed.sharding import matches_unsharded, sharded_build
from repro.faults.plan import (
    CRASH,
    DROP,
    KILL,
    STALL,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultToleranceExceeded,
    InjectedWorkerCrash,
    PointSpec,
    ServeKilled,
    sample_plan,
)
from repro.faults.retry import RetryPolicy
from repro.geometry.primitives import Rect
from repro.runner import REGISTRY, register
from repro.runner.executor import make_jobs, run_jobs
from repro.runner.queue import JobQueue, run_worker
from repro.runner.serialize import canonical_json
from repro.runner.store import ResultStore
from repro.serve.server import ServeSession
from repro.serve.snapshot import restore_world, save_snapshot
from repro.serve.world import LiveWorld, WorldConfig

__all__ = [
    "CHAOS_EXPERIMENT_ID",
    "ChaosReport",
    "ChaosViolation",
    "ensure_chaos_experiment",
    "store_fingerprint",
    "chaos_shard_storm",
    "chaos_queue_storm",
    "chaos_serve_storm",
]

#: Registry id of the cheap probe experiment the queue storms execute.
CHAOS_EXPERIMENT_ID = "C90"

_WINDOW = Rect(0.0, 0.0, 15.0, 15.0)


class ChaosViolation(FaultError):
    """The property the whole subsystem defends was violated.

    A storm *recovered* (no explicit degradation signal) yet produced output
    different from the fault-free reference — silent corruption.
    """


@dataclass
class ChaosReport:
    """Outcome of one seeded storm.

    ``outcome`` is ``"recovered"`` (byte-identity certified against the
    fault-free reference) or ``"exceeded"`` (the storm outran the layer's
    budget and the layer said so explicitly).  Either is a *pass*; the
    failure mode — silent corruption — raises :class:`ChaosViolation`
    instead of returning.
    """

    suite: str
    seed: int
    outcome: str
    n_fired: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def line(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"chaos[{self.suite}] seed={self.seed} {self.outcome} faults={self.n_fired} {extras}"


def ensure_chaos_experiment() -> None:
    """Register the probe experiment (idempotent; stays registered)."""
    if CHAOS_EXPERIMENT_ID in REGISTRY:
        return
    from repro.analysis.experiments import ExperimentResult

    @register(CHAOS_EXPERIMENT_ID, title="chaos probe workload")
    def chaos_probe(x: int = 0, seed: int = 0, fail: bool = False) -> ExperimentResult:
        if fail:
            raise RuntimeError("chaos probe asked to fail")
        rng = np.random.default_rng(seed)
        return ExperimentResult(
            experiment_id=CHAOS_EXPERIMENT_ID,
            title="chaos probe workload",
            paper_reference="-",
            rows=[{"x": x, "draw": float(rng.random())}],
            headline={"x": float(x)},
        )


def store_fingerprint(store: Union[str, pathlib.Path], experiment_id: Optional[str] = None) -> str:
    """Canonical bytes of a store's ``ok`` records (backend-agnostic)."""
    opened = ResultStore(store)
    try:
        opened.refresh()
        records = sorted(
            opened.records(experiment_id=experiment_id, status="ok"),
            key=lambda record: str(record.get("key")),
        )
        return canonical_json(records)
    finally:
        opened.close()


def _deployment(seed: int, n_points: int) -> np.ndarray:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC4A05]))
    return rng.uniform(0.0, 15.0, size=(n_points, 2))


# ---------------------------------------------------------------------------
# shard storms
# ---------------------------------------------------------------------------
def chaos_shard_storm(
    seed: int,
    *,
    executor: str = "serial",
    n_shards: int = 4,
    n_points: int = 180,
    rate: float = 0.25,
    horizon: int = 48,
    max_attempts: int = 3,
    plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Crash/stall storm against the sharded builder.

    Within the envelope (fewer than ``max_attempts`` consecutive faults per
    shard attempt chain) the stitched result must match an unfaulted
    unsharded build — edges, elections, relays *and* message accounting.
    """
    points = _deployment(seed, n_points)
    spec = UDGTileSpec.default()
    reference = distributed_build(points, spec, _WINDOW, radio_range=None)
    if plan is None:
        plan = sample_plan(
            seed,
            {
                "shard.build": PointSpec(
                    kinds=(CRASH, STALL), horizon=horizon, rate=rate, arg_range=(0.0, 0.02)
                )
            },
        )
    injector = FaultInjector(plan)
    backoffs: List[float] = []
    try:
        result, _info = sharded_build(
            points,
            spec,
            _WINDOW,
            n_shards=n_shards,
            executor=executor,
            injector=injector,
            retry=RetryPolicy(max_attempts=max_attempts),
            sleep=backoffs.append,
        )
    except FaultToleranceExceeded as err:
        return ChaosReport(
            suite="shard",
            seed=seed,
            outcome="exceeded",
            n_fired=injector.n_fired(),
            detail={"error": type(err).__name__, "resubmissions": len(backoffs)},
        )
    if not matches_unsharded(result, reference):
        raise ChaosViolation(
            f"shard storm seed={seed} recovered to a DIFFERENT build than the "
            f"fault-free reference (plan: {plan.canonical()})"
        )
    return ChaosReport(
        suite="shard",
        seed=seed,
        outcome="recovered",
        n_fired=injector.n_fired(),
        detail={"resubmissions": len(backoffs), "executor": executor},
    )


# ---------------------------------------------------------------------------
# queue storms
# ---------------------------------------------------------------------------
def chaos_queue_storm(
    seed: int,
    workdir: Union[str, pathlib.Path],
    *,
    n_jobs: int = 6,
    rate: float = 0.35,
    horizon: int = 32,
    max_attempts: int = 4,
    lease_seconds: float = 30.0,
    max_workers: int = 25,
    plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Worker-death storm against the pull-worker queue.

    Every injected crash kills the draining worker with its claim still
    held; recovery is lease-expiry takeover by a replacement worker (the
    test advances the clock through ``reopen_expired`` instead of waiting
    a lease out).  Jobs whose claimants die ``max_attempts`` times are
    quarantined; :meth:`~repro.runner.queue.JobQueue.requeue` then drains
    them with a fresh budget.  Whatever the path, the surviving store must
    be byte-identical to a fault-free serial run of the same jobs.
    """
    ensure_chaos_experiment()
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    jobs = make_jobs(
        CHAOS_EXPERIMENT_ID, [{"x": i, "seed": seed * 1000 + i} for i in range(n_jobs)]
    )

    ref_store = workdir / f"queue-ref-{seed}"
    run_jobs(jobs, n_jobs=1, store=ref_store)

    queue_path = workdir / f"queue-chaos-{seed}.sqlite"
    with JobQueue(queue_path) as queue:
        queue.enqueue(jobs)
    if plan is None:
        plan = sample_plan(
            seed,
            {
                "queue.execute": PointSpec(
                    kinds=(CRASH, STALL), horizon=horizon, rate=rate, arg_range=(0.0, 0.01)
                )
            },
        )
    injector = FaultInjector(plan)
    idle_sleeps: List[float] = []
    crashes = 0
    requeues = 0
    drained = False
    for generation in range(1, max_workers + 1):
        try:
            run_worker(
                queue_path,
                worker_id=f"chaos-{seed}-w{generation}",
                lease_seconds=lease_seconds,
                max_attempts=max_attempts,
                sleep=idle_sleeps.append,
                injector=injector,
            )
        except InjectedWorkerCrash:
            crashes += 1
            # The dead worker's claim expires; jump past the latest stamped
            # lease instead of sleeping it out (no wall-clock read needed).
            with JobQueue(queue_path) as queue:
                latest = max((row["lease_expires"] or 0.0) for row in queue.rows())
                queue.reopen_expired(now=latest + 1.0)
            continue
        with JobQueue(queue_path) as queue:
            counts = queue.counts()
            if counts["quarantined"]:
                # The explicit beyond-the-envelope degradation: recover it
                # through the operator path and keep draining.
                requeues += counts["quarantined"]
                queue.requeue()
                continue
        drained = counts["open"] == 0 and counts["claimed"] == 0
        break
    if not drained:
        raise ChaosViolation(
            f"queue storm seed={seed} did not drain within {max_workers} worker "
            f"generations (plan: {plan.canonical()})"
        )
    if counts["done"] != n_jobs or counts["failed"] != 0:
        raise ChaosViolation(f"queue storm seed={seed} ended with bad counts {counts}")
    if store_fingerprint(queue_path, CHAOS_EXPERIMENT_ID) != store_fingerprint(
        ref_store, CHAOS_EXPERIMENT_ID
    ):
        raise ChaosViolation(
            f"queue storm seed={seed} stored records differing from the fault-free "
            f"serial run (plan: {plan.canonical()})"
        )
    return ChaosReport(
        suite="queue",
        seed=seed,
        outcome="recovered",
        n_fired=injector.n_fired(),
        detail={"worker_deaths": crashes, "quarantined": requeues},
    )


# ---------------------------------------------------------------------------
# serve storms
# ---------------------------------------------------------------------------
def chaos_serve_storm(
    seed: int,
    workdir: Union[str, pathlib.Path],
    *,
    n_nodes: int = 30,
    n_ticks: int = 8,
    events_per_tick: int = 4,
    kill_rate: float = 0.3,
    client_rate: float = 0.3,
    max_attempts: int = 6,
    backend: str = "grid",
    plan: Optional[FaultPlan] = None,
) -> ChaosReport:
    """Kill/reconnect storm against the serve session.

    The client streams tick batches; a ``serve.tick`` *kill* fault dies
    mid-flush (the tick never applied), the client restores the daemon from
    its snapshot store and *resends the unacknowledged batch* — which gets
    the very seqs the lost originals carried, so the surviving replies and
    the final world digest must equal the uninterrupted reference run's.
    ``serve.client`` faults lose the client's copy of a tick's replies
    (verified back through the ``resume`` handshake) or stall it (resynced
    with a ``ping``).
    """
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5E47E]))
    positions = rng.uniform(0.0, 15.0, size=(n_nodes, 2))
    ticks: List[List[Dict[str, Any]]] = []
    for _ in range(n_ticks):
        batch: List[Dict[str, Any]] = []
        for _ in range(events_per_tick):
            draw = rng.random()
            if draw < 0.7:
                batch.append(
                    {
                        "op": "move",
                        "node": int(rng.integers(n_nodes)),
                        "position": [float(rng.uniform(0.0, 15.0)) for _ in range(2)],
                    }
                )
            elif draw < 0.85:
                batch.append(
                    {"op": "insert", "position": [float(rng.uniform(0.0, 15.0)) for _ in range(2)]}
                )
            else:
                batch.append({"op": "delete", "node": int(rng.integers(n_nodes))})
        ticks.append(batch)

    # -- fault-free reference -------------------------------------------------
    ref_world = LiveWorld(positions.copy(), WorldConfig(backend=backend))
    ref_session = ServeSession(ref_world)
    ref_replies: List[List[str]] = []
    for batch in ticks:
        for event in batch:
            ref_session.handle_line(json.dumps(event))
        ref_replies.append([reply for _, reply in ref_session.flush()])

    # -- the storm ------------------------------------------------------------
    if plan is None:
        plan = sample_plan(
            seed,
            {
                "serve.tick": PointSpec(
                    kinds=(KILL,), horizon=n_ticks * max_attempts, rate=kill_rate
                ),
                "serve.client": PointSpec(
                    kinds=(DROP, STALL), horizon=n_ticks, rate=client_rate
                ),
            },
        )
    injector = FaultInjector(plan)
    snap_store = workdir / f"serve-chaos-{seed}"
    world = LiveWorld(positions.copy(), WorldConfig(backend=backend))
    session = ServeSession(world, snapshot_store=snap_store, injector=injector)
    save_snapshot(snap_store, world)  # seq-0 baseline: even a first-tick kill restores
    kills = 0
    resumes = 0
    for tick_no, batch in enumerate(ticks):
        applied: Optional[List[str]] = None
        for attempt in range(1, max_attempts + 1):
            for event in batch:
                result = session.handle_line(json.dumps(event))
                if result.immediate is not None:
                    raise ChaosViolation(
                        f"serve storm seed={seed} tick {tick_no}: event refused "
                        f"unexpectedly: {result.immediate}"
                    )
            try:
                applied = [reply for _, reply in session.flush()]
            except ServeKilled:
                kills += 1
                world = restore_world(snap_store)
                session = ServeSession(world, snapshot_store=snap_store, injector=injector)
                continue
            break
        if applied is None:
            return ChaosReport(
                suite="serve",
                seed=seed,
                outcome="exceeded",
                n_fired=injector.n_fired(),
                detail={"kills": kills, "stuck_tick": tick_no},
            )
        save_snapshot(snap_store, world)
        fault = injector.fire("serve.client")
        if fault is not None and fault.kind == DROP:
            # The client lost this tick's replies; the resume handshake tells
            # it the events nevertheless applied (so: no resend).
            resumes += 1
            resume = session.handle_line(json.dumps({"op": "resume"}))
            payload = json.loads(resume.immediate or "{}")
            if not payload.get("ok") or payload.get("applied_seq") != world.applied_seq:
                raise ChaosViolation(
                    f"serve storm seed={seed}: resume handshake disagreed: {payload}"
                )
        else:
            if applied != ref_replies[tick_no]:
                raise ChaosViolation(
                    f"serve storm seed={seed} tick {tick_no}: replies diverged from "
                    f"the uninterrupted reference (plan: {plan.canonical()})"
                )
            if fault is not None and fault.kind == STALL:
                pong = session.handle_line(json.dumps({"op": "ping"}))
                payload = json.loads(pong.immediate or "{}")
                if not payload.get("pong"):
                    raise ChaosViolation(f"serve storm seed={seed}: ping resync failed")
    if world.digest() != ref_world.digest() or world.applied_seq != ref_world.applied_seq:
        raise ChaosViolation(
            f"serve storm seed={seed} recovered to a DIFFERENT world than the "
            f"uninterrupted reference (plan: {plan.canonical()})"
        )
    return ChaosReport(
        suite="serve",
        seed=seed,
        outcome="recovered",
        n_fired=injector.n_fired(),
        detail={"kills": kills, "reply_drops": resumes},
    )
