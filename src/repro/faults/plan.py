"""Seeded fault plans: deterministic chaos in the injected-RNG discipline.

A :class:`FaultPlan` is a *pre-sampled schedule* of faults against named
injection points ("``network.deliver``", "``shard.build``",
"``queue.execute``", "``serve.tick``", "``serve.client``").  The plan is
built once from a :class:`numpy.random.SeedSequence`-derived generator
(:func:`sample_plan`) or written out by hand, and serialises as canonical
JSON — so a chaos run is replayable byte-for-byte from ``(inputs, seed)``
exactly like every other seeded path in this repo.  Nothing at the injection
sites ever draws randomness: a :class:`FaultInjector` just counts visits to
each point and fires the fault the plan scheduled for that occurrence.

The tolerated *envelope* of a plan is a property of the consuming layer
(bounded retries in :mod:`repro.distributed.sharding`, attempt caps in
:mod:`repro.runner.queue`, snapshot/resume in :mod:`repro.serve`): a plan
whose faults fit the layer's budget must recover to byte-identical output;
a plan beyond it must degrade to an explicit error or quarantine record —
the chaos property tests certify both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.runner.serialize import canonical_json

__all__ = [
    "DROP",
    "DUPLICATE",
    "DELAY",
    "CRASH",
    "STALL",
    "KILL",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "PointSpec",
    "sample_plan",
    "FaultError",
    "InjectedWorkerCrash",
    "ServeKilled",
    "FaultToleranceExceeded",
]

#: Message-level faults (``network.deliver``).
DROP, DUPLICATE, DELAY = "drop", "duplicate", "delay"
#: Worker-level faults (``shard.build``, ``queue.execute``).
CRASH, STALL = "crash", "stall"
#: Daemon/connection-level faults (``serve.tick``, ``serve.client``).
KILL = "kill"

FAULT_KINDS = (DROP, DUPLICATE, DELAY, CRASH, STALL, KILL)


class FaultError(RuntimeError):
    """Base class of every injected-fault signal."""


class InjectedWorkerCrash(FaultError):
    """A simulated worker death (shard task or queue claimant).

    Semantically a SIGKILL: the holder vanishes mid-work, so recovery must
    come from the *outside* (task resubmission, lease expiry) — handlers
    must never complete or release on its behalf.
    """


class ServeKilled(FaultError):
    """A simulated daemon death mid-tick (the tick never applied)."""


class FaultToleranceExceeded(FaultError):
    """A fault storm outran the layer's recovery budget.

    This is the *explicit* out-of-envelope outcome: the caller gets a loud
    error (never a silently corrupted result, never a hang).
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: fire ``kind`` at the ``occurrence``-th visit of ``point``.

    ``arg`` is the kind's parameter: stall/delay duration in seconds (or
    rounds for message delay), and for :data:`CRASH` an ``arg >= 1`` asks
    for a *hard* crash (process death, breaking the whole pool) instead of
    an in-worker exception.
    """

    point: str
    occurrence: int
    kind: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}")
        if self.occurrence < 0:
            raise ValueError("occurrence must be non-negative")

    def to_payload(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "occurrence": int(self.occurrence),
            "kind": self.kind,
            "arg": float(self.arg),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Fault":
        return cls(
            point=str(payload["point"]),
            occurrence=int(payload["occurrence"]),
            kind=str(payload["kind"]),
            arg=float(payload.get("arg", 0.0)),
        )


class FaultPlan:
    """An immutable schedule of faults, canonically serialisable.

    At most one fault per ``(point, occurrence)`` — the n-th visit of an
    injection point either fires exactly one fault or none, which keeps
    injector semantics trivial and plans order-independent.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        ordered = sorted(faults, key=lambda f: (f.point, f.occurrence, f.kind))
        seen = set()
        for fault in ordered:
            slot = (fault.point, fault.occurrence)
            if slot in seen:
                raise ValueError(f"duplicate fault slot {slot}: one fault per occurrence")
            seen.add(slot)
        self.faults: Tuple[Fault, ...] = tuple(ordered)
        self._by_point: Dict[str, Dict[int, Fault]] = {}
        for fault in self.faults:
            self._by_point.setdefault(fault.point, {})[fault.occurrence] = fault

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.faults)} faults over {sorted(self._by_point)})"

    def for_point(self, point: str) -> Dict[int, Fault]:
        """``occurrence -> fault`` of one injection point (empty if unscheduled)."""
        return dict(self._by_point.get(point, {}))

    def count(self, point: Optional[str] = None, kind: Optional[str] = None) -> int:
        """How many scheduled faults match the (optional) point/kind filters."""
        return sum(
            1
            for fault in self.faults
            if (point is None or fault.point == point) and (kind is None or fault.kind == kind)
        )

    def to_payload(self) -> Dict[str, Any]:
        return {"version": 1, "faults": [fault.to_payload() for fault in self.faults]}

    def canonical(self) -> str:
        """The plan as one canonical-JSON line (the replayable artefact)."""
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if payload.get("version") != 1:
            raise ValueError(f"unknown fault-plan version {payload.get('version')!r}")
        return cls(Fault.from_payload(entry) for entry in payload["faults"])


@dataclass(frozen=True)
class PointSpec:
    """How :func:`sample_plan` populates one injection point.

    ``horizon`` is the number of occurrences faults may land on, ``rate``
    the per-occurrence fault probability, ``kinds`` the kinds drawn
    uniformly for each hit, ``arg_range`` the uniform range of each fault's
    ``arg`` (left endpoint used verbatim when the range is empty).
    """

    kinds: Tuple[str, ...]
    horizon: int
    rate: float
    arg_range: Tuple[float, float] = (0.0, 0.0)
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ValueError("kinds must be non-empty")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        if self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")


SeedLike = Union[int, np.random.SeedSequence]


def _point_child(root: np.random.SeedSequence, point: str) -> np.random.SeedSequence:
    """Child SeedSequence keyed by a stable digest of the point *name*.

    Positional ``root.spawn`` would renumber siblings whenever a point is
    added to the spec mapping; keying on the name keeps every point's
    stream fixed regardless of what else is sampled alongside it.
    """
    key = int.from_bytes(hashlib.sha256(point.encode("utf-8")).digest()[:8], "big")
    return np.random.SeedSequence(entropy=root.entropy, spawn_key=root.spawn_key + (key,))


def sample_plan(seed: SeedLike, specs: Mapping[str, PointSpec]) -> FaultPlan:
    """Sample a :class:`FaultPlan` from a seed (SeedSequence-derived per point).

    Each injection point gets its own child generator, keyed by the point
    *name* rather than its position — so adding a point to ``specs`` never
    perturbs the faults sampled for the others, the same isolation contract
    :func:`repro.rng.spawn_rngs` gives per-job seeds.
    """
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    faults: List[Fault] = []
    for point in sorted(specs):
        child = _point_child(root, point)
        spec = specs[point]
        rng = np.random.default_rng(child)
        if spec.horizon == 0 or spec.rate <= 0.0:
            continue
        hits = np.nonzero(rng.random(spec.horizon) < spec.rate)[0]
        if spec.max_faults is not None and len(hits) > spec.max_faults:
            hits = rng.choice(hits, size=spec.max_faults, replace=False)
            hits.sort()
        for occurrence in hits.tolist():
            kind = spec.kinds[int(rng.integers(len(spec.kinds)))]
            lo, hi = spec.arg_range
            arg = float(lo) if hi <= lo else float(rng.uniform(lo, hi))
            faults.append(Fault(point=point, occurrence=int(occurrence), kind=kind, arg=arg))
    return FaultPlan(faults)


class FaultInjector:
    """Replays a :class:`FaultPlan` against visit counters — no randomness.

    Each call to :meth:`fire` is one *occurrence* of the named point; the
    injector returns the fault the plan scheduled there (advancing the
    counter either way) and logs everything it fired.  An injector built
    without a plan never fires, so production call sites can pass it
    unconditionally.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._visits: Dict[str, int] = {}
        self.fired: List[Fault] = []

    def fire(self, point: str) -> Optional[Fault]:
        """Advance ``point``'s visit counter; return the fault due now, if any."""
        occurrence = self._visits.get(point, 0)
        self._visits[point] = occurrence + 1
        fault = self.plan._by_point.get(point, {}).get(occurrence)
        if fault is not None:
            self.fired.append(fault)
        return fault

    def visits(self, point: str) -> int:
        """How many occurrences of ``point`` have happened so far."""
        return self._visits.get(point, 0)

    def n_fired(self, point: Optional[str] = None, kind: Optional[str] = None) -> int:
        """How many faults actually fired (filtered like :meth:`FaultPlan.count`)."""
        return sum(
            1
            for fault in self.fired
            if (point is None or fault.point == point) and (kind is None or fault.kind == kind)
        )
