"""Seeded chaos smoke: ``python -m repro.faults --suite all --seed 7``.

Runs the chaos storms of :mod:`repro.faults.chaos` — a handful of sampled
fault storms per layer plus hand-built plans pinning both edges of the
envelope (a hard worker crash that breaks and recreates the process pool; a
storm guaranteed to exceed the budget, which must surface as an explicit
:class:`~repro.faults.plan.FaultToleranceExceeded`, never a hang or a wrong
answer).  Exit status 0 means every storm either recovered byte-identically
or degraded explicitly; this is what the CI ``chaos-smoke`` job runs.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List

from repro.faults.chaos import (
    ChaosReport,
    ChaosViolation,
    chaos_queue_storm,
    chaos_serve_storm,
    chaos_shard_storm,
)
from repro.faults.plan import CRASH, KILL, STALL, Fault, FaultPlan

SUITES = ("shard", "queue", "serve")


def _run_shard(seed: int, n_storms: int) -> List[ChaosReport]:
    reports = [chaos_shard_storm(seed + i) for i in range(n_storms)]
    # One process-pool storm with a hard crash (arg >= 1 kills the worker
    # process outright; the parent must recreate the broken pool) and a
    # straggler stall.
    hard_plan = FaultPlan(
        [
            Fault("shard.build", 0, CRASH, arg=1.0),
            Fault("shard.build", 3, STALL, arg=0.01),
        ]
    )
    reports.append(
        chaos_shard_storm(seed, executor="process", n_shards=2, n_points=120, plan=hard_plan)
    )
    # Beyond the envelope: every attempt of every shard crashes — the builder
    # must say so explicitly.
    storm_plan = FaultPlan([Fault("shard.build", i, CRASH) for i in range(64)])
    report = chaos_shard_storm(seed, plan=storm_plan)
    if report.outcome != "exceeded":
        raise ChaosViolation("an unbounded crash storm failed to trip FaultToleranceExceeded")
    reports.append(report)
    return reports


def _run_queue(seed: int, n_storms: int, workdir: str) -> List[ChaosReport]:
    reports = [chaos_queue_storm(seed + i, workdir) for i in range(n_storms)]
    # A poison storm: the first max_attempts executions all die, forcing the
    # claim-side quarantine, then the requeue path drains with a fresh budget.
    poison_plan = FaultPlan([Fault("queue.execute", i, CRASH) for i in range(4)])
    report = chaos_queue_storm(
        seed + 1000, workdir, n_jobs=3, max_attempts=2, plan=poison_plan
    )
    if report.detail.get("quarantined", 0) < 1:
        raise ChaosViolation("the poison-job storm never exercised quarantine")
    reports.append(report)
    return reports


def _run_serve(seed: int, n_storms: int, workdir: str) -> List[ChaosReport]:
    reports = [chaos_serve_storm(seed + i, workdir) for i in range(n_storms)]
    # Beyond the envelope: the daemon dies on every flush; the client's
    # bounded reconnect budget must give up explicitly.
    kill_plan = FaultPlan([Fault("serve.tick", i, KILL) for i in range(256)])
    report = chaos_serve_storm(seed + 2000, workdir, n_ticks=2, max_attempts=3, plan=kill_plan)
    if report.outcome != "exceeded":
        raise ChaosViolation("a kill-every-tick storm failed to exhaust the reconnect budget")
    reports.append(report)
    return reports


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.faults", description="Seeded chaos storms with byte-identity certificates."
    )
    parser.add_argument("--suite", choices=SUITES + ("all",), default="all")
    parser.add_argument("--seed", type=int, default=7, help="base seed of the storm batch")
    parser.add_argument(
        "--storms", type=int, default=3, help="sampled storms per suite (default: 3)"
    )
    parser.add_argument(
        "--workdir", default=None, help="scratch directory (default: a fresh temp dir)"
    )
    args = parser.parse_args(argv)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    suites = SUITES if args.suite == "all" else (args.suite,)
    reports: List[ChaosReport] = []
    try:
        for suite in suites:
            if suite == "shard":
                reports.extend(_run_shard(args.seed, args.storms))
            elif suite == "queue":
                reports.extend(_run_queue(args.seed, args.storms, workdir))
            else:
                reports.extend(_run_serve(args.seed, args.storms, workdir))
    except ChaosViolation as err:
        for report in reports:
            print(report.line())
        print(f"CHAOS VIOLATION: {err}", file=sys.stderr)
        return 1
    for report in reports:
        print(report.line())
    recovered = sum(1 for r in reports if r.outcome == "recovered")
    print(f"chaos: {len(reports)} storm(s), {recovered} recovered, all within contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
