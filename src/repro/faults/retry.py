"""Bounded retry with injected-clock exponential backoff.

:func:`call_with_retry` is the one sanctioned retry helper: every retry loop
in the repo must have a *bounded* attempt count and an *injected* sleeper
(the REPRO701 lint rule rejects bare ``time.sleep`` retry loops).  The
helper never reads a clock itself — the ``sleep`` callable is whatever the
caller injects (``time.sleep`` at a production boundary, a recording stub in
tests, ``None`` for synchronous-round protocols where backoff is
meaningless), so retry behaviour is a pure function of its inputs and the
chaos property tests can drive thousands of storms without wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.faults.plan import FaultError

__all__ = ["RetryPolicy", "RetryError", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base_delay * multiplier**k``, capped.

    ``max_attempts`` counts *total* tries (first attempt included), so
    ``max_attempts=1`` means no retries at all.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, failures: int) -> float:
        """Backoff before the retry following the ``failures``-th failure (1-based)."""
        if failures < 1:
            raise ValueError("failures is 1-based")
        return min(self.base_delay * self.multiplier ** (failures - 1), self.max_delay)

    def delays(self) -> Tuple[float, ...]:
        """Every backoff the policy can sleep, in order (one per retry)."""
        return tuple(self.delay(k) for k in range(1, self.max_attempts))


class RetryError(FaultError):
    """All attempts failed; ``__cause__`` carries the last exception."""

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Optional[Callable[[float], None]] = None,
    on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
) -> T:
    """Call ``fn`` up to ``policy.max_attempts`` times, backing off in between.

    Only ``retry_on`` exceptions are retried; anything else propagates on
    the spot.  Between attempts the policy's backoff is passed to the
    injected ``sleep`` (skipped entirely when ``sleep is None``) and to
    ``on_retry(attempt, delay, error)`` for accounting.  When the budget is
    exhausted, :class:`RetryError` is raised from the last failure — the
    explicit out-of-envelope signal, never a hang.
    """
    policy = policy if policy is not None else RetryPolicy()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as err:
            last = err
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt)
            if on_retry is not None:
                on_retry(attempt, delay, err)
            if sleep is not None:
                sleep(delay)
    assert last is not None
    raise RetryError(
        f"gave up after {policy.max_attempts} attempt(s): {last}", policy.max_attempts
    ) from last
