"""Routing substrate (paper §4.2, Figure 9).

* :mod:`repro.routing.mesh` — the Angel-et-al routing algorithm on the
  percolated mesh: follow the canonical x–y path; when the next site is
  closed, run a (distributed) BFS over open sites to find the next open site
  on the remaining x–y path.  Probe counts are tracked so that the constant
  expected-overhead claim can be measured (experiment E07).
* :mod:`repro.routing.overlay` — lift mesh routes onto the SENS overlay
  (representatives act as lattice sites, relays realise the edges) and
  account for hops, Euclidean length and transmit power.
* :mod:`repro.routing.baselines` — greedy geographic forwarding and the
  shortest-path reference used for comparison.
"""

from repro.routing.baselines import greedy_geographic_route, shortest_path_route, GreedyRouteResult
from repro.routing.mesh import MeshRouteResult, route_xy_mesh
from repro.routing.overlay import OverlayRouteResult, route_on_overlay

__all__ = [
    "MeshRouteResult",
    "route_xy_mesh",
    "OverlayRouteResult",
    "route_on_overlay",
    "greedy_geographic_route",
    "shortest_path_route",
    "GreedyRouteResult",
]
