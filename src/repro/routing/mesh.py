"""Routing on the percolated mesh (Angel, Benjamini, Ofek & Wieder; paper Figure 9).

The packet lives at an open site ``curr`` and wants to reach an open site
``target``.  The canonical shortest path is the x–y path: first fix the x
coordinate, then the y coordinate (in lattice terms: first walk along the
row, then along the column — we use the paper's (x, y) = (col, row)
convention through :class:`~repro.core.tiling.Tiling`, but this module works
directly on (row, col) lattice coordinates).

At each step the router *probes* the next site on the x–y path:

* if it is open, the packet moves there (one hop, one probe);
* otherwise the router performs a BFS through open sites starting at ``curr``
  — probing every site whose status it inspects — until it reaches an open
  site that lies on the remaining x–y path strictly closer (in remaining
  path length) to the target; the packet is then forwarded along the BFS tree
  to that site.

Angel et al. prove the expected total number of probes is O(shortest path
length); experiment E07 measures the probes / L¹-distance ratio.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple


from repro.percolation.lattice import LatticeConfiguration

__all__ = ["MeshRouteResult", "route_xy_mesh", "xy_path"]

Site = Tuple[int, int]


def xy_path(source: Site, target: Site) -> List[Site]:
    """The canonical x–y lattice path from ``source`` to ``target`` (inclusive).

    Following the paper, the path first fixes the x coordinate (the column),
    then the y coordinate (the row): (x1, y1) → (x2, y1) → (x2, y2).
    """
    r1, c1 = source
    r2, c2 = target
    path: List[Site] = [(r1, c1)]
    step_c = 1 if c2 >= c1 else -1
    for c in range(c1 + step_c, c2 + step_c, step_c) if c1 != c2 else []:
        path.append((r1, c))
    step_r = 1 if r2 >= r1 else -1
    for r in range(r1 + step_r, r2 + step_r, step_r) if r1 != r2 else []:
        path.append((r, c2))
    return path


@dataclass
class MeshRouteResult:
    """Outcome of one mesh routing attempt.

    Attributes
    ----------
    success: whether the packet reached the target.
    path: the sequence of open sites the packet visited (source first).
    hops: number of lattice hops travelled (``len(path) - 1`` on success).
    probes: number of site-status queries made (the algorithm's search cost).
    l1_distance: Manhattan distance between source and target (the length of
        the unobstructed x–y path).
    detour_ratio: ``hops / l1_distance`` (``inf`` on failure or when the
        source equals the target).
    """

    success: bool
    path: List[Site]
    hops: int
    probes: int
    l1_distance: int

    @property
    def detour_ratio(self) -> float:
        if not self.success or self.l1_distance == 0:
            return float("inf") if not self.success else 1.0
        return self.hops / self.l1_distance

    @property
    def probe_ratio(self) -> float:
        """Probes per unit of L¹ distance — the Angel-et-al overhead measure."""
        if self.l1_distance == 0:
            return float(self.probes)
        return self.probes / self.l1_distance


def _bfs_to_path_site(
    config: LatticeConfiguration,
    start: Site,
    remaining_path: List[Site],
    probes: Dict[Site, bool],
) -> Tuple[List[Site] | None, int]:
    """BFS through open sites until a site of ``remaining_path`` is reached.

    Returns ``(path_from_start_to_found_site, n_new_probes)``; the found site
    is the first site of ``remaining_path`` (in BFS order) that the search
    reaches.  ``None`` when the open cluster of ``start`` contains no site of
    the remaining path.
    """
    target_set = set(remaining_path)
    parent: Dict[Site, Site] = {start: start}
    queue: deque[Site] = deque([start])
    new_probes = 0

    def probe(site: Site) -> bool:
        nonlocal new_probes
        if site not in probes:
            probes[site] = config.is_open(site)
            new_probes += 1
        return probes[site]

    while queue:
        site = queue.popleft()
        if site in target_set and site != start:
            # Reconstruct the BFS path.
            path = [site]
            while path[-1] != start:
                path.append(parent[path[-1]])
            path.reverse()
            return path, new_probes
        for nb in config.neighbours(site):
            if nb in parent:
                continue
            if probe(nb):
                parent[nb] = site
                queue.append(nb)
    return None, new_probes


def route_xy_mesh(
    config: LatticeConfiguration, source: Site, target: Site, max_hops: int | None = None
) -> MeshRouteResult:
    """Route a packet from ``source`` to ``target`` with the Figure-9 algorithm.

    Parameters
    ----------
    config:
        The percolated-mesh configuration (open sites are good tiles).
    source, target:
        Open lattice sites.
    max_hops:
        Safety cap on travelled hops (defaults to ``8 × (L¹ + 4)``, generous
        enough for supercritical configurations while preventing pathological
        walks near criticality from running forever).

    Raises
    ------
    ValueError
        If either endpoint is closed or out of bounds.
    """
    for name, site in (("source", source), ("target", target)):
        if not config.in_bounds(site):
            raise ValueError(f"{name} {site} outside the lattice")
        if not config.is_open(site):
            raise ValueError(f"{name} {site} is a closed site")

    l1 = abs(source[0] - target[0]) + abs(source[1] - target[1])
    if max_hops is None:
        max_hops = 8 * (l1 + 4)

    probes: Dict[Site, bool] = {source: True}
    visited_path: List[Site] = [source]
    curr = source
    probe_count = 0
    hops = 0

    while curr != target and hops <= max_hops:
        remaining = xy_path(curr, target)[1:]  # excludes curr
        nxt = remaining[0]
        if nxt not in probes:
            probes[nxt] = config.is_open(nxt)
            probe_count += 1
        if probes[nxt]:
            curr = nxt
            visited_path.append(curr)
            hops += 1
            continue
        # Next site is closed: BFS through open sites for a later x–y-path site.
        bfs_path, new_probes = _bfs_to_path_site(config, curr, remaining, probes)
        probe_count += new_probes
        if bfs_path is None:
            return MeshRouteResult(False, visited_path, hops, probe_count, l1)
        detour_hops = len(bfs_path) - 1
        if hops + detour_hops > max_hops:
            return MeshRouteResult(False, visited_path, hops, probe_count, l1)
        visited_path.extend(bfs_path[1:])
        hops += detour_hops
        curr = bfs_path[-1]

    success = curr == target
    return MeshRouteResult(success, visited_path, hops, probe_count, l1)
