"""Baseline routing strategies used for comparison in experiment E07/E08.

* :func:`greedy_geographic_route` — classic greedy geographic forwarding on a
  geometric graph: always forward to the neighbour closest to the target;
  fails at a local minimum (no neighbour is closer than the current node).
  This is what an unstructured WASN would do without the overlay.
* :func:`shortest_path_route` — the global shortest path (hops or Euclidean),
  the unattainable-with-local-information reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx
import numpy as np

from repro.graphs.base import GeometricGraph

__all__ = ["GreedyRouteResult", "greedy_geographic_route", "shortest_path_route"]


@dataclass
class GreedyRouteResult:
    """Outcome of greedy geographic forwarding.

    Attributes
    ----------
    success: whether the target was reached.
    path: node indices visited (source first).
    hops: number of edges traversed.
    euclidean_length: total length of the traversed edges.
    stuck_at: the local-minimum node when the route failed (``None`` on success).
    """

    success: bool
    path: List[int]
    hops: int
    euclidean_length: float
    stuck_at: int | None


def greedy_geographic_route(
    graph: GeometricGraph, source: int, target: int, max_hops: int | None = None
) -> GreedyRouteResult:
    """Greedy geographic forwarding from ``source`` to ``target``.

    Each step moves to the neighbour strictly closest to the target; the route
    fails when no neighbour improves on the current distance (a "void" /
    local minimum) or when ``max_hops`` is exceeded.
    """
    n = graph.n_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target out of range")
    if max_hops is None:
        max_hops = 4 * n
    pts = graph.points
    path = [int(source)]
    length = 0.0
    curr = int(source)
    hops = 0
    while curr != target and hops < max_hops:
        nbrs = graph.neighbours(curr)
        if nbrs.size == 0:
            return GreedyRouteResult(False, path, hops, length, curr)
        d_curr = float(np.linalg.norm(pts[curr] - pts[target]))
        d_nbrs = np.linalg.norm(pts[nbrs] - pts[target], axis=1)
        best = int(np.argmin(d_nbrs))
        if d_nbrs[best] >= d_curr - 1e-12:
            return GreedyRouteResult(False, path, hops, length, curr)
        nxt = int(nbrs[best])
        length += float(np.linalg.norm(pts[curr] - pts[nxt]))
        curr = nxt
        path.append(curr)
        hops += 1
    return GreedyRouteResult(curr == target, path, hops, length, None if curr == target else curr)


def shortest_path_route(
    graph: GeometricGraph, source: int, target: int, weighted: bool = True
) -> GreedyRouteResult:
    """Global shortest path between two nodes (Euclidean-weighted or hop count).

    Returns a :class:`GreedyRouteResult` for interface uniformity with the
    greedy baseline; ``success`` is ``False`` when the nodes are disconnected.
    """
    g = graph.to_networkx()
    try:
        if weighted:
            path = nx.shortest_path(g, int(source), int(target), weight="length")
        else:
            path = nx.shortest_path(g, int(source), int(target))
    except nx.NetworkXNoPath:
        return GreedyRouteResult(False, [int(source)], 0, 0.0, int(source))
    pts = graph.points
    nodes = np.asarray(path, dtype=np.int64)
    seg = np.linalg.norm(np.diff(pts[nodes], axis=0), axis=1)
    return GreedyRouteResult(True, [int(p) for p in path], len(path) - 1, float(seg.sum()), None)
