"""Routing on the SENS overlay.

The paper's §4.2 observation: the representatives of good tiles behave like
open sites of the percolated mesh, relays realise its edges, so any mesh
routing algorithm can be "plugged in".  :func:`route_on_overlay` does exactly
that — it runs the Figure-9 mesh router on the coupled lattice of a
:class:`~repro.core.result.SensNetwork`, expands the resulting site path into
the concrete representative/relay node path, and accounts for hops, Euclidean
length and transmit power of the overlay route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.result import SensNetwork
from repro.core.tiling import TileIndex
from repro.routing.mesh import MeshRouteResult, route_xy_mesh

__all__ = ["OverlayRouteResult", "route_on_overlay", "expand_site_path"]


@dataclass
class OverlayRouteResult:
    """Outcome of routing one packet across the SENS overlay.

    Attributes
    ----------
    success: whether a route from source to target representative was found.
    mesh_result: the underlying mesh routing outcome (probes, lattice hops).
    node_path: overlay node indices (into ``network.overlay.graph``) visited,
        starting at the source representative.
    hops: number of overlay edges traversed.
    euclidean_length: total Euclidean length of the overlay route.
    power: transmit power of the route at the given path-loss exponent.
    straight_line: Euclidean distance between source and target representatives.
    """

    success: bool
    mesh_result: MeshRouteResult
    node_path: List[int]
    hops: int
    euclidean_length: float
    power: float
    straight_line: float

    @property
    def stretch(self) -> float:
        """Route length divided by the straight-line distance."""
        if not self.success or self.straight_line == 0:
            return float("inf")
        return self.euclidean_length / self.straight_line


def expand_site_path(network: SensNetwork, site_path: List[Tuple[int, int]]) -> List[int]:
    """Expand a lattice-site path into the overlay node path that realises it.

    Consecutive sites are adjacent good tiles; each lattice hop becomes the
    relay chain ``rep – relays… – rep`` of the corresponding direction.
    Repeated nodes from shared roles are collapsed.
    """
    overlay = network.overlay
    classification = network.classification
    tiling = network.tiling
    spec = network.spec

    def rep_node(tile: TileIndex) -> int:
        return overlay.tile_representatives[tile]

    if not site_path:
        return []
    tiles = [tiling.tile_of_site(site) for site in site_path]
    node_path: List[int] = [rep_node(tiles[0])]
    for a, b in zip(tiles[:-1], tiles[1:]):
        # Determine the direction of the hop a → b.
        dc, dr = b[0] - a[0], b[1] - a[1]
        direction = {(1, 0): "right", (-1, 0): "left", (0, 1): "top", (0, -1): "bottom"}[(dc, dr)]
        facing = spec.facing_direction(direction)
        record_a = classification.records[a]
        record_b = classification.records[b]
        chain: List[int] = []
        chain.extend(record_a.relays[region] for region in spec.relay_chain(direction))
        chain.extend(record_b.relays[region] for region in reversed(spec.relay_chain(facing)))
        chain.append(record_b.representative)
        for original in chain:
            node = overlay.node_for_original(int(original))
            if node != node_path[-1]:
                node_path.append(node)
    return node_path


def route_on_overlay(
    network: SensNetwork,
    source_tile: TileIndex,
    target_tile: TileIndex,
    beta: float = 2.0,
    max_hops: int | None = None,
) -> OverlayRouteResult:
    """Route between the representatives of two good tiles over the SENS overlay.

    Parameters
    ----------
    network:
        A built SENS network.
    source_tile, target_tile:
        Good tiles whose representatives are the packet's endpoints.
    beta:
        Path-loss exponent for the power accounting.
    max_hops:
        Passed through to the mesh router.

    Raises
    ------
    ValueError
        If either tile is not good.
    """
    classification = network.classification
    for name, tile in (("source", source_tile), ("target", target_tile)):
        if tile not in classification.records or not classification.records[tile].good:
            raise ValueError(f"{name} tile {tile} is not a good tile")

    lattice = network.lattice()
    mesh_result = route_xy_mesh(
        lattice,
        network.tiling.lattice_site(source_tile),
        network.tiling.lattice_site(target_tile),
        max_hops=max_hops,
    )
    overlay = network.overlay
    positions = overlay.graph.points
    src_rep = overlay.tile_representatives[source_tile]
    tgt_rep = overlay.tile_representatives[target_tile]
    straight = float(np.linalg.norm(positions[src_rep] - positions[tgt_rep]))

    if not mesh_result.success:
        return OverlayRouteResult(
            False, mesh_result, [src_rep], 0, 0.0, 0.0, straight
        )

    node_path = expand_site_path(network, mesh_result.path)
    pts = positions[np.asarray(node_path, dtype=np.int64)]
    seg = np.sqrt(np.einsum("ij,ij->i", np.diff(pts, axis=0), np.diff(pts, axis=0)))
    return OverlayRouteResult(
        success=True,
        mesh_result=mesh_result,
        node_path=node_path,
        hops=len(node_path) - 1,
        euclidean_length=float(seg.sum()),
        power=float(np.sum(seg**beta)),
        straight_line=straight,
    )
