"""Ablation studies on the design choices called out in DESIGN.md.

The repaired UDG tile geometry introduces two free parameters the paper fixes
implicitly (and, as E10 shows, inconsistently): the representative-region
radius and the tile side.  The ablation here answers the question a user of
the library actually faces — *which parameterisation gives the lowest density
threshold λ_s?* — by sweeping the parameters and re-running the Theorem-2.2
procedure for each.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.thresholds import goodness_curve_udg
from repro.core.tiles_udg import UDGTileSpec
from repro.percolation import SITE_PERCOLATION_THRESHOLD
from repro.runner.registry import register

__all__ = ["ablation_udg_tile_parameters"]


@register("A01", title="UDG tile parameterisation ablation")
def ablation_udg_tile_parameters(
    rep_radii: Sequence[float] = (0.25, 1.0 / 3.0, 0.40, 0.45),
    sides: Sequence[float] = (1.2, 4.0 / 3.0),
    intensities: Sequence[float] | None = None,
    trials: int = 150,
    seed: int = 201,
) -> ExperimentResult:
    """λ_s as a function of the UDG tile parameterisation (A01).

    For every (side, rep_radius) combination the spec is validated first;
    infeasible combinations (degenerate relay regions or guarantee
    violations) are reported as such instead of being swept — the paper's own
    parameter point (side 4/3, rep_radius 1/2) falls in that bucket.
    """
    rng = np.random.default_rng(seed)
    if intensities is None:
        intensities = [4, 6, 8, 10, 12, 16, 20, 26, 32]
    rows = []
    best = None
    for side in sides:
        for rep_radius in rep_radii:
            try:
                spec = UDGTileSpec(side=float(side), rep_radius=float(rep_radius))
            except ValueError as exc:
                rows.append(
                    {
                        "side": float(side),
                        "rep_radius": float(rep_radius),
                        "feasible": False,
                        "lambda_s": None,
                        "relay_area": 0.0,
                        "note": str(exc),
                    }
                )
                continue
            diag = spec.validate(resolution=150)
            if not diag.feasible:
                rows.append(
                    {
                        "side": float(side),
                        "rep_radius": float(rep_radius),
                        "feasible": False,
                        "lambda_s": None,
                        "relay_area": diag.region_areas.get("E_right", 0.0),
                        "note": "; ".join(diag.notes) or "guarantee margins violated",
                    }
                )
                continue
            curve = goodness_curve_udg(spec, intensities, trials=trials, rng=rng)
            lambda_s = curve.threshold_crossing(SITE_PERCOLATION_THRESHOLD)
            rows.append(
                {
                    "side": float(side),
                    "rep_radius": float(rep_radius),
                    "feasible": True,
                    "lambda_s": lambda_s,
                    "relay_area": round(diag.region_areas["E_right"], 4),
                    "note": "",
                }
            )
            if lambda_s is not None and (best is None or lambda_s < best[0]):
                best = (lambda_s, float(side), float(rep_radius))

    headline = {
        "best_lambda_s": best[0] if best else None,
        "best_side": best[1] if best else None,
        "best_rep_radius": best[2] if best else None,
        "paper_lambda_s": 1.568,
    }
    return ExperimentResult(
        experiment_id="A01",
        title="UDG tile parameterisation ablation",
        paper_reference="DESIGN.md §2 repair of the Section 2.1 construction",
        rows=rows,
        headline=headline,
        notes=[
            "lambda_s is the smallest probed intensity whose goodness probability exceeds the "
            "site-percolation threshold; None means the parameterisation never crossed it on the "
            "probed grid. The best feasible parameterisation gives the tightest upper bound on "
            "lambda_c obtainable from this family of constructions."
        ],
    )
