"""S01 — spatial-index backend comparison on the distributed-build hot path.

The distributed construction precomputes the full one-hop neighbour table of
a Poisson deployment (``neighbour_lists`` over all nodes), which reduces to
``query_radius_many`` with every stored point as a center.  This experiment
times that hot path for both :mod:`repro.geometry.index` backends across
densities around the continuum-percolation critical point, checks that the
backends return identical neighbour sets on every realisation, and measures
the speedup of the vectorised grid bulk query over the equivalent loop of
scalar ``query_radius`` calls.

Registered through :mod:`repro.runner` like every other workload, so it rides
the executor/store/CLI: ``python -m repro.runner run S01 --set n_points=400``.
Unlike E01–E12 the result rows contain wall-clock timings and are therefore
*not* byte-identical across recomputations; the agreement headline is
deterministic.  Note the runner still caches by ``(experiment_id, params)``,
so rerunning identical parameters replays the stored first-run timings —
pass ``--force`` (or vary ``seed``) to re-measure.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.geometry.index import GridIndex, build_index
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.runner.registry import register

__all__ = ["experiment_s01_spatial_backends", "UDG_CRITICAL_INTENSITY"]

#: Literature value of the continuum-percolation critical intensity for the
#: radius-1 Gilbert graph (λ_c ≈ 1.436); S01 probes densities around it.
UDG_CRITICAL_INTENSITY = 1.44


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    """Best wall-clock seconds of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _lists_equal(a: List[np.ndarray], b: List[np.ndarray]) -> bool:
    return len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))


@register("S01")
def experiment_s01_spatial_backends(
    n_points: int = 20000,
    intensities: Sequence[float] = (0.72, 1.44, 2.88),
    radius: float = 1.0,
    repeats: int = 3,
    seed: int = 201,
) -> ExperimentResult:
    """Grid vs KD-tree bulk-query timings on the distributed-build hot path.

    Parameters
    ----------
    n_points:
        Target expected number of Poisson points per realisation (the window
        side is chosen as ``sqrt(n_points / intensity)``).
    intensities:
        Poisson intensities to probe; the default brackets the continuum
        critical density ``λ_c ≈ 1.44`` for ``radius = 1``.
    radius:
        Neighbour-query radius (the UDG connection radius / radio range).
    repeats:
        Timing repetitions per measurement (best-of).
    seed:
        RNG seed for the Poisson realisations.
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    if radius <= 0:
        raise ValueError("radius must be positive")
    if len(intensities) == 0:
        raise ValueError("intensities must be non-empty")
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    backends_agree = True
    compared = 0
    grid_bulk_speedup: float | None = None
    skipped: List[float] = []

    critical = min(intensities, key=lambda lam: abs(float(lam) - UDG_CRITICAL_INTENSITY))
    for lam in intensities:
        lam = float(lam)
        side = float(np.sqrt(n_points / lam))
        pts = poisson_points(Rect(0, 0, side, side), lam, rng)
        if len(pts) < 2:
            skipped.append(lam)
            continue
        per_backend: Dict[str, List[np.ndarray]] = {}
        for backend in ("grid", "kdtree"):
            build_s = _best_of(repeats, lambda: build_index(pts, radius=radius, backend=backend))
            index = build_index(pts, radius=radius, backend=backend)
            bulk_s = _best_of(repeats, lambda: index.query_radius_many(pts, radius))
            pairs_s = _best_of(repeats, lambda: index.query_pairs(radius))
            neighbours = index.neighbour_lists(radius)
            per_backend[backend] = neighbours
            degree = float(np.mean([len(nbrs) for nbrs in neighbours]))
            rows.append(
                {
                    "intensity": lam,
                    "backend": backend,
                    "n_points": len(pts),
                    "build_ms": round(build_s * 1e3, 3),
                    "bulk_query_ms": round(bulk_s * 1e3, 3),
                    "pairs_ms": round(pairs_s * 1e3, 3),
                    "mean_degree": round(degree, 3),
                }
            )
        backends_agree = backends_agree and _lists_equal(
            per_backend["grid"], per_backend["kdtree"]
        )
        compared += 1
        if lam == critical:
            grid: GridIndex = build_index(pts, radius=radius, backend="grid")
            bulk_s = _best_of(repeats, lambda: grid.query_radius_many(pts, radius))
            # The pre-refactor hot path: one scalar query per point, measured
            # with the same best-of policy so neither side keeps warmup noise.
            scalar_s = _best_of(repeats, lambda: [grid.query_radius(p, radius) for p in pts])
            grid_bulk_speedup = scalar_s / bulk_s if bulk_s > 0 else float("inf")

    notes = [
        "Wall-clock rows vary between reruns; only the agreement headline is "
        "deterministic. Through the runner an identical parameter set is a "
        "cache hit (timings frozen at first run; --force re-measures); the "
        "pytest benchmark emitter appends a fresh record per run instead.",
    ]
    if grid_bulk_speedup is not None:
        notes.append(
            f"speedup measured at intensity {float(critical):g} "
            f"(closest probe to the continuum-critical 1.44)."
        )
    if skipped:
        notes.append(
            "skipped degenerate realisations (< 2 points) at intensities "
            + ", ".join(f"{lam:g}" for lam in skipped)
            + "; headline values are null where nothing was measured."
        )
    return ExperimentResult(
        experiment_id="S01",
        title="Spatial-index backend comparison (grid vs cKDTree)",
        paper_reference="distributed construction hot path (Figure 7 precompute)",
        rows=rows,
        # None (JSON null) instead of NaN when every realisation was
        # degenerate — NaN is not valid RFC-8259 JSON in the result store.
        headline={
            "backends_agree": backends_agree if compared else None,
            "grid_bulk_speedup_vs_scalar": (
                round(grid_bulk_speedup, 1) if grid_bulk_speedup is not None else None
            ),
        },
        notes=notes,
    )
