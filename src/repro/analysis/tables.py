"""Plain-text, markdown and LaTeX table formatting for the benchmark printers.

The runner's JSON-lines store is the single source of benchmark numbers;
:func:`store_table` renders any experiment's stored rows on demand in any of
the three formats (it replaced the old side-channel
``benchmarks/results/<id>.txt`` emitter), and ``ResultStore.to_dataframe``
provides the same export as a pandas DataFrame when pandas is installed.
"""

from __future__ import annotations

import pathlib
from typing import Mapping, Sequence

__all__ = ["format_table", "to_markdown", "to_latex", "store_table", "bench_store_dir"]


def bench_store_dir(start: str | pathlib.Path | None = None) -> pathlib.Path:
    """Locate the local benchmark store (``benchmarks/results/store/``).

    Walks up from ``start`` (default: this module's file, i.e. the source
    checkout) until a ``benchmarks/results/store`` directory appears —
    the store the benchmark suite's ``emit_result`` fixture writes, and the
    one ``store_table(..., bench=True)`` and ``python -m repro.runner show
    --bench`` read.
    """
    here = pathlib.Path(start).resolve() if start else pathlib.Path(__file__).resolve()
    for parent in [here, *here.parents]:
        candidate = parent / "benchmarks" / "results" / "store"
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        f"no benchmarks/results/store/ directory found above {here}; "
        "run the benchmark suite once to create it"
    )


def _format_value(value, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return format(value, float_format)
    return str(value)


def _collect_columns(rows: Sequence[Mapping]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(str(key))
    return columns


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
    title: str | None = None,
) -> str:
    """Render rows (list of dicts) as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else _collect_columns(rows)
    rendered = [
        [_format_value(row.get(col, ""), float_format) for col in cols] for row in rows
    ]
    widths = [
        max(len(col), max(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def store_table(
    store=None,
    experiment_id: str = "",
    float_format: str = ".4g",
    fmt: str = "text",
    bench: bool = False,
) -> str:
    """Render one experiment's stored result rows as a table.

    ``store`` is a :class:`repro.runner.store.ResultStore` (duck-typed: any
    object with ``result_rows``), or a bare path — a string/``Path`` is
    opened through the ``ResultStore`` interface, which dispatches on the
    path (directory → JSON lines, ``*.sqlite`` → SQLite), so rendering never
    cares which backend a campaign used.  With ``bench=True`` the ``store``
    argument may be omitted: the local benchmark store
    (``benchmarks/results/store/``, located via :func:`bench_store_dir`) is
    read instead — ``store_table(experiment_id="S06", bench=True)`` renders
    the S06 kernel rows straight from the working tree.  Sweeps render as one
    flat table with the parameters as ``param_*`` columns; an experiment
    with no stored rows renders its headline columns instead.  ``fmt`` picks
    the renderer: ``"text"`` (aligned plain text, the default),
    ``"markdown"`` or ``"latex"`` (a self-contained ``tabular`` for
    EXPERIMENTS.md appendices and papers).
    """
    if not experiment_id:
        raise ValueError("experiment_id is required")
    if bench and store is None:
        store = bench_store_dir()
    if store is None:
        raise ValueError("store is required unless bench=True")
    if isinstance(store, (str, pathlib.Path)):
        from repro.runner.store import ResultStore

        with ResultStore(store) as opened:
            rows = opened.result_rows(experiment_id=experiment_id)
    else:
        rows = store.result_rows(experiment_id=experiment_id)
    if fmt == "text":
        return format_table(rows, float_format=float_format, title=experiment_id)
    if fmt == "markdown":
        return to_markdown(rows, float_format=float_format)
    if fmt == "latex":
        return to_latex(rows, float_format=float_format, caption=experiment_id)
    raise ValueError(f"unknown table format {fmt!r}; known: text, markdown, latex")


#: LaTeX active characters and their text-mode escapes.
_LATEX_SPECIALS = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def _latex_escape(text: str) -> str:
    return "".join(_LATEX_SPECIALS.get(ch, ch) for ch in text)


def to_latex(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
    caption: str | None = None,
    label: str | None = None,
) -> str:
    """Render rows as a self-contained LaTeX ``tabular``.

    Values and headers are escaped for text mode; only core LaTeX is emitted
    (``\\hline`` rules, no package dependencies).  With ``caption`` or
    ``label`` the tabular is wrapped in a ``table`` float.
    """
    rows = list(rows)
    if not rows:
        return "% (no rows)"
    cols = list(columns) if columns else _collect_columns(rows)
    lines = [
        r"\begin{tabular}{" + "l" * len(cols) + "}",
        r"\hline",
        " & ".join(_latex_escape(col) for col in cols) + r" \\",
        r"\hline",
    ]
    for row in rows:
        lines.append(
            " & ".join(
                _latex_escape(_format_value(row.get(col, ""), float_format)) for col in cols
            )
            + r" \\"
        )
    lines.append(r"\hline")
    lines.append(r"\end{tabular}")
    if caption is None and label is None:
        return "\n".join(lines)
    wrapped = [r"\begin{table}[htbp]", r"\centering"]
    wrapped.extend(lines)
    if caption is not None:
        wrapped.append(r"\caption{" + _latex_escape(caption) + "}")
    if label is not None:
        wrapped.append(r"\label{" + label + "}")
    wrapped.append(r"\end{table}")
    return "\n".join(wrapped)


def to_markdown(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else _collect_columns(rows)
    lines = ["| " + " | ".join(cols) + " |", "| " + " | ".join("---" for _ in cols) + " |"]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(col, ""), float_format) for col in cols) + " |"
        )
    return "\n".join(lines)
