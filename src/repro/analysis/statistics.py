"""Summary statistics and confidence intervals for Monte-Carlo estimates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.rng import resolve_rng

__all__ = ["SummaryStats", "summarize", "mean_confidence_interval", "bootstrap_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q25": self.q25,
            "median": self.median,
            "q75": self.q75,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q25=float(np.quantile(arr, 0.25)),
        median=float(np.median(arr)),
        q75=float(np.quantile(arr, 0.75)),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, lower, upper)`` using the Student-t interval.

    For a single observation the interval degenerates to the point estimate.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot build an interval from an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    half = float(stats.t.ppf(0.5 + confidence / 2.0, arr.size - 1)) * sem
    return mean, mean - half, mean + half


def bootstrap_ci(
    values: Sequence[float],
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """``(estimate, lower, upper)`` via the percentile bootstrap."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    if n_resamples < 10:
        raise ValueError("n_resamples must be at least 10")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = resolve_rng(rng)
    estimate = float(statistic(arr))
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, arr.size, size=arr.size)]
        resampled[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return estimate, float(np.quantile(resampled, alpha)), float(np.quantile(resampled, 1 - alpha))
