"""Experiment harness shared by the benchmarks, the examples and EXPERIMENTS.md.

* :mod:`repro.analysis.statistics` — summary statistics and confidence
  intervals for Monte-Carlo estimates.
* :mod:`repro.analysis.tables` — plain-text / markdown table formatting for
  the benchmark printers.
* :mod:`repro.analysis.experiments` — one entry point per experiment in the
  DESIGN.md index (E01–E12); each returns an :class:`ExperimentResult` whose
  rows are what the corresponding benchmark prints.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    experiment_e01_udg_threshold,
    experiment_e02_nn_threshold,
    experiment_e03_sparsity,
    experiment_e04_stretch,
    experiment_e05_coverage,
    experiment_e06_distributed_build,
    experiment_e07_routing,
    experiment_e08_power,
    experiment_e09_percolation,
    experiment_e10_tile_geometry,
    experiment_e11_continuum,
    experiment_e12_components,
)
from repro.analysis.statistics import bootstrap_ci, mean_confidence_interval, summarize
from repro.analysis.tables import format_table, to_markdown

__all__ = [
    "bootstrap_ci",
    "mean_confidence_interval",
    "summarize",
    "format_table",
    "to_markdown",
    "ExperimentResult",
    "experiment_e01_udg_threshold",
    "experiment_e02_nn_threshold",
    "experiment_e03_sparsity",
    "experiment_e04_stretch",
    "experiment_e05_coverage",
    "experiment_e06_distributed_build",
    "experiment_e07_routing",
    "experiment_e08_power",
    "experiment_e09_percolation",
    "experiment_e10_tile_geometry",
    "experiment_e11_continuum",
    "experiment_e12_components",
]
