"""One entry point per experiment of the DESIGN.md index (E01–E12).

Every function returns an :class:`ExperimentResult` whose ``rows`` are the
table the corresponding benchmark prints and whose ``headline`` carries the
single numbers that EXPERIMENTS.md compares against the paper.  The default
parameters are sized so each experiment runs in seconds on a laptop; the
benchmark files expose knobs for larger runs.

The functions are deliberately thin compositions of the library's public API
— they are the "scripts" a reader of the paper would write, and double as
end-to-end integration tests.

Every experiment registers itself with :mod:`repro.runner` under its DESIGN.md
id, which derives a frozen params dataclass from the signature (e.g.
``experiment_e01_udg_threshold.Params``) and makes the experiment runnable,
cacheable and parallelisable through ``python -m repro.runner run E01``.  The
keyword calling convention below is unchanged; ``ALL_EXPERIMENTS`` is now a
snapshot of the registry rather than a hand-maintained dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.coverage import measure_coverage
from repro.core.nn_sens import build_nn_sens
from repro.core.power import power_stretch
from repro.core.stretch import measure_stretch
from repro.core.thresholds import (
    estimate_goodness_probability,
    find_nn_k_threshold,
    find_udg_lambda_threshold,
)
from repro.core.tiles_nn import NNTileSpec
from repro.core.tiles_udg import UDGTileSpec
from repro.core.udg_sens import build_udg_sens
from repro.distributed.construct import distributed_build
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.graphs.knn import build_knn
from repro.graphs.metrics import graph_summary, largest_component_fraction
from repro.graphs.spanners import (
    build_gabriel_graph,
    build_relative_neighbourhood_graph,
    build_yao_graph,
)
from repro.graphs.udg import build_udg
from repro.percolation import SITE_PERCOLATION_THRESHOLD
from repro.percolation.chemical import chemical_stretch_samples
from repro.percolation.clusters import cluster_statistics, label_clusters, theta_estimate
from repro.percolation.critical import estimate_critical_probability
from repro.percolation.lattice import sample_site_percolation
from repro.routing.mesh import route_xy_mesh
from repro.routing.overlay import route_on_overlay
from repro.runner.registry import REGISTRY, register
from repro.simulation.datacollection import run_convergecast
from repro.simulation.energy import EnergyModel

__all__ = [
    "ExperimentResult",
    "experiment_e01_udg_threshold",
    "experiment_e02_nn_threshold",
    "experiment_e03_sparsity",
    "experiment_e04_stretch",
    "experiment_e05_coverage",
    "experiment_e06_distributed_build",
    "experiment_e07_routing",
    "experiment_e08_power",
    "experiment_e09_percolation",
    "experiment_e10_tile_geometry",
    "experiment_e11_continuum",
    "experiment_e12_components",
    "ALL_EXPERIMENTS",
]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id: the DESIGN.md identifier ("E01" …).
    title: short human-readable title.
    paper_reference: the theorem / claim / figure being regenerated.
    rows: the table rows (list of dicts) the benchmark prints.
    headline: the scalar(s) EXPERIMENTS.md compares against the paper.
    notes: free-form remarks (degeneracy warnings, deviations, …).
    params: the fully-resolved parameters of the run; stamped by the runner
        registry wrapper so the result store can key the row.
    """

    experiment_id: str
    title: str
    paper_reference: str
    rows: List[Dict] = field(default_factory=list)
    headline: Dict[str, float | str | None] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    params: Dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# E01 — UDG tile-goodness threshold (Theorem 2.2)
# ---------------------------------------------------------------------------
@register("E01")
def experiment_e01_udg_threshold(
    trials: int = 300,
    intensities: Sequence[float] | None = None,
    seed: int = 101,
) -> ExperimentResult:
    """P(UDG tile good) vs λ and the resulting λ_s for the repaired spec.

    Also evaluates the paper-parameter spec, whose relay regions are empty, to
    document that its goodness probability is identically zero (DESIGN.md §2).
    """
    rng = np.random.default_rng(seed)
    spec = UDGTileSpec.default()
    if intensities is None:
        intensities = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32]
    lambda_s, curve = find_udg_lambda_threshold(
        spec, intensities=intensities, trials=trials, rng=rng
    )
    rows = curve.as_rows()
    for row in rows:
        row["analytic_p_good"] = spec.analytic_good_probability(row["lambda"], resolution=250)

    paper_spec = UDGTileSpec.paper()
    paper_probe = estimate_goodness_probability(paper_spec, 10.0, trials=max(50, trials // 4), rng=rng)
    result = ExperimentResult(
        experiment_id="E01",
        title="UDG-SENS tile-goodness threshold",
        paper_reference="Theorem 2.2 (lambda_c < 1.568)",
        rows=rows,
        headline={
            "lambda_s_measured": lambda_s,
            "lambda_s_paper": 1.568,
            "target_probability": SITE_PERCOLATION_THRESHOLD,
            "paper_spec_p_good_at_lambda_10": paper_probe.probability,
        },
    )
    result.notes.append(
        "The paper-parameter tile (side 4/3, C0 radius 1/2) has empty relay regions, "
        "so its goodness probability is 0 at every lambda; the repaired spec "
        "(C0 radius 1/3) crosses the site-percolation threshold at the lambda_s above. "
        "The paper's 1.568 is not reproducible from the stated construction (DESIGN.md §2)."
    )
    return result


# ---------------------------------------------------------------------------
# E02 — NN tile-goodness threshold (Theorem 2.4)
# ---------------------------------------------------------------------------
@register("E02")
def experiment_e02_nn_threshold(
    trials: int = 200,
    k_values: Sequence[int] | None = None,
    seed: int = 102,
) -> ExperimentResult:
    """P(NN tile good) vs k with the paper's a = 0.893, and the resulting k_s."""
    rng = np.random.default_rng(seed)
    spec = NNTileSpec.paper()
    if k_values is None:
        k_values = list(range(120, 261, 20))
    k_s, curve = find_nn_k_threshold(spec, k_values=k_values, trials=trials, rng=rng)
    rows = curve.as_rows()
    for row in rows:
        row["analytic_p_good"] = spec.analytic_good_probability(int(row["k"]), resolution=150)
    return ExperimentResult(
        experiment_id="E02",
        title="NN-SENS tile-goodness threshold",
        paper_reference="Theorem 2.4 (k_c <= 188, a = 0.893)",
        rows=rows,
        headline={
            "k_s_measured": k_s,
            "k_s_paper": 188,
            "a": spec.a,
            "target_probability": SITE_PERCOLATION_THRESHOLD,
        },
        notes=[
            "The paper pairs k = 188 with tile parameter a = 0.893; the measured k_s uses the "
            "same geometry, so agreement here is the direct check of the Theorem 2.4 numerics."
        ],
    )


# ---------------------------------------------------------------------------
# E03 — Sparsity (Property P1)
# ---------------------------------------------------------------------------
@register("E03")
def experiment_e03_sparsity(
    udg_intensity: float = 20.0,
    udg_window_side: float = 24.0,
    nn_k: int = 188,
    nn_window_tiles: int = 5,
    seed: int = 103,
) -> ExperimentResult:
    """Degree and edge-count comparison of the SENS overlays against their base graphs."""
    rows: List[Dict] = []

    udg_net = build_udg_sens(
        intensity=udg_intensity, window=Rect(0, 0, udg_window_side, udg_window_side), seed=seed
    )
    nn_spec = NNTileSpec.default()
    side = nn_spec.tile_side * nn_window_tiles
    nn_net = build_nn_sens(k=nn_k, window=Rect(0, 0, side, side), seed=seed + 1, spec=nn_spec)

    for net in (udg_net, nn_net):
        base = graph_summary(net.base_graph)
        sens = graph_summary(net.sens.graph)
        rows.append(
            {
                "model": net.model,
                "graph": base.name,
                "nodes": base.n_nodes,
                "edges": base.n_edges,
                "max_degree": base.max_degree,
                "mean_degree": round(base.mean_degree, 3),
                "participation": 1.0,
            }
        )
        rows.append(
            {
                "model": net.model,
                "graph": sens.name,
                "nodes": sens.n_nodes,
                "edges": sens.n_edges,
                "max_degree": sens.max_degree,
                "mean_degree": round(sens.mean_degree, 3),
                "participation": round(net.participation_fraction, 4),
            }
        )
    return ExperimentResult(
        experiment_id="E03",
        title="Sparsity of the SENS overlays",
        paper_reference="Property P1 (max degree 4), Figures 1-2",
        rows=rows,
        headline={
            "udg_sens_max_degree": float(graph_summary(udg_net.sens.graph).max_degree),
            "nn_sens_max_degree": float(graph_summary(nn_net.sens.graph).max_degree),
            "paper_max_degree": 4.0,
        },
    )


# ---------------------------------------------------------------------------
# E04 — Distance stretch (Claims 2.1/2.3, Theorem 3.2)
# ---------------------------------------------------------------------------
@register("E04")
def experiment_e04_stretch(
    intensity: float = 20.0,
    window_side: float = 30.0,
    n_pairs: int = 300,
    alpha: float = 3.0,
    seed: int = 104,
) -> ExperimentResult:
    """Empirical distance stretch of UDG-SENS and the tail P(stretch > alpha) by distance."""
    rng = np.random.default_rng(seed)
    net = build_udg_sens(
        intensity=intensity, window=Rect(0, 0, window_side, window_side), seed=seed,
        build_base_graph=False,
    )
    report = measure_stretch(net, n_pairs=n_pairs, rng=rng)
    bins = [1, 3, 6, 10, 15, 22, 32]
    rows = report.tail_by_distance(alpha, bins)
    return ExperimentResult(
        experiment_id="E04",
        title="Distance stretch of UDG-SENS",
        paper_reference="Claim 2.1 (c_u <= 3), Theorem 3.2, Figures 4/8",
        rows=rows,
        headline={
            "max_stretch": report.max_stretch,
            "mean_stretch": report.mean_stretch,
            "q95_stretch": report.quantile(0.95),
            "tail_probability_alpha": report.tail_probability(alpha),
            "alpha": alpha,
            "paper_constant_cu": 3.0,
        },
        notes=[
            "The paper's c_u <= 3 bounds the stretch between representatives of *adjacent* tiles; "
            "longer routes inherit a constant stretch from the Antal-Pisztora bound. "
            "The measured max stretch over sampled pairs should stay below a small constant and the "
            "tail probability should not grow with distance."
        ],
    )


# ---------------------------------------------------------------------------
# E05 — Coverage (Theorem 3.3, Corollary 3.4)
# ---------------------------------------------------------------------------
@register("E05")
def experiment_e05_coverage(
    intensities: Sequence[float] = (12.0, 20.0, 32.0),
    window_side: float = 30.0,
    box_sizes: Sequence[float] | None = None,
    n_boxes: int = 400,
    seed: int = 105,
) -> ExperimentResult:
    """Empty-box probability of UDG-SENS vs box size, for several densities."""
    rng = np.random.default_rng(seed)
    if box_sizes is None:
        box_sizes = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0]
    rows: List[Dict] = []
    decay_rates: Dict[str, float] = {}
    for lam in intensities:
        net = build_udg_sens(
            intensity=float(lam), window=Rect(0, 0, window_side, window_side),
            seed=seed + int(lam), build_base_graph=False,
        )
        sens_points = net.sens.graph.points
        report = measure_coverage(
            sens_points, net.tiling.window, box_sizes, n_boxes=n_boxes, rng=rng
        )
        decay_rates[f"decay_rate_lambda_{lam:g}"] = report.decay_rate
        for row in report.as_rows():
            row["lambda"] = float(lam)
            rows.append(row)
    return ExperimentResult(
        experiment_id="E05",
        title="Coverage of UDG-SENS (empty-box probability)",
        paper_reference="Theorem 3.3, Corollary 3.4",
        rows=rows,
        headline=decay_rates,
        notes=[
            "P(empty box) should decay (roughly exponentially) with the box side and the decay "
            "should be at least as sharp for larger lambda (the paper's monotonicity claim)."
        ],
    )


# ---------------------------------------------------------------------------
# E06 — Distributed construction (Figure 7, Property P4)
# ---------------------------------------------------------------------------
@register("E06")
def experiment_e06_distributed_build(
    intensity: float = 25.0,
    window_sides: Sequence[float] = (8.0, 12.0, 16.0, 20.0),
    seed: int = 106,
) -> ExperimentResult:
    """Message/round cost of the Figure-7 algorithm and agreement with the centralized builder."""
    rows: List[Dict] = []
    all_match = True
    for side in window_sides:
        window = Rect(0, 0, float(side), float(side))
        net = build_udg_sens(intensity=intensity, window=window, seed=seed, build_base_graph=False)
        result = distributed_build(net.points, net.spec, window)
        match = result.matches_overlay(net.overlay) and result.matches_classification(
            net.classification
        )
        all_match &= match
        rows.append(
            {
                "window_side": float(side),
                "n_nodes": len(net.points),
                "n_tiles": net.tiling.n_tiles,
                "rounds": result.stats.rounds,
                "messages": result.stats.messages_sent,
                "messages_per_node": round(result.stats.messages_sent / max(len(net.points), 1), 2),
                "matches_centralized": match,
            }
        )
    return ExperimentResult(
        experiment_id="E06",
        title="Distributed construction of UDG-SENS",
        paper_reference="Figure 7, Property P4",
        rows=rows,
        headline={"all_match_centralized": all_match, "rounds": rows[-1]["rounds"] if rows else None},
        notes=[
            "Rounds must stay constant as the deployment grows (locality), messages grow linearly "
            "with the node count, and the produced overlay must equal the centralized one."
        ],
    )


# ---------------------------------------------------------------------------
# E07 — Routing on the percolated mesh and the overlay (Figure 9)
# ---------------------------------------------------------------------------
@register("E07")
def experiment_e07_routing(
    p_values: Sequence[float] = (0.65, 0.70, 0.80, 0.90),
    lattice_size: int = 60,
    n_pairs: int = 40,
    overlay_intensity: float = 20.0,
    overlay_window_side: float = 30.0,
    seed: int = 107,
) -> ExperimentResult:
    """Probe and detour overhead of the Figure-9 router vs the open-site density."""
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for p in p_values:
        config = sample_site_percolation(lattice_size, lattice_size, float(p), rng)
        labels = label_clusters(config)
        sizes = np.bincount(labels[labels >= 0]) if (labels >= 0).any() else np.zeros(1, int)
        giant = int(np.argmax(sizes))
        coords = np.column_stack(np.nonzero(labels == giant))
        if len(coords) < 2:
            continue
        probe_ratios, detours, successes = [], [], 0
        for _ in range(n_pairs):
            a, b = coords[rng.integers(0, len(coords), size=2)]
            src, tgt = (int(a[0]), int(a[1])), (int(b[0]), int(b[1]))
            if src == tgt:
                continue
            result = route_xy_mesh(config, src, tgt)
            successes += result.success
            if result.success and result.l1_distance > 0:
                probe_ratios.append(result.probe_ratio)
                detours.append(result.detour_ratio)
        rows.append(
            {
                "p_open": float(p),
                "pairs": n_pairs,
                "success_rate": successes / n_pairs,
                "mean_probes_per_l1": float(np.mean(probe_ratios)) if probe_ratios else float("nan"),
                "mean_detour_ratio": float(np.mean(detours)) if detours else float("nan"),
                "max_detour_ratio": float(np.max(detours)) if detours else float("nan"),
            }
        )

    # Routing on an actual UDG-SENS overlay.
    net = build_udg_sens(
        intensity=overlay_intensity,
        window=Rect(0, 0, overlay_window_side, overlay_window_side),
        seed=seed,
        build_base_graph=False,
    )
    good = [t for t in net.classification.good_tiles() if t in net.sens.tile_representatives]
    overlay_stretches, overlay_success = [], 0
    n_overlay_pairs = min(n_pairs, max(len(good) - 1, 0))
    for _ in range(n_overlay_pairs):
        ta, tb = (good[i] for i in rng.integers(0, len(good), size=2))
        if ta == tb:
            continue
        try:
            res = route_on_overlay(net, ta, tb)
        except ValueError:
            continue
        overlay_success += res.success
        if res.success and np.isfinite(res.stretch):
            overlay_stretches.append(res.stretch)
    rows.append(
        {
            "p_open": round(net.fraction_good_tiles, 3),
            "pairs": n_overlay_pairs,
            "success_rate": overlay_success / max(n_overlay_pairs, 1),
            "mean_probes_per_l1": float("nan"),
            "mean_detour_ratio": float(np.mean(overlay_stretches)) if overlay_stretches else float("nan"),
            "max_detour_ratio": float(np.max(overlay_stretches)) if overlay_stretches else float("nan"),
            "graph": "UDG-SENS overlay (stretch = route length / straight line)",
        }
    )
    return ExperimentResult(
        experiment_id="E07",
        title="Routing on the percolated mesh and the SENS overlay",
        paper_reference="Figure 9, Angel et al. routing",
        rows=rows,
        headline={
            "mesh_probe_overhead_at_p0.7": next(
                # repro: allow[REPRO201] grid parameter round-trips exactly
                (r["mean_probes_per_l1"] for r in rows if r.get("p_open") == 0.70), None
            ),
        },
        notes=[
            "Probe overhead per unit of L1 distance should stay bounded by a constant as p grows "
            "above the threshold; the overlay routes inherit the mesh behaviour through the coupling."
        ],
    )


# ---------------------------------------------------------------------------
# E08 — Power efficiency (Li–Wan–Wang; paper §1)
# ---------------------------------------------------------------------------
@register("E08")
def experiment_e08_power(
    intensity: float = 10.0,
    window_side: float = 12.0,
    beta_values: Sequence[float] = (2.0, 3.0, 4.0),
    n_pairs: int = 60,
    convergecast_rounds: int = 3,
    seed: int = 108,
) -> ExperimentResult:
    """Power stretch of UDG-SENS and convergecast energy vs baseline topologies."""
    rng = np.random.default_rng(seed)
    net = build_udg_sens(intensity=intensity, window=Rect(0, 0, window_side, window_side), seed=seed)
    rows: List[Dict] = []
    for beta in beta_values:
        report = power_stretch(net, beta=float(beta), n_pairs=n_pairs, rng=rng)
        rows.append(
            {
                "measurement": "power_stretch",
                "topology": "UDG-SENS vs UDG",
                "beta": float(beta),
                "max_ratio": report.max_ratio,
                "mean_ratio": report.mean_ratio,
                "delta_beta_bound": report.distance_stretch_bound,
                "within_bound": report.within_bound(),
            }
        )

    # Convergecast energy over the SENS overlay and over baseline spanners built
    # on the same deployment (restricted to UDG links where applicable).
    model = EnergyModel(beta=2.0)
    sens_graph = net.sens.graph
    sink_sens = int(np.argmin(np.linalg.norm(sens_graph.points - sens_graph.points.mean(axis=0), axis=1)))
    topologies = {"UDG-SENS": sens_graph}
    base_pts = net.points
    udg_edges_arr = net.base_graph.edges
    topologies["UDG (all nodes)"] = net.base_graph
    topologies["Gabriel∩UDG"] = build_gabriel_graph(base_pts, base_edges=udg_edges_arr)
    topologies["RNG∩UDG"] = build_relative_neighbourhood_graph(base_pts, base_edges=udg_edges_arr)
    topologies["Yao(8)∩UDG"] = build_yao_graph(base_pts, cones=8, radius=1.0)
    for name, graph in topologies.items():
        if graph.n_nodes == 0:
            continue
        sink = sink_sens if name == "UDG-SENS" else int(
            np.argmin(np.linalg.norm(graph.points - graph.points.mean(axis=0), axis=1))
        )
        result = run_convergecast(graph, sink=sink, rounds=convergecast_rounds, energy_model=model)
        rows.append(
            {
                "measurement": "convergecast",
                "topology": name,
                "beta": model.beta,
                "nodes": graph.n_nodes,
                "edges": graph.n_edges,
                "delivered": result.delivered,
                "energy_per_delivered_uJ": result.energy_per_delivered * 1e6,
                "max_node_energy_uJ": result.max_node_energy * 1e6,
                "mean_hops": round(result.mean_hops, 2),
            }
        )
    return ExperimentResult(
        experiment_id="E08",
        title="Power stretch and convergecast energy",
        paper_reference="Section 1 power-efficiency claim; Li-Wan-Wang lemma",
        rows=rows,
        headline={
            "max_power_stretch_beta2": rows[0]["max_ratio"] if rows else None,
            "bound_beta2": rows[0]["delta_beta_bound"] if rows else None,
        },
        notes=[
            "delta^beta is the Li-Wan-Wang reference for *spanning* spanners; the SENS overlay "
            "keeps only a subset of nodes, so its measured ratio can exceed that reference while "
            "still being a small constant (see repro.core.power). The convergecast rows show the "
            "operational trade-off: the SENS overlay uses a small fraction of the nodes while "
            "keeping per-packet energy within a constant factor of the dense topologies."
        ],
    )


# ---------------------------------------------------------------------------
# E09 — Percolation substrate validation (Lemma 1.1, p_c bracket)
# ---------------------------------------------------------------------------
@register("E09")
def experiment_e09_percolation(
    box_size: int = 40,
    trials: int = 20,
    theta_ps: Sequence[float] = (0.55, 0.60, 0.65, 0.70, 0.80),
    chemical_ps: Sequence[float] = (0.65, 0.75, 0.85),
    n_chemical_pairs: int = 60,
    seed: int = 109,
) -> ExperimentResult:
    """p_c estimate, θ(p) curve and chemical-distance stretch of the site-percolation substrate."""
    rng = np.random.default_rng(seed)
    p_c_hat = estimate_critical_probability(box_size=box_size, trials=trials, rng=rng)
    rows: List[Dict] = []
    for p in theta_ps:
        config = sample_site_percolation(80, 80, float(p), rng)
        stats = cluster_statistics(config)
        rows.append(
            {
                "measurement": "theta",
                "p": float(p),
                "theta_estimate": round(theta_estimate(config), 4),
                "largest_cluster_fraction": round(stats.largest_fraction, 4),
                "spanning": stats.spanning,
            }
        )
    for p in chemical_ps:
        config = sample_site_percolation(80, 80, float(p), rng)
        samples = chemical_stretch_samples(config, n_pairs=n_chemical_pairs, rng=rng, min_l1=5)
        finite = [s.stretch for s in samples if np.isfinite(s.stretch)]
        rows.append(
            {
                "measurement": "chemical_stretch",
                "p": float(p),
                "pairs": len(samples),
                "mean_stretch": float(np.mean(finite)) if finite else float("nan"),
                "max_stretch": float(np.max(finite)) if finite else float("nan"),
            }
        )
    return ExperimentResult(
        experiment_id="E09",
        title="Site-percolation substrate validation",
        paper_reference="Lemma 1.1 (Antal-Pisztora), p_c in (0.592, 0.593)",
        rows=rows,
        headline={
            "p_c_estimate": p_c_hat,
            "p_c_literature": SITE_PERCOLATION_THRESHOLD,
        },
        notes=[
            "theta(p) must increase monotonically in p above the threshold and the chemical "
            "stretch must decrease towards 1 as p -> 1 (the behaviour Theorem 3.2 inherits)."
        ],
    )


# ---------------------------------------------------------------------------
# E10 — Tile and region geometry (Figures 1, 3, 5)
# ---------------------------------------------------------------------------
@register("E10")
def experiment_e10_tile_geometry(
    udg_lambdas: Sequence[float] = (10.0, 20.0),
    trials: int = 150,
    seed: int = 110,
) -> ExperimentResult:
    """Region areas, spec feasibility diagnostics and analytic-vs-MC goodness probabilities."""
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    specs = {
        "UDG paper (degenerate)": UDGTileSpec.paper(),
        "UDG repaired default": UDGTileSpec.default(),
        "NN paper a=0.893": NNTileSpec.paper(),
    }
    for name, spec in specs.items():
        diag = spec.validate(resolution=200)
        for region, area in diag.region_areas.items():
            rows.append(
                {
                    "spec": name,
                    "region": region,
                    "area": round(area, 4),
                    "feasible_spec": diag.feasible,
                    "empty": region in diag.empty_regions,
                }
            )
    # Analytic vs Monte-Carlo goodness for the repaired UDG spec.
    spec = UDGTileSpec.default()
    comparison_rows = []
    for lam in udg_lambdas:
        mc = estimate_goodness_probability(spec, float(lam), trials=trials, rng=rng)
        comparison_rows.append(
            {
                "spec": "UDG repaired default",
                "region": f"(goodness @ lambda={lam:g})",
                "area": float("nan"),
                "feasible_spec": True,
                "empty": False,
                "p_good_mc": round(mc.probability, 4),
                "p_good_analytic": round(spec.analytic_good_probability(float(lam)), 4),
            }
        )
    rows.extend(comparison_rows)
    paper_diag = UDGTileSpec.paper().validate(resolution=200)
    return ExperimentResult(
        experiment_id="E10",
        title="Tile and region geometry",
        paper_reference="Figures 1, 3, 5 and the Section 2 constructions",
        rows=rows,
        headline={
            "paper_udg_spec_feasible": paper_diag.feasible,
            "paper_udg_empty_regions": ", ".join(paper_diag.empty_regions) or "none",
        },
        notes=list(paper_diag.notes),
    )


# ---------------------------------------------------------------------------
# E11 — Continuum percolation context (largest component of the base graphs)
# ---------------------------------------------------------------------------
@register("E11")
def experiment_e11_continuum(
    lambdas: Sequence[float] = (0.4, 0.8, 1.2, 1.6, 2.4, 3.2),
    ks: Sequence[int] = (1, 2, 3, 4, 5, 6),
    window_side: float = 25.0,
    n_points_nn: int = 600,
    seed: int = 111,
) -> ExperimentResult:
    """Largest-component fraction of raw UDG(2, λ) vs λ and NN(2, k) vs k."""
    rng = np.random.default_rng(seed)
    window = Rect(0, 0, window_side, window_side)
    rows: List[Dict] = []
    for lam in lambdas:
        pts = poisson_points(window, float(lam), rng)
        if len(pts) < 2:
            continue
        graph = build_udg(pts, radius=1.0)
        rows.append(
            {
                "model": "UDG",
                "parameter": float(lam),
                "n_nodes": len(pts),
                "largest_component_fraction": round(largest_component_fraction(graph), 4),
                "mean_degree": round(graph_summary(graph).mean_degree, 3),
            }
        )
    for k in ks:
        pts = window.sample_uniform(n_points_nn, rng)
        graph = build_knn(pts, k=int(k))
        rows.append(
            {
                "model": "NN",
                "parameter": float(k),
                "n_nodes": len(pts),
                "largest_component_fraction": round(largest_component_fraction(graph), 4),
                "mean_degree": round(graph_summary(graph).mean_degree, 3),
            }
        )
    return ExperimentResult(
        experiment_id="E11",
        title="Continuum-percolation context for the base graphs",
        paper_reference="Section 1.2 (Hall / Kong-Yeh / Haggstrom-Meester bounds)",
        rows=rows,
        headline={
            "udg_giant_emerges_between": "lambda in [0.8, 1.6] (literature: lambda_c ~ 1.44)",
            "nn_giant_emerges_between": "k in [2, 3] (literature: k_c(2) = 3 conjectured)",
        },
        notes=[
            "The constructions' thresholds (E01/E02) sit far above the continuum-percolation "
            "critical points shown here — the price paid for the constructive coupling, "
            "exactly as the paper's conclusion discusses."
        ],
    )


# ---------------------------------------------------------------------------
# E12 — Small components / switched-off nodes (paper §4.1 remark)
# ---------------------------------------------------------------------------
@register("E12")
def experiment_e12_components(
    intensities: Sequence[float] = (14.0, 18.0, 24.0, 32.0),
    window_side: float = 24.0,
    seed: int = 112,
) -> ExperimentResult:
    """Fraction of overlay nodes outside the giant component as the density grows."""
    rows: List[Dict] = []
    for lam in intensities:
        net = build_udg_sens(
            intensity=float(lam), window=Rect(0, 0, window_side, window_side),
            seed=seed + int(lam), build_base_graph=False,
        )
        overlay_nodes = net.overlay.n_nodes
        sens_nodes = net.sens.n_nodes
        rows.append(
            {
                "lambda": float(lam),
                "fraction_good_tiles": round(net.fraction_good_tiles, 4),
                "overlay_nodes": overlay_nodes,
                "sens_nodes": sens_nodes,
                "outside_giant_fraction": round(1.0 - sens_nodes / overlay_nodes, 4)
                if overlay_nodes
                else float("nan"),
                "deployed_nodes": net.n_deployed,
                "switched_off_fraction": round(net.unused_fraction, 4),
            }
        )
    return ExperimentResult(
        experiment_id="E12",
        title="Overlay components and switched-off nodes",
        paper_reference="Section 4.1 (small components turn themselves off)",
        rows=rows,
        headline={
            "outside_giant_fraction_at_max_lambda": rows[-1]["outside_giant_fraction"] if rows else None,
        },
        notes=[
            "As lambda grows the good-tile fraction approaches 1 and the share of overlay nodes "
            "stranded outside the giant component shrinks; the share of *deployed* nodes that can "
            "switch off stays large — that is the paper's headline saving."
        ],
    )


#: Registry view used by the EXPERIMENTS.md generator and the meta-tests —
#: snapshot of the runner registry at import time (exactly E01–E12), so the
#: two can never drift.
ALL_EXPERIMENTS = REGISTRY.as_mapping()
