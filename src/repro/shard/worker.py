"""Worker side of the sharded distributed build.

A shard owns a contiguous block of tile *columns* of the
:class:`~repro.core.tiling.Tiling` grid plus a one-tile-wide ghost (halo)
column on each side.  One tile column is the widest footprint any
construction decision reads: elections and goodness are functions of a single
tile's membership, overlay splices of one adjacent tile pair — so a worker
that sees its owned columns plus their immediate neighbours can reproduce
every decision of :func:`~repro.distributed.construct.distributed_build`
that touches an owned tile, with zero cross-worker communication.

Exactness discipline (the PR 4 "repair equals rebuild" rules, applied to
sharding):

* **Decisions go through the shared helpers.**  Leader election, goodness and
  splicing call :func:`~repro.distributed.construct.elect_tile_leaders`,
  :func:`~repro.distributed.construct.tile_goodness` and
  :func:`~repro.distributed.construct.cross_tile_edges` — the very functions
  ``distributed_build`` runs — so shard-count invariance is structural.
  Elections in particular stay scalar: a vectorised row-wise norm may differ
  from :func:`~repro.distributed.leader_election.election_key` by an ULP and
  flip a leader on a tie-distance pair.
* **Only data-parallel steps are vectorised.**  Region classification is one
  :meth:`~repro.core.tiles_base.TileSpec.classify_points` call over the whole
  shard membership (the unsharded build's dominant cost is re-building the
  region predicates per tile); the tile-local offsets feeding it use the same
  IEEE operations as :meth:`~repro.core.tiling.Tiling.tile_center`, so every
  mask bit matches the per-tile path.
* **Owned work only is counted.**  Halo tiles get elections and goodness
  computed (boundary pairs need them) but contribute no message counts and no
  good-tile records; an adjacent pair is owned by the shard owning its
  left/bottom tile.  Summing per-shard counts therefore reproduces the
  unsharded :class:`~repro.distributed.network.NetworkStats` exactly.

Like the repair engine, a shard computes the protocol's decisions directly
instead of simulating message delivery, and does not re-verify radio-range
locality (a property of the construction's geometry, not of who computes it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import os
import resource
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.tiles_base import TileSpec
from repro.core.tiling import TileIndex, Tiling
from repro.distributed.construct import cross_tile_edges, elect_tile_leaders, tile_goodness
from repro.faults.plan import InjectedWorkerCrash
from repro.kernels import ops as kernel_ops
from repro.kernels.layout import POSITIONS, ROW_IDS, sort_groups
from repro.shard.shm import attach_block

__all__ = ["ShardTask", "ShardResult", "build_shard", "run_shard_task"]

#: Each unordered adjacent tile pair is owned by its left/bottom tile
#: (identical to the repair engine's pair ownership).
_PAIR_DIRECTIONS = ("right", "top")

_EMPTY_EDGES = np.zeros((0, 2), dtype=np.int64)


@dataclass(frozen=True)
class ShardTask:
    """Everything a pool worker needs to build one shard.

    Positions and member rows travel through named shared-memory segments
    (:mod:`repro.shard.shm`), so the per-task pickle is a few hundred bytes
    regardless of deployment size.

    The three fault flags are set by the parent from its seeded
    :class:`~repro.faults.plan.FaultInjector` at submit time (the pool
    worker stays deterministic and RNG-free): ``crash`` raises
    :class:`~repro.faults.plan.InjectedWorkerCrash` before any work,
    ``hard_crash`` kills the worker *process* outright (breaking the pool —
    the parent must recreate it), ``stall_s`` sleeps that long first to
    simulate a straggler.
    """

    shard_id: int
    col_start: int
    col_stop: int
    spec: TileSpec
    tiling: Tiling
    k: int | None
    positions_shm: str
    capacity: int
    rows_shm: str
    rows_total: int
    rows_offset: int
    rows_count: int
    crash: bool = False
    hard_crash: bool = False
    stall_s: float = 0.0


@dataclass
class ShardResult:
    """One shard's contribution to the stitched build.

    ``good`` holds the *owned* good tiles as ``(tile, representative,
    relays)`` records; ``edges`` every overlay edge of an owned pair (global
    ``(min, max)`` id pairs, sorted); ``counts`` the protocol messages of the
    owned tiles and pairs.  ``wall_s`` / ``max_rss_kb`` are the
    per-worker resource accounting surfaced through
    :class:`~repro.distributed.sharding.ShardedBuildInfo` (``ru_maxrss`` is a
    process-lifetime high-water mark, so for a reused pool worker it is an
    upper bound, not a per-task measurement).
    """

    shard_id: int
    good: List[Tuple[TileIndex, int, Dict[str, int]]] = field(default_factory=list)
    edges: np.ndarray = field(default_factory=lambda: _EMPTY_EDGES)
    counts: Dict[str, int] = field(default_factory=dict)
    n_owned: int = 0
    n_halo: int = 0
    wall_s: float = 0.0
    max_rss_kb: int = 0


def build_shard(
    points: np.ndarray,
    rows: np.ndarray,
    spec: TileSpec,
    tiling: Tiling,
    col_start: int,
    col_stop: int,
    k: int | None = None,
) -> ShardResult:
    """Run the construction decisions for one shard.

    ``points`` is the full (global-row-indexed) position buffer; ``rows`` the
    ascending global row ids of the alive in-grid members of tile columns
    ``[col_start - 1, col_stop]`` — the owned block plus its halo columns.
    """
    start = time.perf_counter()
    shard_id = -1  # set by run_shard_task; direct callers get it from their loop
    result = ShardResult(shard_id=shard_id)
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        result.wall_s = time.perf_counter() - start
        result.max_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return result

    grid_rows = tiling.n_rows
    rep_region = spec.representative_region
    cap = spec.max_points_per_tile(k)
    counts: Dict[str, int] = {}

    def count(kind: str, n: int) -> None:
        if n > 0:
            counts[kind] = counts.get(kind, 0) + n

    member_pts = points[rows]
    tiles = tiling.tile_of_points(member_pts)
    cols = tiles[:, 0]
    tile_rows = tiles[:, 1]
    owned_mask = (cols >= col_start) & (cols < col_stop)
    result.n_owned = int(np.count_nonzero(owned_mask))
    result.n_halo = int(rows.size - result.n_owned)

    # Dense per-tile key over the shard's column span (halo column offset so
    # keys stay non-negative even when col_start == 0 has no left halo).
    packed = (cols - (col_start - 1)) * grid_rows + tile_rows
    _, tile_keys, _, tile_counts = sort_groups(packed)

    # One vectorised classification pass over every shard member.  The
    # per-member tile centre uses the same expression as Tiling.tile_center,
    # so `member_pts - centers` is bit-identical to the per-tile local frame.
    centers = np.empty_like(member_pts)
    centers[:, 0] = tiling.origin[0] + (cols + 0.5) * tiling.tile_side
    centers[:, 1] = tiling.origin[1] + (tile_rows + 0.5) * tiling.tile_side
    masks = spec.classify_points(member_pts - centers)

    # region name → {packed tile key → ascending member ids}.  Stable sort
    # preserves the ascending-row order within each tile, matching
    # region_members_of_tile's member lists element for element.
    region_map: Dict[str, Dict[int, List[int]]] = {}
    for name, mask in masks.items():
        per_tile: Dict[int, List[int]] = {}
        if mask.any():
            sub_order, key_firsts, group_starts, _ = sort_groups(packed[mask])
            rows_sorted = rows[mask][sub_order]
            parts = np.split(rows_sorted, group_starts[1:])
            per_tile = {int(key): part.tolist() for key, part in zip(key_firsts.tolist(), parts)}
        region_map[name] = per_tile

    region_names = list(masks.keys())
    good_owned: List[Tuple[TileIndex, int, Dict[str, int]]] = []
    all_good: Dict[TileIndex, Tuple[int, Dict[str, int]]] = {}

    for i in range(tile_keys.size):
        key = int(tile_keys[i])
        col, row = divmod(key, grid_rows)
        tile: TileIndex = (col + col_start - 1, row)
        center = tiling.tile_center(tile)
        regions: Dict[str, List[int]] = {}
        for name in region_names:
            members = region_map[name].get(key)
            if members is not None:
                regions[name] = members
        leaders = elect_tile_leaders(points, regions, center, spec)
        good, present = tile_goodness(spec, leaders, int(tile_counts[i]), cap)
        owned = col_start <= tile[0] < col_stop
        if owned:
            for members in regions.values():
                m = len(members)
                if m >= 2:
                    count("candidate", m * (m - 1))
            if rep_region in leaders:
                rep = leaders[rep_region]
                handshakes = sum(1 for relay in present.values() if relay != rep)
                count("connect-request", handshakes)
                count("connect-ack", handshakes)
                if good:
                    count("tile-good", handshakes)
        if good:
            record = (int(leaders[rep_region]), {name: int(node) for name, node in present.items()})
            all_good[tile] = record
            if owned:
                good_owned.append((tile, record[0], record[1]))

    edge_parts: List[List[Tuple[int, int]]] = []
    for tile, rep, relays in good_owned:
        neighbours = tiling.neighbours(tile)
        for direction in _PAIR_DIRECTIONS:
            neighbour = neighbours.get(direction)
            if neighbour is None:
                continue
            other = all_good.get(neighbour)
            if other is None:
                continue
            pair_edges, (a, b) = cross_tile_edges(spec, direction, rep, relays, other[0], other[1])
            if a != b:
                count("border-request", 1)
                count("border-ack", 1)
            edge_parts.append(pair_edges)

    result.good = good_owned
    result.edges = kernel_ops.splice_edges(edge_parts)
    result.counts = counts
    result.wall_s = time.perf_counter() - start
    result.max_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return result


def run_shard_task(task: ShardTask) -> ShardResult:
    """Pool entry point: attach the shared segments, build, detach.

    Injected faults fire *before* any shared segment is attached, so a
    crashing task can never leak an attachment; the stall is capped at one
    second so a mis-specified plan cannot wedge a CI run.
    """
    if task.hard_crash:
        os._exit(17)  # a real worker death: no cleanup, the pool breaks
    if task.crash:
        raise InjectedWorkerCrash(f"injected crash in shard {task.shard_id}")
    if task.stall_s > 0.0:
        time.sleep(min(float(task.stall_s), 1.0))
    positions_shm = attach_block(task.positions_shm)
    try:
        # Views come off the shared SoA buffer descriptions (layout.POSITIONS
        # / layout.ROW_IDS) — the same specs the owner sized the blocks with,
        # so the two sides cannot disagree on dtype or stride.
        points = POSITIONS.view(positions_shm.buf, task.capacity)
        rows_shm = attach_block(task.rows_shm)
        try:
            all_rows = ROW_IDS.view(rows_shm.buf, task.rows_total)
            # Copy the slice out of the segment so nothing in the result can
            # alias a buffer the owner is about to unlink.
            rows = np.array(all_rows[task.rows_offset : task.rows_offset + task.rows_count])
            result = build_shard(
                points, rows, task.spec, task.tiling, task.col_start, task.col_stop, task.k
            )
            result.shard_id = task.shard_id
            return result
        finally:
            rows_shm.close()
    finally:
        positions_shm.close()
