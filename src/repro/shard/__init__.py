"""Worker-side pieces of the sharded distributed build.

The orchestrating :class:`~repro.distributed.sharding.ShardedBuilder` lives
in :mod:`repro.distributed.sharding`; this package holds what runs inside a
pool worker — the per-shard construction pass (:mod:`repro.shard.worker`)
and the shared-memory lifecycle helpers (:mod:`repro.shard.shm`).
"""

from repro.shard.shm import attach_block, create_block
from repro.shard.worker import ShardResult, ShardTask, build_shard, run_shard_task

__all__ = [
    "ShardResult",
    "ShardTask",
    "attach_block",
    "build_shard",
    "create_block",
    "run_shard_task",
]
