"""Shared-memory lifecycle helpers for the shard workers.

This module is the sanctioned implementation behind lint rule REPRO601
(`shm-lifecycle`): every other module must acquire
:class:`multiprocessing.shared_memory.SharedMemory` segments through these
helpers (or under a context manager / try-finally the rule can see), so a
crashed worker cannot leak segments into ``/dev/shm``.

Two lifecycle roles exist and they are deliberately asymmetric:

* The **owner** (the :class:`~repro.distributed.sharding.ShardedBuilder`
  process) creates a segment with :func:`create_block` and must eventually
  ``close()`` *and* ``unlink()`` it.
* A **worker** attaches to an existing segment by name with
  :func:`attach_block` and must only ``close()`` its mapping — unlinking is
  the owner's job.  Python 3.13+ exposes ``track=False`` for exactly this
  role and it is used when available.  On CPython < 3.13 attaching also
  registers the segment with the ``resource_tracker``; with the fork start
  method every process reports to the *one* tracker the owner started, whose
  per-name cache is a set — the worker's registration deduplicates against
  the owner's, and the owner's eventual ``unlink()`` clears it.  (Explicitly
  unregistering in the worker would be wrong here: it would strip the
  owner's registration from the shared tracker and make the owner's
  ``unlink()`` die noisily on the double-unregister.)
"""

from __future__ import annotations

import inspect
from multiprocessing.shared_memory import SharedMemory

__all__ = ["create_block", "attach_block"]

#: Python 3.13+ accepts ``track=False`` at attach time; older versions need
#: the explicit resource-tracker unregistration below.
_HAS_TRACK_KWARG = "track" in inspect.signature(SharedMemory).parameters


def create_block(nbytes: int) -> SharedMemory:
    """Create a new shared-memory segment of ``nbytes`` bytes (owner side).

    The caller owns the segment: it must ``close()`` and ``unlink()`` it (the
    :class:`~repro.distributed.sharding.ShardedBuilder` does both in
    ``close()``, backstopped by a ``weakref.finalize``).
    """
    if nbytes <= 0:
        raise ValueError("shared-memory blocks must have positive size")
    return SharedMemory(create=True, size=int(nbytes))


def attach_block(name: str) -> SharedMemory:
    """Attach to an existing segment by name without taking ownership.

    The returned mapping must be ``close()``-d by the caller (try/finally);
    it must *not* be ``unlink()``-ed — the creating process owns the segment.
    """
    if _HAS_TRACK_KWARG:
        return SharedMemory(name=name, track=False)
    return SharedMemory(name=name)
