"""S06 — kernel-layer throughput and byte-identity per backend.

Profiles the three hottest kernels of the stack — ``cell_gather`` (the grid
index's bulk candidate expansion), ``within_ball_mask`` (the exact
closed-ball predicate) and ``step_events`` (the event queue's stepping
order) — on every *available* backend, using the
:class:`~repro.kernels.profile.KernelProfiler` as the attribution source:
timings come from the profiler's per-kernel nanosecond counters, not from
timing whole queries.

Two arms:

* **Certificates** (deterministic): every available backend is replayed on
  an adversarial workload — exact-boundary distances, radius-0 queries,
  subnormal offsets, tie-heavy event times — and its answers must be
  byte-identical to the ``reference`` backend (the extracted scalar loops).
  ``certificates_ok`` is the conjunction; it is the headline the floor file
  hard-asserts.
* **Throughput** (wall-clock): each kernel is driven ``repeats`` times per
  backend at size ``n`` and the headline reports per-call nanoseconds plus
  the speedup of every backend over ``reference``.  ``numba_best_speedup``
  (present only when numba is importable) is the max over kernels of
  numba-vs-numpy — the acceptance floor for the compiled backend.

``BENCH_S06.json`` tracks the trajectory: per-kernel per-backend headline
rows, one record per (git revision, headline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.kernels import (
    CellTable,
    KernelProfiler,
    available_backend_names,
    cell_gather,
    profiled,
    step_events,
    within_ball_mask,
)
from repro.kernels.layout import pack_bounds, pack_keys
from repro.runner.registry import register

__all__ = ["experiment_s06_kernels"]

#: The profiled kernel set (the stack's three hottest inner loops).
PROFILED_KERNELS = ("cell_gather", "within_ball_mask", "step_events")

#: Exact-boundary constants from the PR 2 adversarial suite.
_BOUNDARY_RADIUS = 1.9033145596437013
_SUBNORMAL = 2.2e-313


def _workload(n: int, seed: int):
    """Seeded kernel operands at size ``n`` (shared by every backend arm)."""
    rng = np.random.default_rng(seed)
    # cell_gather: a dense-ish cell table plus a query stream that mixes
    # hits and misses, each carrying an owner id.
    span = max(4, int(np.sqrt(n / 4)))
    keys = rng.integers(0, span, size=(n, 2))
    key_min, spans = pack_bounds(keys)
    table = CellTable.group_points(pack_keys(keys, key_min, spans), key_min, spans)
    queries = rng.integers(-2, int(table.cell_ids.max()) + 3, size=n)
    owners = rng.integers(0, max(1, n // 8), size=n)
    # within_ball_mask: points around one center, radius tuned to ~50% hits,
    # with exact-boundary rows spliced in so the certificate bites.
    points = rng.normal(scale=1.0, size=(n, 2))
    points[:: max(1, n // 64)] = [_BOUNDARY_RADIUS, 0.0]
    points[1 :: max(1, n // 64)] = [0.0, _SUBNORMAL]
    center = np.zeros(2)
    radius = _BOUNDARY_RADIUS
    # step_events: quantised times force heavy (time, sequence) ties.
    times = np.round(rng.uniform(0, n / 16, size=n), 1)
    seqs = rng.permutation(n).astype(np.int64)
    return (table, queries, owners), (points, center, radius), (times, seqs)


def _run_all(
    backend: str,
    gather_args,
    ball_args,
    event_args,
) -> Tuple[Tuple[np.ndarray, np.ndarray], np.ndarray, np.ndarray]:
    g = cell_gather(*gather_args, backend=backend)
    m = within_ball_mask(*ball_args, backend=backend)
    e = step_events(*event_args, backend=backend)
    return g, m, e


def _certify(backend: str, workload) -> bool:
    """Byte-identity of ``backend`` against ``reference`` on the workload."""
    got = _run_all(backend, *workload)
    want = _run_all("reference", *workload)
    return (
        np.array_equal(got[0][0], want[0][0])
        and np.array_equal(got[0][1], want[0][1])
        and np.array_equal(got[1], want[1])
        and np.array_equal(got[2], want[2])
    )


@register("S06")
def experiment_s06_kernels(
    n: int = 100_000,
    certificate_n: int = 4_096,
    repeats: int = 3,
    seed: int = 406,
) -> ExperimentResult:
    """Kernel-layer throughput and byte-identity per backend.

    Parameters
    ----------
    n:
        Operand size of the throughput arm (the numba acceptance floor is
        stated at ``n >= 1e5``).
    certificate_n:
        Operand size of the deterministic byte-identity arm (kept small:
        the reference loops are scalar Python).
    repeats:
        Timed calls per kernel per backend; per-call nanoseconds are the
        profiler total divided by ``repeats``.
    seed:
        Workload RNG seed.
    """
    if n < 1 or certificate_n < 1 or repeats < 1:
        raise ValueError("n, certificate_n and repeats must be positive")
    backends = list(available_backend_names())
    timed_backends = [b for b in backends if b != "reference"] + ["reference"]

    # -- certificate arm: every backend vs the extracted scalar loops ----------
    cert_workload = _workload(certificate_n, seed)
    certificates = {b: _certify(b, cert_workload) for b in backends if b != "reference"}
    certificates_ok = all(certificates.values())

    # -- throughput arm: profiler-attributed per-kernel nanoseconds ------------
    workload = _workload(n, seed + 1)
    ns_per_call: Dict[str, Dict[str, float]] = {}
    for backend in timed_backends:
        _run_all(backend, *workload)  # warm up (JIT compile, caches)
        prof = KernelProfiler()
        with profiled(prof):
            for _ in range(repeats):
                _run_all(backend, *workload)
        snap = prof.snapshot()
        ns_per_call[backend] = {
            kernel: snap[kernel]["ns"] / snap[kernel]["calls"]
            for kernel in PROFILED_KERNELS
        }

    rows: List[Dict] = []
    for kernel in PROFILED_KERNELS:
        reference_ns = ns_per_call["reference"][kernel]
        for backend in timed_backends:
            ns = ns_per_call[backend][kernel]
            rows.append(
                {
                    "kernel": kernel,
                    "backend": backend,
                    "ns_per_call": round(ns, 1),
                    "items_per_s": round(n / (ns / 1e9), 1) if ns > 0 else None,
                    "speedup_vs_reference": (
                        round(reference_ns / ns, 2) if ns > 0 else None
                    ),
                    "certified": (
                        True if backend == "reference" else certificates[backend]
                    ),
                }
            )

    numba_best: Optional[float] = None
    if "numba" in ns_per_call:
        numba_best = max(
            round(ns_per_call["numpy"][k] / ns_per_call["numba"][k], 2)
            for k in PROFILED_KERNELS
            if ns_per_call["numba"][k] > 0
        )

    headline: Dict = {"certificates_ok": certificates_ok, "backends": ",".join(backends)}
    for kernel in PROFILED_KERNELS:
        reference_ns = ns_per_call["reference"][kernel]
        for backend in timed_backends:
            if backend == "reference":
                continue
            ns = ns_per_call[backend][kernel]
            headline[f"speedup_{kernel}_{backend}"] = (
                round(reference_ns / ns, 2) if ns > 0 else None
            )
    headline["numba_best_speedup"] = numba_best

    return ExperimentResult(
        experiment_id="S06",
        title="Kernel-layer throughput and byte-identity per backend",
        paper_reference="construction/maintenance hot paths (PR 2/4/7), hoisted (PR 10)",
        rows=rows,
        headline=headline,
        notes=[
            "Speedups are wall-clock and vary between reruns; certificates_ok "
            "is deterministic — every backend answered the adversarial "
            "workload (exact-boundary distances, subnormal offsets, tie-heavy "
            "event times) byte-identically to the extracted scalar reference "
            "loops.",
            "Timings are profiler-attributed per-kernel nanoseconds "
            f"({repeats} calls per kernel per backend at n={n}), not "
            "whole-query wall time.",
        ],
    )
