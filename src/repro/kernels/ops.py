"""The kernel API: six hot-path primitives with pluggable implementations.

Every interpreter-bound inner loop of the stack reduces to one of these:

* :func:`cell_gather` — expand packed cell-table hits into (owner, member)
  candidate pairs: one ``searchsorted`` + vectorised range gather.  The
  engine under ``GridIndex._matches`` and the dynamic layer's bulk queries.
* :func:`within_ball_mask` — the exact closed-ball predicate (true
  Euclidean distance via ``hypot``, no tolerance; at ``radius == 0`` only
  coincident points qualify).  Shared by both index backends, so they agree
  on every boundary pair.
* :func:`count_in_balls` — per-owner candidate counts (the count-only
  bulk query's tail).
* :func:`pair_candidates` — group matched (owner, member) pairs into one
  sorted member array per owner (the bulk query's tail).
* :func:`splice_edges` — merge edge fragments into the canonical sorted,
  duplicate-free ``(m, 2)`` pair array (repair re-splice, shard stitching).
* :func:`step_events` — total-order event scheduling: the pop order of a
  pending ``(time, sequence)`` batch (the ``EventQueue`` stepping loop).

Each function dispatches through :mod:`repro.kernels.dispatch` (numpy
default, optional compiled backends) and, when a
:class:`~repro.kernels.profile.KernelProfiler` is installed, accounts its
calls/ns/bytes.  The ``reference`` backend registered here is the extracted
scalar loop each vectorised kernel replaced — the byte-identity certificate
baseline.  The scalar reference calls ``np.hypot`` *per element* rather
than ``math.hypot``: CPython's ``math.hypot`` is a different (correctly
rounded) algorithm that disagrees with the platform libm by 1 ULP on ~0.5%
of inputs, which would flip exact-boundary memberships.
"""

from __future__ import annotations

import bisect
from itertools import takewhile
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kernels.dispatch import KernelBackend, get_backend, register_backend
from repro.kernels.layout import CellTable
from repro.kernels.profile import active_profiler

__all__ = [
    "cell_gather",
    "within_ball_mask",
    "count_in_balls",
    "pair_candidates",
    "splice_edges",
    "step_events",
]

BackendSpec = Union[str, KernelBackend, None]

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


# -- public dispatchers ------------------------------------------------------------


def cell_gather(
    table: CellTable,
    packed: np.ndarray,
    owners: np.ndarray,
    *,
    backend: BackendSpec = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand cell-table hits into (owner, member) candidate pairs.

    ``packed[i]`` is a packed cell id wanted by query ``owners[i]``; for
    every id present in ``table`` the cell's members are emitted paired
    with their owner, in ``packed`` order (cells absent from the table
    contribute nothing).  Returns ``(owners_expanded, members)``.
    """
    impl = get_backend(backend).kernels["cell_gather"]
    prof = active_profiler()
    if prof is None:
        return impl(table, packed, owners)
    t0 = prof.clock()
    out = impl(table, packed, owners)
    prof.record(
        "cell_gather",
        prof.clock() - t0,
        packed.nbytes + owners.nbytes + out[0].nbytes + out[1].nbytes,
    )
    return out


def within_ball_mask(
    points: np.ndarray,
    center: np.ndarray,
    radius: float,
    *,
    backend: BackendSpec = None,
) -> np.ndarray:
    """Exact closed-ball membership mask (see ``geometry.index.within_ball``).

    ``center`` broadcasts against ``points``: one ``(2,)`` center or one
    center per point.  True Euclidean distance via ``hypot`` — never
    squared, which underflows for subnormal offsets.
    """
    impl = get_backend(backend).kernels["within_ball_mask"]
    prof = active_profiler()
    if prof is None:
        return impl(points, center, radius)
    t0 = prof.clock()
    out = impl(points, center, radius)
    prof.record(
        "within_ball_mask",
        prof.clock() - t0,
        np.asarray(points).nbytes + out.nbytes,
    )
    return out


def count_in_balls(
    owners: np.ndarray,
    n_owners: int,
    *,
    backend: BackendSpec = None,
) -> np.ndarray:
    """Per-owner match counts from the mask-filtered owner column."""
    impl = get_backend(backend).kernels["count_in_balls"]
    prof = active_profiler()
    if prof is None:
        return impl(owners, n_owners)
    t0 = prof.clock()
    out = impl(owners, n_owners)
    prof.record("count_in_balls", prof.clock() - t0, owners.nbytes + out.nbytes)
    return out


def pair_candidates(
    owners: np.ndarray,
    members: np.ndarray,
    n_owners: int,
    member_bound: int,
    *,
    backend: BackendSpec = None,
) -> List[np.ndarray]:
    """Group matched (owner, member) pairs into per-owner sorted arrays.

    ``member_bound`` is an exclusive upper bound on member values (the
    indexed point count), letting the fast path sort one collision-free
    combined key ``owner * bound + member`` instead of a two-key lexsort;
    the overflow fallback is byte-identical.
    """
    impl = get_backend(backend).kernels["pair_candidates"]
    prof = active_profiler()
    if prof is None:
        return impl(owners, members, n_owners, member_bound)
    t0 = prof.clock()
    out = impl(owners, members, n_owners, member_bound)
    prof.record(
        "pair_candidates",
        prof.clock() - t0,
        owners.nbytes + members.nbytes,
    )
    return out


def splice_edges(
    parts: Sequence[Union[np.ndarray, Sequence[Tuple[int, int]]]],
    *,
    backend: BackendSpec = None,
) -> np.ndarray:
    """Merge edge fragments into the canonical sorted unique ``(m, 2)`` array.

    Byte-identical to ``np.asarray(sorted(set(map(tuple, ...))))`` over the
    pooled fragments — the scalar splice the repair engine and the shard
    stitcher used to run.
    """
    impl = get_backend(backend).kernels["splice_edges"]
    prof = active_profiler()
    if prof is None:
        return impl(parts)
    t0 = prof.clock()
    out = impl(parts)
    prof.record("splice_edges", prof.clock() - t0, out.nbytes)
    return out


def step_events(
    times: np.ndarray,
    seqs: np.ndarray,
    *,
    until: Optional[float] = None,
    max_events: Optional[int] = None,
    backend: BackendSpec = None,
) -> np.ndarray:
    """Pop order of a pending event batch under the ``(time, seq)`` total order.

    Returns the indices of the events to process, in processing order:
    ascending time, ties broken by ascending sequence number (which is
    unique, so the order is total).  ``until`` keeps only events with
    ``time <= until``; ``max_events`` truncates the batch.
    """
    impl = get_backend(backend).kernels["step_events"]
    prof = active_profiler()
    if prof is None:
        return impl(times, seqs, until, max_events)
    t0 = prof.clock()
    out = impl(times, seqs, until, max_events)
    prof.record(
        "step_events", prof.clock() - t0, times.nbytes + seqs.nbytes + out.nbytes
    )
    return out


# -- numpy backend -----------------------------------------------------------------


def _numpy_cell_gather(
    table: CellTable, packed: np.ndarray, owners: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    cell_ids = table.cell_ids
    n_cells = len(cell_ids)
    if n_cells == 0 or len(packed) == 0:
        return _EMPTY_IDS.copy(), _EMPTY_IDS.copy()
    pos = np.searchsorted(cell_ids, packed)
    hit = (pos < n_cells) & (cell_ids[np.minimum(pos, n_cells - 1)] == packed)
    if not hit.any():
        return _EMPTY_IDS.copy(), _EMPTY_IDS.copy()
    pos = pos[hit]
    starts = table.starts[pos]
    counts = table.counts[pos]
    total = int(counts.sum())
    # Range gather: expand each (start, count) run into member indices.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + np.arange(total, dtype=np.int64) - offsets
    return np.repeat(owners[hit], counts), table.order[flat]


def _numpy_within_ball_mask(
    points: np.ndarray, center: np.ndarray, radius: float
) -> np.ndarray:
    diff = points - center
    return np.hypot(diff[..., 0], diff[..., 1]) <= radius


def _numpy_count_in_balls(owners: np.ndarray, n_owners: int) -> np.ndarray:
    return np.bincount(owners, minlength=n_owners)


def _numpy_pair_candidates(
    owners: np.ndarray, members: np.ndarray, n_owners: int, member_bound: int
) -> List[np.ndarray]:
    # A single combined-key argsort is ~10x faster than the equivalent
    # two-key lexsort; fall back when the combined key could overflow int64.
    bound = max(1, int(member_bound))
    if int(n_owners) * bound < 2**62:
        order = np.argsort(owners * bound + members, kind="stable")
    else:
        order = np.lexsort((members, owners))
    members = members[order]
    per_owner = np.bincount(owners, minlength=n_owners)
    return np.split(members, np.cumsum(per_owner)[:-1])


def _numpy_splice_edges(
    parts: Sequence[Union[np.ndarray, Sequence[Tuple[int, int]]]]
) -> np.ndarray:
    arrays = [np.asarray(p, dtype=np.int64).reshape(-1, 2) for p in parts]
    arrays = [a for a in arrays if len(a)]
    if not arrays:
        return np.zeros((0, 2), dtype=np.int64)
    pooled = np.concatenate(arrays, axis=0)
    order = np.lexsort((pooled[:, 1], pooled[:, 0]))
    pooled = pooled[order]
    keep = np.empty(len(pooled), dtype=np.bool_)
    keep[0] = True
    np.any(pooled[1:] != pooled[:-1], axis=1, out=keep[1:])
    return pooled[keep]


def _numpy_step_events(
    times: np.ndarray,
    seqs: np.ndarray,
    until: Optional[float],
    max_events: Optional[int],
) -> np.ndarray:
    order = np.lexsort((seqs, times))
    if until is not None:
        # times[order] ascends, so the kept set is a prefix.
        cut = int(np.searchsorted(times[order], until, side="right"))
        order = order[:cut]
    if max_events is not None:
        order = order[: max(0, int(max_events))]
    return order


# -- reference backend (extracted scalar loops) ------------------------------------


def _reference_cell_gather(
    table: CellTable, packed: np.ndarray, owners: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    cell_list = table.cell_ids.tolist()
    starts = table.starts.tolist()
    counts = table.counts.tolist()
    order = table.order
    out_owners: List[int] = []
    out_members: List[int] = []
    for key, owner in zip(packed.tolist(), owners.tolist()):
        pos = bisect.bisect_left(cell_list, key)
        if pos < len(cell_list) and cell_list[pos] == key:
            start, count = starts[pos], counts[pos]
            for j in range(start, start + count):
                out_owners.append(owner)
                out_members.append(int(order[j]))
    return (
        np.array(out_owners, dtype=np.int64),
        np.array(out_members, dtype=np.int64),
    )


def _reference_within_ball_mask(
    points: np.ndarray, center: np.ndarray, radius: float
) -> np.ndarray:
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.broadcast_to(np.asarray(center, dtype=np.float64), pts.shape)
    flat_p = pts.reshape(-1, 2)
    flat_c = ctr.reshape(-1, 2)
    out = np.empty(len(flat_p), dtype=np.bool_)
    for i in range(len(flat_p)):
        # Scalar np.hypot on purpose: it is the same libm primitive the
        # vectorised path uses, so exact-boundary pairs classify identically
        # (math.hypot is a different algorithm, off by 1 ULP on ~0.5% of
        # inputs).
        out[i] = float(
            np.hypot(flat_p[i, 0] - flat_c[i, 0], flat_p[i, 1] - flat_c[i, 1])
        ) <= radius
    return out.reshape(pts.shape[:-1])


def _reference_count_in_balls(owners: np.ndarray, n_owners: int) -> np.ndarray:
    out = np.zeros(int(n_owners), dtype=np.intp)
    for owner in owners.tolist():
        out[owner] += 1
    return out


def _reference_pair_candidates(
    owners: np.ndarray, members: np.ndarray, n_owners: int, member_bound: int
) -> List[np.ndarray]:
    groups: List[List[int]] = [[] for _ in range(int(n_owners))]
    for owner, member in zip(owners.tolist(), members.tolist()):
        groups[owner].append(member)
    return [np.array(sorted(group), dtype=np.int64) for group in groups]


def _reference_splice_edges(
    parts: Sequence[Union[np.ndarray, Sequence[Tuple[int, int]]]]
) -> np.ndarray:
    edges = set()
    for part in parts:
        arr = np.asarray(part, dtype=np.int64).reshape(-1, 2)
        edges.update((int(a), int(b)) for a, b in arr)
    if not edges:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(sorted(edges), dtype=np.int64)


def _reference_step_events(
    times: np.ndarray,
    seqs: np.ndarray,
    until: Optional[float],
    max_events: Optional[int],
) -> np.ndarray:
    t = times.tolist()
    s = seqs.tolist()
    order = sorted(range(len(t)), key=lambda i: (t[i], s[i]))
    if until is not None:
        order = list(takewhile(lambda i: t[i] <= until, order))
    if max_events is not None:
        order = order[: max(0, int(max_events))]
    return np.array(order, dtype=np.intp)


register_backend(
    "numpy",
    lambda: KernelBackend(
        "numpy",
        {
            "cell_gather": _numpy_cell_gather,
            "within_ball_mask": _numpy_within_ball_mask,
            "count_in_balls": _numpy_count_in_balls,
            "pair_candidates": _numpy_pair_candidates,
            "splice_edges": _numpy_splice_edges,
            "step_events": _numpy_step_events,
        },
    ),
)

register_backend(
    "reference",
    lambda: KernelBackend(
        "reference",
        {
            "cell_gather": _reference_cell_gather,
            "within_ball_mask": _reference_within_ball_mask,
            "count_in_balls": _reference_count_in_balls,
            "pair_candidates": _reference_pair_candidates,
            "splice_edges": _reference_splice_edges,
            "step_events": _reference_step_events,
        },
    ),
)
