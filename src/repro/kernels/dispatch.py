"""Kernel backend registry: numpy by default, compiled variants by request.

This is the same path-dispatch discipline the store (JSONL vs SQLite) and
the spatial index (grid vs kdtree) use, applied to the compute kernels:

* ``numpy`` — the zero-dependency default; vectorised implementations of
  every kernel (registered by :mod:`repro.kernels.ops`).
* ``reference`` — the extracted scalar loops the numpy kernels were hoisted
  from.  Slow on purpose: it is the byte-identity certificate baseline the
  property suites compare every other backend against.
* ``numba`` — optional JIT-compiled inner loops.  Feature-detected, never
  imported at module import time; requesting it without numba installed
  raises with an actionable message.  A backend may implement only the
  kernels it accelerates — missing entries fall back to numpy.

Selection order: an explicit ``backend=`` argument on any kernel call, else
the process override installed by :func:`set_backend` / :func:`use_backend`,
else the ``REPRO_KERNEL_BACKEND`` environment variable, else ``numpy``.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "register_backend",
    "registered_backend_names",
    "available_backend_names",
    "backend_available",
    "default_backend_name",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The closed kernel vocabulary.  A backend may implement any subset;
#: registering an unknown kernel name is an error (it would silently never
#: be dispatched to).
KERNEL_NAMES: Tuple[str, ...] = (
    "cell_gather",
    "within_ball_mask",
    "count_in_balls",
    "pair_candidates",
    "splice_edges",
    "step_events",
)


@dataclass(frozen=True)
class KernelBackend:
    """A named set of kernel implementations (possibly partial)."""

    name: str
    kernels: Mapping[str, Callable[..., Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.kernels) - set(KERNEL_NAMES)
        if unknown:
            raise ValueError(
                f"backend {self.name!r} registers unknown kernels: {sorted(unknown)}"
            )


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_AVAILABILITY: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_OVERRIDE: Optional[str] = None


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    available: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend factory under ``name``.

    ``available`` is an optional cheap probe (e.g. ``find_spec``) used by
    :func:`available_backend_names` without paying the factory's import
    cost; backends without one are assumed importable.
    """
    _FACTORIES[name] = factory
    if available is not None:
        _AVAILABILITY[name] = available
    _INSTANCES.pop(name, None)


def registered_backend_names() -> Tuple[str, ...]:
    _ensure_builtin()
    return tuple(sorted(_FACTORIES))


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its dependencies are importable."""
    _ensure_builtin()
    if name not in _FACTORIES:
        return False
    probe = _AVAILABILITY.get(name)
    return True if probe is None else bool(probe())


def available_backend_names() -> Tuple[str, ...]:
    """Registered backends whose dependencies are importable, sorted."""
    _ensure_builtin()
    return tuple(n for n in sorted(_FACTORIES) if backend_available(n))


def default_backend_name() -> str:
    """The backend used when no explicit argument is given."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(ENV_VAR, "") or "numpy"


def get_backend(spec: Union[str, KernelBackend, None] = None) -> KernelBackend:
    """Resolve ``spec`` to a backend instance.

    ``None`` resolves through :func:`default_backend_name`; a string looks
    up the registry (importing the backend's dependencies on first use); a
    :class:`KernelBackend` passes through.  Partial backends are completed
    with the numpy implementations at instantiation time, so every returned
    instance answers the full :data:`KERNEL_NAMES` vocabulary.
    """
    if isinstance(spec, KernelBackend):
        return spec
    _ensure_builtin()
    name = default_backend_name() if spec is None else spec
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(sorted(_FACTORIES))}"
        )
    try:
        backend = factory()
    except ImportError as exc:
        raise ImportError(
            f"kernel backend {name!r} is registered but its dependencies "
            f"failed to import ({exc}); install them or unset {ENV_VAR}"
        ) from exc
    if backend.name != "numpy":
        base = get_backend("numpy").kernels
        merged = {**base, **backend.kernels}
        backend = KernelBackend(name=backend.name, kernels=merged)
    missing = set(KERNEL_NAMES) - set(backend.kernels)
    if missing:
        raise ValueError(
            f"backend {name!r} leaves kernels unimplemented: {sorted(missing)}"
        )
    _INSTANCES[name] = backend
    return backend


def set_backend(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide backend override."""
    global _OVERRIDE
    if name is not None:
        get_backend(name)  # fail fast on unknown/uninstallable backends
    _OVERRIDE = name


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily route every kernel call through backend ``name``."""
    global _OVERRIDE
    previous = _OVERRIDE
    backend = get_backend(name)
    _OVERRIDE = name
    try:
        yield backend
    finally:
        _OVERRIDE = previous


def _numba_importable() -> bool:
    return importlib.util.find_spec("numba") is not None


def _numba_factory() -> KernelBackend:
    from repro.kernels import _numba_impls

    return _numba_impls.make_backend()


_BUILTIN_WIRED = False


def _ensure_builtin() -> None:
    """Wire the built-in backends on first registry access.

    The numpy/reference implementations live in :mod:`repro.kernels.ops`
    (imported lazily here to keep the module graph acyclic); numba is
    registered as a factory that only imports numba when actually selected.
    """
    global _BUILTIN_WIRED
    if _BUILTIN_WIRED:
        return
    _BUILTIN_WIRED = True
    from repro.kernels import ops  # noqa: F401  (registers numpy + reference)

    if "numba" not in _FACTORIES:
        register_backend("numba", _numba_factory, available=_numba_importable)
