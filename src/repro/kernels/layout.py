"""Structure-of-arrays buffer descriptions shared across the stack.

The kernel layer operates on flat, contiguous arrays — positions, stable
ids, packed cell keys — rather than per-point Python objects.  This module
is the single place those buffer shapes are written down:

* :class:`BufferSpec` describes one SoA buffer (dtype + per-item shape) and
  derives byte sizes and zero-copy views from it.  The shard layer's
  shared-memory blocks (:mod:`repro.distributed.sharding` creates them,
  :mod:`repro.shard.worker` attaches to them) and the grid index both read
  their dtypes from the same :data:`POSITIONS` / :data:`ROW_IDS` /
  :data:`CELL_KEYS` instances, so the two sides cannot drift apart.
* :class:`CellTable` is the CSR-style packed cell table (sorted unique cell
  ids, per-cell start/count, and the member permutation) that
  :class:`repro.geometry.index.GridIndex` builds from scratch and
  :meth:`~repro.geometry.index.GridIndex.from_cell_table` adopts from the
  dynamic layer's patched cell map.  Both constructors funnel through the
  same grouping code here.
* :func:`sort_groups` is the one stable group-by-key primitive (argsort +
  boundary diff) underneath the cell table and the shard worker's tile and
  region classification.

Everything in this package is importable without scipy, numba, or any other
optional dependency — consumers below (geometry, simulation) depend on
kernels, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "BufferSpec",
    "POSITIONS",
    "ROW_IDS",
    "CELL_KEYS",
    "CellTable",
    "sort_groups",
    "pack_bounds",
    "spans_fit_packed",
    "pack_keys",
]


@dataclass(frozen=True)
class BufferSpec:
    """Description of one SoA buffer: a name, a dtype and a per-item shape.

    A spec is the contract between whoever allocates a buffer (e.g. a
    ``multiprocessing.shared_memory`` block) and whoever views it: both call
    :meth:`nbytes` / :meth:`view` off the same instance instead of
    re-deriving ``count * 2 * 8``-style arithmetic locally.
    """

    name: str
    dtype: np.dtype
    item_shape: Tuple[int, ...] = ()

    @property
    def itemsize(self) -> int:
        """Bytes per item (dtype itemsize times the per-item element count)."""
        n_elem = 1
        for dim in self.item_shape:
            n_elem *= dim
        return int(self.dtype.itemsize) * n_elem

    def nbytes(self, count: int) -> int:
        """Bytes needed to hold ``count`` items."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.itemsize * int(count)

    def shape(self, count: int) -> Tuple[int, ...]:
        return (int(count), *self.item_shape)

    def view(self, buf: memoryview | bytearray, count: int) -> np.ndarray:
        """Zero-copy ndarray view of ``count`` items at the head of ``buf``."""
        return np.ndarray(self.shape(count), dtype=self.dtype, buffer=buf)

    def empty(self, count: int = 0) -> np.ndarray:
        """Freshly allocated (uninitialised) array of ``count`` items."""
        return np.empty(self.shape(count), dtype=self.dtype)


#: Planar point coordinates — the layout of the shard layer's shared-memory
#: position blocks and of every ``points`` array the kernels consume.
POSITIONS = BufferSpec("positions", np.dtype(np.float64), (2,))

#: Stable row/node ids — the shard layer's rows blocks, cell-table member
#: ids, and every index array the kernels emit.
ROW_IDS = BufferSpec("row_ids", np.dtype(np.int64), ())

#: Integer ``(cx, cy)`` grid cell keys as produced by ``_exact_keys``.
CELL_KEYS = BufferSpec("cell_keys", np.dtype(np.int64), (2,))


def sort_groups(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stable group-by over integer ``keys``.

    Returns ``(order, group_keys, starts, counts)`` where ``order`` is the
    stable permutation sorting ``keys`` ascending, ``group_keys`` the sorted
    unique keys, and ``keys[order][starts[g] : starts[g] + counts[g]]`` is
    group ``g``.  The stable sort keeps original element order inside each
    group — the property every consumer (cell tables, shard tile/region
    classification) relies on for deterministic output.
    """
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    n = len(sorted_keys)
    if n == 0:
        empty = np.zeros(0, dtype=ROW_IDS.dtype)
        return order.astype(np.int64), keys[:0], empty, empty
    firsts = np.nonzero(np.diff(sorted_keys))[0] + 1
    starts = np.concatenate([[0], firsts]).astype(np.int64)
    counts = np.diff(np.append(starts, n)).astype(np.int64)
    return order, sorted_keys[starts], starts, counts


def pack_bounds(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Bounding box of integer cell ``keys``: ``(key_min, spans)``."""
    key_min = keys.min(axis=0)
    spans = keys.max(axis=0) - key_min + 1
    return key_min, spans


def spans_fit_packed(spans: np.ndarray) -> bool:
    """Whether a ``spans`` box packs into collision-free int64 keys."""
    return int(spans[0]) * int(spans[1]) < 2**62


def pack_keys(keys: np.ndarray, key_min: np.ndarray, spans: np.ndarray) -> np.ndarray:
    """Pack ``(cx, cy)`` keys into one int64 per key: ``(cx-min)*span_y + (cy-min)``."""
    return (keys[:, 0] - key_min[0]) * spans[1] + (keys[:, 1] - key_min[1])


@dataclass(frozen=True)
class CellTable:
    """CSR-style packed cell table: the SoA form of a spatial hash.

    ``cell_ids`` holds the packed ids of the occupied cells, sorted
    ascending and duplicate-free; cell ``c``'s members are
    ``order[starts[c] : starts[c] + counts[c]]``.  ``key_min``/``spans``
    record the packing so queries can derive packed ids for arbitrary
    cells.  The two constructors mirror the two ways an index comes to
    exist: :meth:`group_points` buckets a fresh point set, and
    :meth:`adopt_cells` wraps an externally maintained cell → members map
    (the dynamic layer's patched table) without re-bucketing anything.
    """

    cell_ids: np.ndarray
    starts: np.ndarray
    counts: np.ndarray
    order: np.ndarray
    key_min: np.ndarray
    spans: np.ndarray

    @classmethod
    def empty(cls) -> "CellTable":
        zeros = np.zeros(0, dtype=ROW_IDS.dtype)
        return cls(
            cell_ids=zeros,
            starts=zeros.copy(),
            counts=zeros.copy(),
            order=zeros.copy(),
            key_min=np.zeros(2, dtype=CELL_KEYS.dtype),
            spans=np.ones(2, dtype=CELL_KEYS.dtype),
        )

    @classmethod
    def group_points(
        cls, packed: np.ndarray, key_min: np.ndarray, spans: np.ndarray
    ) -> "CellTable":
        """Bucket points by their packed cell key (stable within each cell)."""
        order, cell_ids, starts, counts = sort_groups(packed)
        return cls(
            cell_ids=cell_ids,
            starts=starts,
            counts=counts,
            order=order,
            key_min=key_min,
            spans=spans,
        )

    @classmethod
    def adopt_cells(
        cls,
        packed: np.ndarray,
        members: Sequence[np.ndarray],
        key_min: np.ndarray,
        spans: np.ndarray,
    ) -> "CellTable":
        """Wrap an existing cell → sorted-members map (one entry per packed id).

        ``packed`` must be duplicate-free but need not be sorted;
        ``members[i]`` are the member ids of cell ``packed[i]``.  The member
        arrays are concatenated in cell order — adopted by reference, never
        re-bucketed.
        """
        cell_order = np.argsort(packed, kind="stable")
        counts = np.fromiter(
            (len(members[i]) for i in cell_order.tolist()),
            dtype=ROW_IDS.dtype,
            count=len(packed),
        )
        return cls(
            cell_ids=packed[cell_order],
            starts=np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64),
            counts=counts,
            order=np.concatenate([members[i] for i in cell_order.tolist()]),
            key_min=key_min,
            spans=spans,
        )

    @property
    def n_cells(self) -> int:
        return len(self.cell_ids)

    @property
    def n_members(self) -> int:
        return len(self.order)

    def member_lists(self) -> List[np.ndarray]:
        """Per-cell member views, in ``cell_ids`` order."""
        return [
            self.order[s : s + c]
            for s, c in zip(self.starts.tolist(), self.counts.tolist())
        ]
