"""Loop-style kernel sources that numba JIT-compiles into the ``numba`` backend.

The functions here are written in nopython-compatible style (flat loops,
no closures, no optional arguments) and are importable — and unit-tested —
*without* numba: the cross-backend equality suite runs them un-jitted on
every machine, so the loop logic is exercised even where numba is absent,
and :func:`make_backend` (only called when the ``numba`` backend is
actually selected) wraps them with ``numba.njit``.

Exactness note for :func:`hypot_mask`: jitted, ``math.hypot`` lowers to the
platform libm ``hypot`` — the same primitive ``np.hypot`` wraps — so the
compiled kernel classifies every boundary pair byte-identically to the
numpy backend.  Run *un-jitted* (the local test path), ``math.hypot`` is
CPython's correctly-rounded implementation, which can differ from libm by
1 ULP in the distance; the source-level tests therefore tolerate membership
flips only on pairs whose distance is within 2 ULP of the radius, and the
exact certificate is asserted on the jitted kernel (the CI numba leg).

The backend only overrides the kernels a fused loop actually accelerates
(``within_ball_mask``, ``cell_gather``, ``count_in_balls``); the rest
fall back to numpy via the dispatch merge.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.kernels.layout import CellTable

__all__ = [
    "hypot_mask",
    "hypot_mask_paired",
    "cell_gather_expand",
    "count_owners",
    "make_backend",
]


def hypot_mask(points: np.ndarray, cx: float, cy: float, radius: float) -> np.ndarray:
    """Closed-ball mask of ``(n, 2)`` points against one center."""
    n = points.shape[0]
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        out[i] = math.hypot(points[i, 0] - cx, points[i, 1] - cy) <= radius
    return out


def hypot_mask_paired(
    points: np.ndarray, centers: np.ndarray, radius: float
) -> np.ndarray:
    """Closed-ball mask of ``(n, 2)`` points against one center per point."""
    n = points.shape[0]
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        out[i] = (
            math.hypot(points[i, 0] - centers[i, 0], points[i, 1] - centers[i, 1])
            <= radius
        )
    return out


def cell_gather_expand(
    cell_ids: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    order: np.ndarray,
    packed: np.ndarray,
    owners: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused single-pass form of the numpy searchsorted + range gather."""
    n_cells = cell_ids.shape[0]
    m = packed.shape[0]
    pos = np.searchsorted(cell_ids, packed)
    total = 0
    for i in range(m):
        p = pos[i]
        if p < n_cells and cell_ids[p] == packed[i]:
            total += counts[p]
    out_owners = np.empty(total, dtype=np.int64)
    out_members = np.empty(total, dtype=np.int64)
    k = 0
    for i in range(m):
        p = pos[i]
        if p < n_cells and cell_ids[p] == packed[i]:
            start = starts[p]
            count = counts[p]
            owner = owners[i]
            for j in range(count):
                out_owners[k] = owner
                out_members[k] = order[start + j]
                k += 1
    return out_owners, out_members


def count_owners(owners: np.ndarray, n_owners: int) -> np.ndarray:
    """Scalar bincount over the matched owner column."""
    out = np.zeros(n_owners, dtype=np.intp)
    for i in range(owners.shape[0]):
        out[owners[i]] += 1
    return out


def _as_flat_points(points: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    pts = np.asarray(points, dtype=np.float64)
    return np.ascontiguousarray(pts.reshape(-1, 2)), pts.shape[:-1]


def make_backend() -> "KernelBackend":  # noqa: F821 - resolved below
    """Build the ``numba`` backend (imports numba; call only when selected)."""
    import numba

    from repro.kernels.dispatch import KernelBackend

    jit = numba.njit(cache=False, nogil=True)
    jit_single = jit(hypot_mask)
    jit_paired = jit(hypot_mask_paired)
    jit_gather = jit(cell_gather_expand)
    jit_count = jit(count_owners)

    def within_ball_mask(
        points: np.ndarray, center: np.ndarray, radius: float
    ) -> np.ndarray:
        flat, shape = _as_flat_points(points)
        ctr = np.asarray(center, dtype=np.float64)
        if ctr.ndim == 1:
            out = jit_single(flat, float(ctr[0]), float(ctr[1]), float(radius))
        else:
            paired = np.ascontiguousarray(
                np.broadcast_to(ctr, (*shape, 2)).reshape(-1, 2)
            )
            out = jit_paired(flat, paired, float(radius))
        return out.reshape(shape)

    def cell_gather(
        table: CellTable, packed: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return jit_gather(
            table.cell_ids,
            table.starts,
            table.counts,
            np.ascontiguousarray(table.order, dtype=np.int64),
            np.ascontiguousarray(packed, dtype=np.int64),
            np.ascontiguousarray(owners, dtype=np.int64),
        )

    def count_in_balls(owners: np.ndarray, n_owners: int) -> np.ndarray:
        return jit_count(
            np.ascontiguousarray(owners, dtype=np.int64), int(n_owners)
        )

    return KernelBackend(
        "numba",
        {
            "within_ball_mask": within_ball_mask,
            "cell_gather": cell_gather,
            "count_in_balls": count_in_balls,
        },
    )
