"""One structure-of-arrays compute layer under index, repair, shard and serve.

The hot inner loops of the stack — the grid cell-table gather, the exact
closed-ball predicate, the repair/shard edge splice, and the event-queue
stepping order — used to live hand-rolled inside their consumer modules, so
every optimisation had to be re-implemented four times.  This package hoists
them into one kernel vocabulary:

* :mod:`repro.kernels.layout` — the SoA buffer descriptions (positions,
  row ids, cell keys) and the CSR-style :class:`~repro.kernels.layout.CellTable`
  shared by the grid index, the dynamic layer's adopted views, and the
  shard workers' shared-memory blocks.
* :mod:`repro.kernels.ops` — the kernel API (``cell_gather``,
  ``within_ball_mask``, ``count_in_balls``, ``pair_candidates``,
  ``splice_edges``, ``step_events``).
* :mod:`repro.kernels.dispatch` — the backend registry: ``numpy`` is the
  zero-dependency default, ``reference`` the extracted scalar certificate
  baseline, ``numba`` an optional compiled backend selected via the
  ``REPRO_KERNEL_BACKEND`` environment variable or an explicit argument —
  feature-detected, never required at import time.
* :mod:`repro.kernels.profile` — opt-in per-kernel call/ns/bytes counters
  behind an injected clock (the S06 benchmark's attribution source).

Discipline (see CONTRIBUTING.md): every kernel keeps its scalar reference
implementation registered, and every backend is property-tested
byte-identical against it (or carries a documented tolerance).
"""

from repro.kernels.dispatch import (
    KERNEL_NAMES,
    KernelBackend,
    available_backend_names,
    backend_available,
    default_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.kernels.layout import CELL_KEYS, POSITIONS, ROW_IDS, BufferSpec, CellTable
from repro.kernels.ops import (
    cell_gather,
    count_in_balls,
    pair_candidates,
    splice_edges,
    step_events,
    within_ball_mask,
)
from repro.kernels.profile import KernelProfiler, KernelStats, active_profiler, profiled

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "available_backend_names",
    "backend_available",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
    "BufferSpec",
    "CellTable",
    "POSITIONS",
    "ROW_IDS",
    "CELL_KEYS",
    "cell_gather",
    "count_in_balls",
    "pair_candidates",
    "splice_edges",
    "step_events",
    "within_ball_mask",
    "KernelProfiler",
    "KernelStats",
    "active_profiler",
    "profiled",
]
