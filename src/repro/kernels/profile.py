"""Per-kernel call / nanosecond / byte counters behind an injected clock.

The profiler is how the S06 benchmark (and anyone chasing a regression)
attributes wall time to individual kernels instead of whole queries.  It is
strictly opt-in: with no profiler installed the kernel dispatchers in
:mod:`repro.kernels.ops` pay one ``None`` check per call and nothing else.

The clock is injected (default ``time.perf_counter_ns`` — a monotonic
duration measurement, not simulation state) so tests assert exact counter
arithmetic with a manual tick source instead of sleeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

__all__ = ["KernelStats", "KernelProfiler", "active_profiler", "profiled"]


@dataclass
class KernelStats:
    """Accumulated counters for one kernel."""

    calls: int = 0
    ns: int = 0
    nbytes: int = 0

    def add(self, ns: int, nbytes: int) -> None:
        self.calls += 1
        self.ns += int(ns)
        self.nbytes += int(nbytes)


class KernelProfiler:
    """Accumulates per-kernel counters; install with :func:`profiled`."""

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        #: Nanosecond tick source; injectable so tests control elapsed time.
        self.clock: Callable[[], int] = (
            time.perf_counter_ns if clock is None else clock
        )
        self.stats: Dict[str, KernelStats] = {}

    def record(self, kernel: str, ns: int, nbytes: int) -> None:
        stats = self.stats.get(kernel)
        if stats is None:
            stats = self.stats[kernel] = KernelStats()
        stats.add(ns, nbytes)

    def reset(self) -> None:
        self.stats.clear()

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict view of the counters (canonical-JSON friendly)."""
        return {
            name: {"calls": s.calls, "ns": s.ns, "nbytes": s.nbytes}
            for name, s in sorted(self.stats.items())
        }


_ACTIVE: Optional[KernelProfiler] = None


def active_profiler() -> Optional[KernelProfiler]:
    """The currently installed profiler, or ``None`` (the fast path)."""
    return _ACTIVE


@contextmanager
def profiled(profiler: Optional[KernelProfiler] = None) -> Iterator[KernelProfiler]:
    """Install ``profiler`` (a fresh one if omitted) for the duration.

    Nests: the previous profiler is restored on exit, so a benchmark can
    scope counters per backend arm.
    """
    global _ACTIVE
    prof = KernelProfiler() if profiler is None else profiler
    previous = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = previous
