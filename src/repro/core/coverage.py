"""Coverage measurement (property P3, Theorem 3.3, Corollary 3.4).

The paper's coverage statement: the probability that an ℓ×ℓ box contains no
point of the SENS network decays exponentially in ℓ (with a sharper decay for
denser deployments).  :func:`empty_box_probability` estimates that probability
for one box size by placing many boxes inside the window;
:func:`measure_coverage` sweeps box sizes and fits the decay rate, and
:func:`required_box_size` inverts the fit the way Corollary 3.4 does (find ℓ
such that the empty-box probability drops below a target 1/n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.primitives import Rect, as_points
from repro.rng import resolve_rng

__all__ = [
    "CoverageReport",
    "empty_box_probability",
    "measure_coverage",
    "required_box_size",
]


def empty_box_probability(
    points: np.ndarray,
    window: Rect,
    box_size: float,
    n_boxes: int = 500,
    rng: np.random.Generator | None = None,
    margin: float = 0.0,
) -> float:
    """Fraction of randomly placed ℓ×ℓ boxes containing no point.

    Boxes are placed uniformly at random with their lower-left corner such
    that the whole box (plus an optional ``margin`` keeping boxes away from
    the window boundary) lies inside ``window``.

    Raises
    ------
    ValueError
        If the box does not fit inside the window.
    """
    if box_size <= 0:
        raise ValueError("box_size must be positive")
    if n_boxes < 1:
        raise ValueError("n_boxes must be positive")
    rng = resolve_rng(rng)
    pts = as_points(points)
    effective = window.shrink(margin) if margin > 0 else window
    if box_size > min(effective.width, effective.height):
        raise ValueError("box_size larger than the (margin-shrunk) window")
    x0 = rng.uniform(effective.xmin, effective.xmax - box_size, size=n_boxes)
    y0 = rng.uniform(effective.ymin, effective.ymax - box_size, size=n_boxes)
    if len(pts) == 0:
        return 1.0
    empty = 0
    for bx, by in zip(x0, y0):
        inside = (
            (pts[:, 0] >= bx)
            & (pts[:, 0] <= bx + box_size)
            & (pts[:, 1] >= by)
            & (pts[:, 1] <= by + box_size)
        )
        empty += not bool(inside.any())
    return empty / n_boxes


@dataclass
class CoverageReport:
    """Empty-box probability as a function of box size, plus a decay fit.

    Attributes
    ----------
    box_sizes: probed box sides ℓ.
    empty_probabilities: estimated P(box of side ℓ is empty).
    decay_rate: the fitted c in P ≈ A·exp(−c·ℓ) over the strictly positive
        observations (``nan`` when fewer than two positive observations
        exist — e.g. every probed box size is already always covered).
    amplitude: the fitted A.
    """

    box_sizes: np.ndarray
    empty_probabilities: np.ndarray
    decay_rate: float
    amplitude: float

    def as_rows(self) -> list[dict[str, float]]:
        return [
            {"box_size": float(side), "p_empty": float(p)}
            for side, p in zip(self.box_sizes, self.empty_probabilities)
        ]

    def predicted(self, box_size: float) -> float:
        """Fitted P(empty) at an arbitrary box size (exponential model)."""
        if not np.isfinite(self.decay_rate):
            return float("nan")
        return float(self.amplitude * np.exp(-self.decay_rate * box_size))


def measure_coverage(
    points: np.ndarray,
    window: Rect,
    box_sizes: Sequence[float],
    n_boxes: int = 500,
    rng: np.random.Generator | None = None,
    margin: float = 0.0,
) -> CoverageReport:
    """Sweep box sizes, estimate empty-box probabilities, fit the exponential decay."""
    rng = resolve_rng(rng)
    sizes = np.asarray(sorted(float(s) for s in box_sizes))
    probs = np.asarray(
        [
            empty_box_probability(points, window, s, n_boxes=n_boxes, rng=rng, margin=margin)
            for s in sizes
        ]
    )
    positive = probs > 0
    if positive.sum() >= 2:
        # Linear fit of log P against ℓ: log P = log A − c·ℓ.
        coeffs = np.polyfit(sizes[positive], np.log(probs[positive]), 1)
        decay_rate = float(-coeffs[0])
        amplitude = float(np.exp(coeffs[1]))
    else:
        decay_rate = float("nan")
        amplitude = float("nan")
    return CoverageReport(sizes, probs, decay_rate, amplitude)


def required_box_size(report: CoverageReport, target_probability: float) -> float:
    """Box size ℓ at which the fitted empty-box probability falls to ``target_probability``.

    This is the Corollary 3.4 planning question ("ℓ ≥ c·log n makes the
    empty-box probability < 1/n") answered from measured data.

    Raises
    ------
    ValueError
        If the target is not in (0, 1) or the report has no usable decay fit.
    """
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must lie in (0, 1)")
    if not np.isfinite(report.decay_rate) or report.decay_rate <= 0:
        raise ValueError("coverage report has no usable exponential fit")
    return float(np.log(report.amplitude / target_probability) / report.decay_rate)
