"""Core package: the paper's SENS constructions and their analysis.

The public API most users need:

* :func:`repro.core.udg_sens.build_udg_sens` — build ``UDG-SENS(2, λ)`` from a
  point set (or sample one), returning a :class:`repro.core.result.SensNetwork`.
* :func:`repro.core.nn_sens.build_nn_sens` — build ``NN-SENS(2, k)``.
* :class:`repro.core.tiles_udg.UDGTileSpec` / :class:`repro.core.tiles_nn.NNTileSpec`
  — tile geometry (paper parameters and the repaired defaults, see DESIGN.md §2).
* :mod:`repro.core.thresholds` — the λ_s / k_s calculators behind Theorems 2.2
  and 2.4.
* :mod:`repro.core.stretch`, :mod:`repro.core.coverage`, :mod:`repro.core.power`
  — the property measurements (P2 stretch, P3 coverage, power efficiency).
"""

from repro.core.coverage import CoverageReport, empty_box_probability, measure_coverage
from repro.core.goodness import TileClassification, classify_tiles
from repro.core.nn_sens import build_nn_sens
from repro.core.overlay import OverlayGraph, OverlayRole, build_overlay
from repro.core.power import path_power, power_stretch, PowerReport
from repro.core.result import SensNetwork
from repro.core.stretch import StretchReport, measure_stretch
from repro.core.thresholds import (
    GoodnessCurve,
    estimate_goodness_probability,
    find_udg_lambda_threshold,
    find_nn_k_threshold,
)
from repro.core.tiles_nn import NNTileSpec
from repro.core.tiles_udg import UDGTileSpec
from repro.core.tiling import Tiling, TileIndex
from repro.core.udg_sens import build_udg_sens

__all__ = [
    "Tiling",
    "TileIndex",
    "UDGTileSpec",
    "NNTileSpec",
    "TileClassification",
    "classify_tiles",
    "OverlayGraph",
    "OverlayRole",
    "build_overlay",
    "SensNetwork",
    "build_udg_sens",
    "build_nn_sens",
    "GoodnessCurve",
    "estimate_goodness_probability",
    "find_udg_lambda_threshold",
    "find_nn_k_threshold",
    "StretchReport",
    "measure_stretch",
    "CoverageReport",
    "empty_box_probability",
    "measure_coverage",
    "path_power",
    "power_stretch",
    "PowerReport",
]
