"""Tile geometry for ``UDG-SENS(2, λ)`` (paper §2.1, Figure 3).

A tile is a square of side ``side`` (4/3 in the paper).  Its regions are

* ``C0`` — the representative region, a disc of radius ``rep_radius`` at the
  tile centre (1/2 in the paper);
* ``E_right, E_left, E_top, E_bottom`` — relay regions sitting between C0 and
  each tile edge.

The paper defines a relay region as the set of points within unit distance of
*every* point of C0 and of the facing relay region of the neighbouring tile.
With the paper's parameters that set minus C0 is empty (the set of points
within distance 1 of all of a radius-1/2 disc *is* that disc), so the
construction as stated is degenerate — see DESIGN.md §2.  This module keeps
the same *shape* of definition but parameterises it so it can be made
non-degenerate:

``E_dir = {q ∈ tile : rep_radius < |q − centre| ≤ connection_radius − rep_radius
                       and |q − edge_midpoint(dir)| ≤ relay_reach}``

The first condition makes q reachable (one hop ≤ connection_radius) from
*any* representative in C0; the second makes q reachable from *any* point of
the facing relay region of the neighbour (both lie within ``relay_reach`` of
the shared edge midpoint, so their distance is at most ``2·relay_reach``,
which must not exceed ``connection_radius``).  These are exactly the
guarantees Claim 2.1 needs for its 3-hop path of unit-length edges, and they
are verified numerically by :meth:`UDGTileSpec.validate` and by the
property-based tests.

``UDGTileSpec.paper()`` reproduces the stated parameters (and is reported as
infeasible); ``UDGTileSpec.default()`` is the repaired parameterisation used
throughout the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.tiles_base import DIRECTIONS, SpecDiagnostics, TileSpec
from repro.geometry.predicates import (
    AnnulusPredicate,
    DiscPredicate,
    IntersectionPredicate,
    RectPredicate,
    RegionPredicate,
)
from repro.geometry.primitives import Disc, Rect

__all__ = ["UDGTileSpec"]

#: Unit vector pointing towards each tile edge.
_DIRECTION_VECTORS: Dict[str, np.ndarray] = {
    "right": np.array([1.0, 0.0]),
    "left": np.array([-1.0, 0.0]),
    "top": np.array([0.0, 1.0]),
    "bottom": np.array([0.0, -1.0]),
}


@dataclass(frozen=True)
class UDGTileSpec(TileSpec):
    """Geometry of one UDG-SENS tile (tile-local coordinates, centre at origin).

    Parameters
    ----------
    side:
        Tile side length (paper: 4/3).
    rep_radius:
        Radius of the representative region C0 (paper: 1/2 — degenerate).
    connection_radius:
        UDG connection radius (paper: 1).
    relay_reach:
        Maximum distance of a relay point from the shared edge midpoint.  Any
        value ≤ ``connection_radius / 2`` guarantees relay-to-relay edges
        across the tile border.
    """

    side: float = 4.0 / 3.0
    rep_radius: float = 1.0 / 3.0
    connection_radius: float = 1.0
    relay_reach: float = 0.5

    representative_region: str = "C0"

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError("tile side must be positive")
        if not 0 < self.rep_radius < self.connection_radius:
            raise ValueError("rep_radius must lie in (0, connection_radius)")
        if self.relay_reach <= 0:
            raise ValueError("relay_reach must be positive")
        if self.rep_radius > self.side / 2:
            raise ValueError("representative disc does not fit inside the tile")

    # -- factory parameterisations ---------------------------------------------
    @classmethod
    def paper(cls) -> "UDGTileSpec":
        """The parameters stated in the paper (side 4/3, C0 radius 1/2).

        This spec is geometrically degenerate (its relay regions are empty);
        it exists so that experiment E10 can demonstrate and report the
        degeneracy rather than silently papering over it.
        """
        return cls(side=4.0 / 3.0, rep_radius=0.5, connection_radius=1.0, relay_reach=0.5)

    @classmethod
    def default(cls) -> "UDGTileSpec":
        """The repaired default used across the experiments.

        ``rep_radius = 1/3`` keeps the annulus ``(1/3, 2/3]`` available for the
        relay regions while C0 stays reasonably large; ``relay_reach = 1/2``
        gives the across-the-border guarantee for a unit connection radius.
        """
        return cls(side=4.0 / 3.0, rep_radius=1.0 / 3.0, connection_radius=1.0, relay_reach=0.5)

    # -- TileSpec interface ------------------------------------------------------
    @property
    def tile_side(self) -> float:  # type: ignore[override]
        return self.side

    @property
    def region_names(self) -> Sequence[str]:  # type: ignore[override]
        return ("C0", "E_right", "E_left", "E_top", "E_bottom")

    @property
    def required_regions(self) -> Sequence[str]:  # type: ignore[override]
        return self.region_names

    def max_points_per_tile(self, k: int | None) -> int | None:
        """UDG-SENS places no cap on the number of points per tile."""
        return None

    def tile_rect(self) -> Rect:
        """The tile footprint in tile-local coordinates."""
        return Rect.centered((0.0, 0.0), self.side, self.side)

    def edge_midpoint(self, direction: str) -> np.ndarray:
        """Midpoint of the tile edge in the given direction (tile-local)."""
        return _DIRECTION_VECTORS[direction] * (self.side / 2.0)

    def relay_region(self, direction: str) -> RegionPredicate:
        """The relay region towards ``direction`` (tile-local coordinates)."""
        midpoint = self.edge_midpoint(direction)
        annulus = AnnulusPredicate(
            0.0, 0.0, inner=self.rep_radius, outer=self.connection_radius - self.rep_radius
        )
        near_edge = DiscPredicate(Disc(float(midpoint[0]), float(midpoint[1]), self.relay_reach))
        inside_tile = RectPredicate(self.tile_rect())
        return IntersectionPredicate([annulus, near_edge, inside_tile])

    def region_predicates(self) -> Mapping[str, RegionPredicate]:
        preds: Dict[str, RegionPredicate] = {"C0": DiscPredicate(Disc(0.0, 0.0, self.rep_radius))}
        for direction in DIRECTIONS:
            preds[f"E_{direction}"] = self.relay_region(direction)
        return preds

    def region_anchor(self, name: str) -> np.ndarray:
        """Nominal centre of a region, used for deterministic point selection."""
        if name == "C0":
            return np.zeros(2)
        direction = name.removeprefix("E_")
        if direction not in _DIRECTION_VECTORS:
            raise KeyError(f"unknown region {name!r}")
        # Nominal relay anchor: radially between C0 and the tile edge, at the
        # middle of the admissible annulus.
        radius = (self.rep_radius + (self.connection_radius - self.rep_radius)) / 2.0
        radius = min(radius, self.side / 2.0 - 1e-9)
        return _DIRECTION_VECTORS[direction] * radius

    def relay_chain(self, direction: str) -> Sequence[str]:
        """UDG-SENS uses a single relay per direction (rep – E_dir – E_opp – rep)."""
        return (f"E_{direction}",)

    # -- validation ----------------------------------------------------------------
    def validate(self, resolution: int = 300) -> SpecDiagnostics:
        """Check feasibility and the Claim 2.1 connectivity guarantees.

        Guarantee margins reported (all must be ≥ 0 for the construction to be
        provably correct):

        ``rep_to_relay``
            ``connection_radius − (rep_radius + (connection_radius − rep_radius))``
            is identically 0 by construction; instead we report the margin of
            the *numerically observed* farthest C0-to-relay distance.
        ``relay_to_relay``
            ``connection_radius − 2·relay_reach`` — across-the-border edge.
        ``relay_inside_tile``
            distance of the relay annulus from the tile boundary (≥ 0 means
            the admissible relay band fits inside the tile).
        """
        areas = self._area_report(resolution)
        empty = tuple(name for name in self.required_regions if areas[name] <= 1e-9)
        notes: list[str] = []

        margins: Dict[str, float] = {}
        # Numeric worst-case rep→relay distance: sample both regions.
        preds = self.region_predicates()
        rect = self.tile_rect()
        grid = rect.grid(resolution)
        c0_pts = grid[preds["C0"].contains(grid)]
        er_pts = grid[preds["E_right"].contains(grid)]
        if len(c0_pts) and len(er_pts):
            from repro.geometry.primitives import pairwise_distances

            worst = float(pairwise_distances(c0_pts, er_pts).max())
            margins["rep_to_relay"] = self.connection_radius - worst
        else:
            margins["rep_to_relay"] = float("-inf") if er_pts.size == 0 else 0.0
        margins["relay_to_relay"] = self.connection_radius - 2.0 * self.relay_reach
        margins["relay_inside_tile"] = self.side / 2.0 - self.rep_radius
        # The annulus outer radius must exceed the inner radius for relay
        # regions to have any area at all; this is the paper's degeneracy.
        annulus_width = (self.connection_radius - self.rep_radius) - self.rep_radius
        margins["annulus_width"] = annulus_width
        if annulus_width <= 0:
            notes.append(
                "rep_radius >= connection_radius/2: the set of points within "
                "connection_radius of every point of C0 does not extend beyond C0, "
                "so the relay regions are empty (the paper-parameter degeneracy)."
            )

        feasible = not empty and all(v >= -1e-9 for v in margins.values())
        return SpecDiagnostics(
            feasible=feasible,
            region_areas=areas,
            empty_regions=empty,
            guarantee_margins=margins,
            notes=tuple(notes),
        )

    # -- analytic helpers used by the threshold search ------------------------------
    def region_area_estimates(self, resolution: int = 400) -> Dict[str, float]:
        """Grid-integrated areas of all regions (tile-local)."""
        return self._area_report(resolution)

    def analytic_good_probability(self, intensity: float, resolution: int = 400) -> float:
        """Independence-based estimate of P(tile is good) at the given intensity.

        Treats the five required regions as if they were disjoint (the four
        relay regions can overlap near the tile corners, so this is an
        approximation; the Monte-Carlo estimator in
        :mod:`repro.core.thresholds` is the reference).  Each region is
        occupied with probability ``1 − exp(−λ·area)``.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        prob = 1.0
        for name, area in self.region_area_estimates(resolution).items():
            if name in self.required_regions:
                prob *= 1.0 - np.exp(-intensity * area)
        return float(prob)
