"""Overlay construction: wiring representatives and relays into SENS graphs.

Given a :class:`~repro.core.goodness.TileClassification`, the overlay builder
adds, for every pair of *adjacent good tiles* (t, t'), the relay path the
paper's Claims 2.1 / 2.3 guarantee:

* UDG-SENS: ``rep(t) – E_dir(t) – E_opp(t') – rep(t')`` (3 hops, Figure 4);
* NN-SENS: ``rep(t) – E_dir(t) – C_dir(t) – C_opp(t') – E_opp(t') – rep(t')``
  (5 hops, Figure 6).

Edges are only created between good-tile pairs because that is exactly when
the paper can guarantee the hops exist in the base graph (for NN-SENS even
the within-tile hops rely on the neighbouring tile's occupancy cap, since the
guaranteeing disc lives in the two-tile rectangle).  This mirrors the open
edges of the coupled percolated mesh (Figure 2): the overlay restricted to
representatives is graph-isomorphic to the open subgraph of Z².

The resulting :class:`OverlayGraph` keeps the mapping back to the original
point indices and records each node's roles, which is what the degree bound
(P1), the stretch measurements (P2) and the base-graph edge validation need.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np

from repro.core.goodness import TileClassification
from repro.core.tiling import TileIndex
from repro.graphs.base import GeometricGraph

__all__ = ["OverlayRole", "OverlayGraph", "build_overlay"]


class OverlayRole(str, Enum):
    """Role of an overlay node within one tile."""

    REPRESENTATIVE = "representative"
    RELAY = "relay"


@dataclass
class OverlayGraph:
    """The SENS overlay graph together with its provenance.

    Attributes
    ----------
    graph:
        The overlay as a :class:`~repro.graphs.base.GeometricGraph`; node ``i``
        of this graph is the original point ``original_indices[i]``.
    original_indices:
        Global point indices of the overlay nodes.
    roles:
        ``roles[i]`` is the list of ``(tile, region, role)`` assignments of
        overlay node ``i`` (a point can serve several relay functions).
    tile_representatives:
        Mapping good tile → overlay node index of its representative.
    classification:
        The tile classification the overlay was built from.
    """

    graph: GeometricGraph
    original_indices: np.ndarray
    roles: Dict[int, List[Tuple[TileIndex, str, OverlayRole]]]
    tile_representatives: Dict[TileIndex, int]
    classification: TileClassification

    # -- views -------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    def node_for_original(self, original_index: int) -> int:
        """Overlay node index of a global point index (KeyError if absent)."""
        matches = np.nonzero(self.original_indices == original_index)[0]
        if matches.size == 0:
            raise KeyError(f"point {original_index} is not part of the overlay")
        return int(matches[0])

    def representative_nodes(self) -> np.ndarray:
        """Overlay node indices acting as a representative of some tile."""
        return np.asarray(sorted(set(self.tile_representatives.values())), dtype=np.int64)

    def relay_nodes(self) -> np.ndarray:
        """Overlay node indices acting purely as relays (never representative)."""
        reps = set(self.tile_representatives.values())
        return np.asarray(
            [i for i in range(self.n_nodes) if i not in reps], dtype=np.int64
        )

    def largest_component(self) -> "OverlayGraph":
        """Restrict the overlay to its largest connected component.

        The paper defines UDG-SENS / NN-SENS as the *largest* connected
        component of the representative/relay graph; smaller components
        correspond to nodes that should switch themselves off (§4.1).
        """
        from repro.graphs.metrics import largest_component_nodes

        keep = largest_component_nodes(self.graph)
        keep_set = set(int(i) for i in keep)
        remap = {int(old): new for new, old in enumerate(sorted(keep_set))}
        sub = self.graph.subgraph(sorted(keep_set), name=self.graph.name)
        new_roles = {
            remap[i]: list(assignments)
            for i, assignments in self.roles.items()
            if i in keep_set
        }
        new_reps = {
            tile: remap[node]
            for tile, node in self.tile_representatives.items()
            if node in keep_set
        }
        return OverlayGraph(
            graph=sub,
            original_indices=self.original_indices[sorted(keep_set)],
            roles=new_roles,
            tile_representatives=new_reps,
            classification=self.classification,
        )

    def verify_edges_in_base(self, base_graph: GeometricGraph) -> np.ndarray:
        """Check every overlay edge exists in the base graph.

        Returns a boolean array over overlay edges; the integration tests
        require it to be all-``True`` (the overlay must be a subgraph of
        UDG(2, λ) / NN(2, k), which is the whole point of the guarantees).
        """
        if self.graph.n_edges == 0:
            return np.zeros(0, dtype=bool)
        base_edges = {
            (int(a), int(b)) for a, b in base_graph.edges
        }
        result = np.zeros(self.graph.n_edges, dtype=bool)
        for i, (a, b) in enumerate(self.graph.edges):
            oa, ob = int(self.original_indices[a]), int(self.original_indices[b])
            key = (min(oa, ob), max(oa, ob))
            result[i] = key in base_edges
        return result


def build_overlay(
    points: np.ndarray, classification: TileClassification, name: str = "SENS"
) -> OverlayGraph:
    """Build the SENS overlay from a tile classification.

    Parameters
    ----------
    points:
        The full ``(n, 2)`` deployment coordinate array the classification was
        computed from (overlay nodes index into it).
    classification:
        The tile classification.
    name:
        Graph label (``"UDG-SENS"`` / ``"NN-SENS"`` from the high-level builders).

    The node set is every elected representative and relay of every good tile;
    edges follow the per-direction relay chains between adjacent good tiles
    (see the module docstring).  Duplicate roles held by a single point are
    collapsed into one node, and degenerate hops (both endpoints the same
    point) are skipped.
    """
    from repro.geometry.primitives import as_points

    tiling = classification.tiling
    spec = classification.spec
    points = as_points(points)

    # Collect overlay members and their roles.
    node_roles: Dict[int, List[Tuple[TileIndex, str, OverlayRole]]] = {}

    def add_role(original: int, tile: TileIndex, region: str, role: OverlayRole) -> None:
        node_roles.setdefault(int(original), []).append((tile, region, role))

    good_tiles = classification.good_tiles()
    for tile in good_tiles:
        record = classification.records[tile]
        add_role(record.representative, tile, spec.representative_region, OverlayRole.REPRESENTATIVE)
        for region, idx in record.relays.items():
            add_role(idx, tile, region, OverlayRole.RELAY)

    original_indices = np.asarray(sorted(node_roles.keys()), dtype=np.int64)
    local_of = {int(orig): i for i, orig in enumerate(original_indices)}

    # Wire the relay chains between adjacent good tiles.  Each unordered pair
    # of neighbouring tiles is processed once (via its "right"/"top" side).
    edges: set[Tuple[int, int]] = set()
    good_set = set(good_tiles)
    for tile in good_tiles:
        record = classification.records[tile]
        neighbours = tiling.neighbours(tile)
        for direction in ("right", "top"):
            neighbour = neighbours.get(direction)
            if neighbour is None or neighbour not in good_set:
                continue
            other = classification.records[neighbour]
            facing = spec.facing_direction(direction)
            path_originals: List[int] = [record.representative]
            path_originals.extend(record.relays[region] for region in spec.relay_chain(direction))
            path_originals.extend(
                other.relays[region] for region in reversed(spec.relay_chain(facing))
            )
            path_originals.append(other.representative)
            for a, b in zip(path_originals[:-1], path_originals[1:]):
                if a == b:
                    continue  # one point holds two consecutive roles
                la, lb = local_of[int(a)], local_of[int(b)]
                edges.add((min(la, lb), max(la, lb)))

    edge_array = (
        np.asarray(sorted(edges), dtype=np.int64) if edges else np.zeros((0, 2), dtype=np.int64)
    )
    graph = GeometricGraph(points[original_indices], edge_array, name=name)

    roles_local = {local_of[orig]: assignments for orig, assignments in node_roles.items()}
    tile_reps = {
        tile: local_of[int(classification.records[tile].representative)] for tile in good_tiles
    }
    return OverlayGraph(
        graph=graph,
        original_indices=original_indices,
        roles=roles_local,
        tile_representatives=tile_reps,
        classification=classification,
    )
