"""The :class:`SensNetwork` result object returned by the high-level builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.goodness import TileClassification
from repro.core.overlay import OverlayGraph
from repro.core.tiles_base import TileSpec
from repro.core.tiling import Tiling
from repro.graphs.base import GeometricGraph
from repro.percolation.lattice import LatticeConfiguration

__all__ = ["SensNetwork"]


@dataclass
class SensNetwork:
    """Everything produced by one SENS construction run.

    Attributes
    ----------
    model:
        ``"udg"`` or ``"nn"``.
    points:
        The full deployment (``(n, 2)`` coordinates).
    base_graph:
        The base interconnection structure — ``UDG(2, λ)`` or ``NN(2, k)`` on
        the deployment.
    tiling, spec, k:
        Tiling geometry, tile specification and (for NN) the parameter k.
    classification:
        Per-tile goodness and elected points.
    overlay:
        The full representative/relay overlay (possibly several components).
    sens:
        The largest connected component of the overlay — this is
        ``UDG-SENS(2, λ)`` / ``NN-SENS(2, k)`` as the paper defines it.
    """

    model: str
    points: np.ndarray
    base_graph: GeometricGraph
    tiling: Tiling
    spec: TileSpec
    k: int | None
    classification: TileClassification
    overlay: OverlayGraph
    sens: OverlayGraph

    # -- headline quantities --------------------------------------------------
    @property
    def n_deployed(self) -> int:
        """Number of deployed sensor nodes."""
        return len(self.points)

    @property
    def n_overlay_nodes(self) -> int:
        """Nodes participating in the overlay (any component)."""
        return self.overlay.n_nodes

    @property
    def n_sens_nodes(self) -> int:
        """Nodes in the SENS network (largest overlay component)."""
        return self.sens.n_nodes

    @property
    def fraction_good_tiles(self) -> float:
        return self.classification.fraction_good

    @property
    def participation_fraction(self) -> float:
        """Fraction of deployed nodes that ended up in the SENS network.

        The paper's guiding insight is that this can be far below 1 while the
        sensing function is still served; the sparsity experiments report it.
        """
        return self.n_sens_nodes / self.n_deployed if self.n_deployed else 0.0

    @property
    def unused_fraction(self) -> float:
        """Fraction of deployed nodes that can switch off (not in SENS)."""
        return 1.0 - self.participation_fraction

    def lattice(self, wrap: bool = False) -> LatticeConfiguration:
        """The coupled site-percolation configuration (open ⇔ good tile)."""
        return self.classification.to_lattice(wrap=wrap)

    def summary(self) -> Dict[str, float]:
        """Flat summary dictionary used by the experiment tables."""
        from repro.graphs.metrics import degree_statistics, largest_component_fraction

        base_deg = degree_statistics(self.base_graph)
        sens_deg = degree_statistics(self.sens.graph)
        return {
            "model": self.model,
            "n_deployed": float(self.n_deployed),
            "n_tiles": float(self.tiling.n_tiles),
            "fraction_good_tiles": self.fraction_good_tiles,
            "n_overlay_nodes": float(self.n_overlay_nodes),
            "n_sens_nodes": float(self.n_sens_nodes),
            "participation_fraction": self.participation_fraction,
            "base_mean_degree": base_deg["mean"],
            "base_max_degree": base_deg["max"],
            "sens_mean_degree": sens_deg["mean"],
            "sens_max_degree": sens_deg["max"],
            "base_largest_component_fraction": largest_component_fraction(self.base_graph),
            "base_edges": float(self.base_graph.n_edges),
            "sens_edges": float(self.sens.graph.n_edges),
        }
