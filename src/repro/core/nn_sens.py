"""High-level builder for ``NN-SENS(2, k)`` (paper §2.2).

:func:`build_nn_sens` mirrors :func:`repro.core.udg_sens.build_udg_sens` for
the k-nearest-neighbour model.  The NN model is scale-invariant in the point
density, so the intensity defaults to 1 and the tile parameter ``a`` of the
spec controls the geometry (the paper's Theorem 2.4 pairs k = 188 with
a = 0.893).
"""

from __future__ import annotations

import numpy as np

from repro.core.goodness import classify_tiles
from repro.core.overlay import build_overlay
from repro.core.result import SensNetwork
from repro.core.tiles_nn import NNTileSpec
from repro.core.tiling import Tiling
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect, as_points
from repro.graphs.knn import build_knn
from repro.rng import resolve_rng

__all__ = ["build_nn_sens"]


def build_nn_sens(
    points: np.ndarray | None = None,
    *,
    k: int,
    intensity: float = 1.0,
    window: Rect | None = None,
    spec: NNTileSpec | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    build_base_graph: bool = True,
) -> SensNetwork:
    """Build ``NN-SENS(2, k)``.

    Parameters
    ----------
    points:
        Explicit deployment coordinates; sampled from a Poisson process of the
        given ``intensity`` on ``window`` when omitted.
    k:
        The nearest-neighbour parameter (the paper's threshold is k ≥ 188).
    intensity:
        Poisson intensity used when sampling (the NN graph itself is
        scale-invariant; 1.0 matches the convention of the paper's numbers).
    window:
        Deployment window (required when sampling; inferred from the points
        otherwise).
    spec:
        Tile geometry; defaults to the paper's a = 0.893.
    rng, seed:
        Randomness control for the sampling step.
    build_base_graph:
        Set to ``False`` to skip the (comparatively expensive) k-NN base graph.

    Returns
    -------
    SensNetwork
        The assembled network; ``result.sens`` is NN-SENS.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    spec = spec or NNTileSpec.default()
    if points is None:
        if window is None:
            raise ValueError("either points or a window to sample on must be provided")
        rng = resolve_rng(rng, seed)
        points = poisson_points(window, intensity, rng)
    else:
        points = as_points(points)
        if window is None:
            if len(points) == 0:
                raise ValueError("cannot infer a window from an empty point set")
            window = Rect(
                float(points[:, 0].min()),
                float(points[:, 1].min()),
                float(points[:, 0].max()),
                float(points[:, 1].max()),
            )

    tiling = Tiling(window=window, tile_side=spec.tile_side)
    classification = classify_tiles(points, tiling, spec, k=k)
    overlay = build_overlay(points, classification, name="NN-SENS")
    sens = overlay.largest_component()

    if build_base_graph:
        base = build_knn(points, k=k, name=f"NN(k={k})")
    else:
        base = build_knn(np.zeros((0, 2)), k=k, name=f"NN(k={k}, skipped)")

    return SensNetwork(
        model="nn",
        points=points,
        base_graph=base,
        tiling=tiling,
        spec=spec,
        k=k,
        classification=classification,
        overlay=overlay,
        sens=sens,
    )
