"""Shared tile-specification interface.

A *tile spec* describes the internal geometry of one tile of the SENS
constructions in tile-local coordinates (the tile is centred at the origin):
which regions exist, which must be occupied for the tile to be *good*, where
the nominal anchor of each region sits (used for the deterministic
representative / relay selection that stands in for leader election), and how
large the relay structure is.

Two concrete specs exist:

* :class:`repro.core.tiles_udg.UDGTileSpec` — 5 regions (C0 and four relay
  regions), for ``UDG-SENS(2, λ)``.
* :class:`repro.core.tiles_nn.NNTileSpec` — 9 regions (C0, four C-discs, four
  E-regions), for ``NN-SENS(2, k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.geometry.predicates import RegionPredicate

__all__ = ["TileSpec", "SpecDiagnostics", "DIRECTIONS"]

#: Tile directions in the fixed order used throughout the package.
DIRECTIONS: Tuple[str, ...] = ("right", "left", "top", "bottom")


@dataclass(frozen=True)
class SpecDiagnostics:
    """Result of validating a tile specification.

    Attributes
    ----------
    feasible:
        ``True`` when every required region has positive (numerically
        detectable) area.  The paper-parameter UDG spec is *infeasible*
        (DESIGN.md §2) and this is where that shows up.
    region_areas:
        Numerically estimated area of each region.
    empty_regions:
        Names of required regions with (near-)zero area.
    guarantee_margins:
        Per-check slack of the connectivity guarantees (positive = satisfied).
        The exact set of checks is spec-dependent; see each spec's
        ``validate`` docstring.
    notes:
        Human-readable remarks (degeneracy warnings etc.).
    """

    feasible: bool
    region_areas: Dict[str, float]
    empty_regions: Tuple[str, ...]
    guarantee_margins: Dict[str, float]
    notes: Tuple[str, ...] = ()


class TileSpec:
    """Base class for tile specifications.

    Concrete specs must provide:

    ``tile_side``
        Side length of the square tile.
    ``region_names``
        Names of all regions, with the representative region first.
    ``required_regions``
        Regions that must contain at least one point for the tile to be good.
    ``region_predicates()``
        Mapping name → :class:`RegionPredicate` in tile-local coordinates.
    ``region_anchor(name)``
        Nominal centre of a region (tile-local), used to pick one point when a
        region holds several (the centralized stand-in for leader election:
        closest-to-anchor wins, ties broken by point index).
    ``max_points_per_tile(k)``
        Occupancy cap for goodness (``None`` = no cap; ``k // 2`` for NN-SENS).
    ``validate()``
        Return :class:`SpecDiagnostics`.
    """

    tile_side: float
    region_names: Sequence[str]
    required_regions: Sequence[str]

    #: Name of the representative region.
    representative_region: str = "C0"

    def region_predicates(self) -> Mapping[str, RegionPredicate]:
        raise NotImplementedError

    def region_anchor(self, name: str) -> np.ndarray:
        raise NotImplementedError

    def max_points_per_tile(self, k: int | None) -> int | None:
        """Occupancy cap used by the goodness test (``None`` disables the cap)."""
        return None

    def relay_chain(self, direction: str) -> Sequence[str]:
        """Ordered relay-region names from the representative towards ``direction``.

        The overlay builder wires ``rep – chain[0] – chain[1] – … – (facing
        chain of the neighbouring tile, reversed) – neighbour rep``.  For
        UDG-SENS the chain has length 1 (one relay per direction); for NN-SENS
        it has length 2 (E-region then C-disc).
        """
        raise NotImplementedError

    def facing_direction(self, direction: str) -> str:
        """Direction name of the neighbouring tile's facing relay chain."""
        from repro.core.tiling import OPPOSITE_DIRECTION

        return OPPOSITE_DIRECTION[direction]

    def validate(self, resolution: int = 300) -> SpecDiagnostics:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------------
    def _area_report(self, resolution: int) -> Dict[str, float]:
        """Grid-integrated area of every region (tile-local coordinates)."""
        from repro.geometry.integration import estimate_area_grid

        return {
            name: estimate_area_grid(pred, resolution=resolution).area
            for name, pred in self.region_predicates().items()
        }

    def classify_points(self, local_points: np.ndarray) -> Dict[str, np.ndarray]:
        """Region membership masks for points given in tile-local coordinates.

        Returns a mapping region name → boolean mask over ``local_points``.
        A point may belong to several regions (relay regions are allowed to
        overlap; the paper notes one point may fulfil two relay functions).
        """
        preds = self.region_predicates()
        return {name: pred.contains(local_points) for name, pred in preds.items()}
