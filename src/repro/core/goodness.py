"""Tile classification: good / bad tiles and point selection.

This module turns a point set plus a tile specification into the data the
overlay builder needs:

* which tiles are **good** (every required region occupied, occupancy cap
  respected — paper §2.1/§2.2),
* which point acts as the tile's **representative**, and
* which point acts as the **relay** for each relay region.

Point selection mirrors the paper's leader election deterministically: within
a region the point closest to the region's nominal anchor wins, ties broken
by point index.  (The distributed algorithm in :mod:`repro.distributed`
elects leaders by exchanging messages and is cross-checked against this
centralized rule.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.core.tiles_base import TileSpec
from repro.core.tiling import TileIndex, Tiling
from repro.geometry.primitives import as_points
from repro.percolation.lattice import LatticeConfiguration

__all__ = ["TileRecord", "TileClassification", "classify_tiles", "select_region_leader"]


def select_region_leader(
    points: np.ndarray, candidate_indices: np.ndarray, anchor: np.ndarray
) -> int:
    """Pick the region leader: closest to ``anchor``, ties broken by index.

    Parameters
    ----------
    points:
        Global ``(n, 2)`` coordinate array.
    candidate_indices:
        Global indices of the points lying in the region (non-empty).
    anchor:
        The region's nominal anchor in *global* coordinates.
    """
    cand = np.asarray(candidate_indices, dtype=np.int64)
    if cand.size == 0:
        raise ValueError("cannot elect a leader in an empty region")
    coords = as_points(points)[cand]
    d2 = np.sum((coords - np.asarray(anchor, dtype=np.float64)) ** 2, axis=1)
    # lexsort: primary key distance, secondary key the global index.
    order = np.lexsort((cand, d2))
    return int(cand[order[0]])


@dataclass(frozen=True)
class TileRecord:
    """Classification outcome for one tile.

    Attributes
    ----------
    tile:
        Tile index ``(col, row)``.
    point_indices:
        Global indices of the points inside the tile.
    region_members:
        Mapping region name → global indices of the points in that region.
    good:
        Whether the tile satisfies the goodness condition.
    failure_reason:
        Empty string for good tiles, otherwise ``"overcrowded"`` or
        ``"missing:<region>"`` (first missing region in spec order).
    representative:
        Global index of the elected representative point (``None`` for bad tiles).
    relays:
        Mapping relay-region name → global index of the elected relay
        (empty for bad tiles).
    """

    tile: TileIndex
    point_indices: np.ndarray
    region_members: Mapping[str, np.ndarray]
    good: bool
    failure_reason: str
    representative: int | None
    relays: Mapping[str, int]


@dataclass
class TileClassification:
    """Classification of every tile of a deployment.

    This object is the bridge between the continuum side (points, regions) and
    the discrete side (site percolation): :meth:`to_lattice` yields the
    coupled :class:`~repro.percolation.lattice.LatticeConfiguration` whose open
    sites are exactly the good tiles.
    """

    tiling: Tiling
    spec: TileSpec
    k: int | None
    records: Dict[TileIndex, TileRecord]

    # -- aggregate views --------------------------------------------------------
    @property
    def good_mask(self) -> np.ndarray:
        """Boolean ``(n_rows, n_cols)`` array of good tiles (row = y index)."""
        mask = np.zeros(self.tiling.shape, dtype=bool)
        for tile, record in self.records.items():
            if record.good:
                row, col = self.tiling.lattice_site(tile)
                mask[row, col] = True
        return mask

    @property
    def n_good(self) -> int:
        return sum(1 for r in self.records.values() if r.good)

    @property
    def fraction_good(self) -> float:
        """Fraction of in-grid tiles that are good — the empirical P(tile good)."""
        total = self.tiling.n_tiles
        return self.n_good / total if total else 0.0

    def good_tiles(self) -> list[TileIndex]:
        """Tile indices of all good tiles (row-major order)."""
        return [t for t in self.tiling.tiles() if self.records[t].good]

    def record(self, tile: TileIndex) -> TileRecord:
        return self.records[tile]

    def representative_of(self, tile: TileIndex) -> int | None:
        """Global point index of the representative of ``tile`` (None for bad tiles)."""
        return self.records[tile].representative

    def failure_histogram(self) -> Dict[str, int]:
        """Count of bad tiles by failure reason (useful in threshold diagnostics)."""
        hist: Dict[str, int] = {}
        for record in self.records.values():
            if not record.good:
                hist[record.failure_reason] = hist.get(record.failure_reason, 0) + 1
        return hist

    def to_lattice(self, wrap: bool = False) -> LatticeConfiguration:
        """The coupled site-percolation configuration (open site ⇔ good tile)."""
        return LatticeConfiguration(self.good_mask, wrap=wrap)


def classify_tiles(
    points: np.ndarray,
    tiling: Tiling,
    spec: TileSpec,
    k: int | None = None,
) -> TileClassification:
    """Classify every tile of ``tiling`` for the given deployment.

    Parameters
    ----------
    points:
        ``(n, 2)`` global point coordinates.
    tiling:
        The square tiling of the deployment window; its ``tile_side`` must
        equal ``spec.tile_side`` (a mismatch is almost always a bug, so it is
        rejected).
    spec:
        Tile geometry (:class:`~repro.core.tiles_udg.UDGTileSpec` or
        :class:`~repro.core.tiles_nn.NNTileSpec`).
    k:
        The NN parameter k (required by NN specs for the occupancy cap,
        ignored by UDG specs).
    """
    pts = as_points(points)
    if abs(tiling.tile_side - spec.tile_side) > 1e-9:
        raise ValueError(
            f"tiling tile_side {tiling.tile_side} does not match spec tile_side {spec.tile_side}"
        )
    cap = spec.max_points_per_tile(k)
    groups = tiling.group_points_by_tile(pts)
    required = tuple(spec.required_regions)
    relay_regions = tuple(name for name in spec.region_names if name != spec.representative_region)

    records: Dict[TileIndex, TileRecord] = {}
    for tile in tiling.tiles():
        member_idx = groups.get(tile, np.zeros(0, dtype=np.int64))
        center = tiling.tile_center(tile)
        local = pts[member_idx] - center if member_idx.size else np.zeros((0, 2))
        masks = spec.classify_points(local) if member_idx.size else {
            name: np.zeros(0, dtype=bool) for name in spec.region_names
        }
        region_members = {name: member_idx[mask] for name, mask in masks.items()}

        failure = ""
        if cap is not None and member_idx.size > cap:
            failure = "overcrowded"
        else:
            for name in required:
                if region_members.get(name, np.zeros(0)).size == 0:
                    failure = f"missing:{name}"
                    break

        if failure:
            records[tile] = TileRecord(
                tile=tile,
                point_indices=member_idx,
                region_members=region_members,
                good=False,
                failure_reason=failure,
                representative=None,
                relays={},
            )
            continue

        rep = select_region_leader(
            pts,
            region_members[spec.representative_region],
            center + spec.region_anchor(spec.representative_region),
        )
        relays = {
            name: select_region_leader(pts, region_members[name], center + spec.region_anchor(name))
            for name in relay_regions
        }
        records[tile] = TileRecord(
            tile=tile,
            point_indices=member_idx,
            region_members=region_members,
            good=True,
            failure_reason="",
            representative=rep,
            relays=relays,
        )
    return TileClassification(tiling=tiling, spec=spec, k=k, records=records)
