"""Tile geometry for ``NN-SENS(2, k)`` (paper §2.2, Figure 5).

A tile is a square of side ``10·a`` centred, in tile-local coordinates, at
the origin (corners at ``(±5a, ±5a)``).  Its nine regions are

* ``C0`` — representative region, a disc of radius ``a`` at the centre;
* ``C_right, C_left, C_top, C_bottom`` — discs of radius ``a`` centred at
  ``(±4a, 0)`` and ``(0, ±4a)``;
* ``E_right, E_left, E_top, E_bottom`` — the paper's "locus of points
  contained in every disc that is the largest disc centred at a point of
  C0 ∪ C_dir lying wholly within the two tiles t and t_dir".

A tile is *good* when it contains at most ``k/2`` points **and** all nine
regions are occupied.  The k-nearest-neighbour connectivity argument
(Claim 2.3) then guarantees the 5-hop path
``rep(t) – E_dir(t) – C_dir(t) – C_opp(t') – E_opp(t') – rep(t')`` between the
representatives of neighbouring good tiles, because every hop is realised by
a disc that stays inside ``t ∪ t'`` and therefore contains at most ``k``
points.

The E-regions are evaluated with
:class:`repro.geometry.predicates.DiscIntersectionPredicate`: the universal
quantifier over anchor points is approximated by a dense sample of anchors
(boundary rings plus interior rings of C0 and C_dir), each with its own
radius ``dist(anchor, ∂(t ∪ t_dir))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.core.tiles_base import DIRECTIONS, SpecDiagnostics, TileSpec
from repro.geometry.predicates import (
    DiscIntersectionPredicate,
    DiscPredicate,
    IntersectionPredicate,
    RectPredicate,
    RegionPredicate,
)
from repro.geometry.primitives import Disc, Rect, pairwise_distances, rect_union

__all__ = ["NNTileSpec"]

_DIRECTION_VECTORS: Dict[str, np.ndarray] = {
    "right": np.array([1.0, 0.0]),
    "left": np.array([-1.0, 0.0]),
    "top": np.array([0.0, 1.0]),
    "bottom": np.array([0.0, -1.0]),
}


@dataclass(frozen=True)
class NNTileSpec(TileSpec):
    """Geometry of one NN-SENS tile (tile-local coordinates, centre at origin).

    Parameters
    ----------
    a:
        The disc radius parameter; the tile side is ``10·a``.  The paper's
        Theorem 2.4 uses ``a = 0.893`` together with ``k = 188``.
    anchor_samples:
        Number of boundary samples per anchor disc used to approximate the
        universal quantifier in the E-region definition.  Higher is more
        faithful but slower; 48 is plenty for the region shapes involved.
    occupancy_fraction:
        A tile is good only if it contains at most ``occupancy_fraction · k``
        points (the paper uses 1/2).
    """

    a: float = 0.893
    anchor_samples: int = 48
    occupancy_fraction: float = 0.5

    representative_region: str = "C0"

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ValueError("a must be positive")
        if self.anchor_samples < 8:
            raise ValueError("anchor_samples must be at least 8")
        if not 0 < self.occupancy_fraction <= 1:
            raise ValueError("occupancy_fraction must lie in (0, 1]")

    @classmethod
    def paper(cls) -> "NNTileSpec":
        """The parameters of Theorem 2.4 (a = 0.893)."""
        return cls(a=0.893)

    @classmethod
    def default(cls) -> "NNTileSpec":
        """Default spec — identical to the paper's (the NN geometry is sound)."""
        return cls.paper()

    # -- TileSpec interface ----------------------------------------------------
    @property
    def tile_side(self) -> float:  # type: ignore[override]
        return 10.0 * self.a

    @property
    def region_names(self) -> Sequence[str]:  # type: ignore[override]
        return (
            "C0",
            "C_right",
            "C_left",
            "C_top",
            "C_bottom",
            "E_right",
            "E_left",
            "E_top",
            "E_bottom",
        )

    @property
    def required_regions(self) -> Sequence[str]:  # type: ignore[override]
        return self.region_names

    def max_points_per_tile(self, k: int | None) -> int | None:
        """The NN goodness cap: at most ``occupancy_fraction · k`` points per tile."""
        if k is None:
            raise ValueError("NN-SENS goodness requires the parameter k")
        return int(np.floor(self.occupancy_fraction * k))

    def tile_rect(self) -> Rect:
        return Rect.centered((0.0, 0.0), self.tile_side, self.tile_side)

    def c_disc(self, name: str) -> Disc:
        """The C-disc for ``name`` in {"C0", "C_right", ...} (tile-local)."""
        if name == "C0":
            return Disc(0.0, 0.0, self.a)
        direction = name.removeprefix("C_")
        vec = _DIRECTION_VECTORS[direction] * (4.0 * self.a)
        return Disc(float(vec[0]), float(vec[1]), self.a)

    def two_tile_rect(self, direction: str) -> Rect:
        """Bounding rectangle of this tile together with its ``direction`` neighbour."""
        own = self.tile_rect()
        vec = _DIRECTION_VECTORS[direction] * self.tile_side
        return rect_union(own, own.translate(float(vec[0]), float(vec[1])))

    def _anchor_set(self, direction: str) -> tuple[np.ndarray, np.ndarray]:
        """Anchor points (C0 ∪ C_dir samples) and their per-anchor radii.

        The radius attached to an anchor ``c`` is the distance from ``c`` to
        the boundary of the two-tile rectangle — the radius of "the largest
        circle centred at c that lies wholly within the two tiles".
        """
        pair_rect = self.two_tile_rect(direction)
        discs = [self.c_disc("C0"), self.c_disc(f"C_{direction}")]
        anchors = []
        for disc in discs:
            anchors.append(disc.boundary_points(self.anchor_samples))
            # Interior rings: the binding anchor need not be extremal because
            # the per-anchor radius varies with position.
            for frac in (0.0, 0.5):
                ring = Disc(disc.cx, disc.cy, disc.radius * frac)
                # repro: allow[REPRO201] literal-vs-literal comparison
                n = 1 if frac == 0.0 else self.anchor_samples // 2
                anchors.append(ring.boundary_points(max(n, 1)))
        anchor_pts = np.vstack(anchors)
        radii = np.minimum.reduce(
            [
                anchor_pts[:, 0] - pair_rect.xmin,
                pair_rect.xmax - anchor_pts[:, 0],
                anchor_pts[:, 1] - pair_rect.ymin,
                pair_rect.ymax - anchor_pts[:, 1],
            ]
        )
        return anchor_pts, radii

    def e_region(self, direction: str) -> RegionPredicate:
        """The relay region ``E_direction`` (tile-local coordinates)."""
        anchors, radii = self._anchor_set(direction)
        # The region necessarily lies between C0 and C_dir; bound it by the
        # intersection of the per-anchor disc bounding boxes clipped to the tile.
        lo = np.max(anchors - radii[:, None], axis=0)
        hi = np.min(anchors + radii[:, None], axis=0)
        tile = self.tile_rect()
        bounds = Rect(
            max(lo[0], tile.xmin),
            max(lo[1], tile.ymin),
            min(hi[0], tile.xmax),
            min(hi[1], tile.ymax),
        ) if (hi[0] > lo[0] and hi[1] > lo[1]) else Rect(0.0, 0.0, 0.0, 0.0)
        core = DiscIntersectionPredicate(anchors, radii, bounds)
        return IntersectionPredicate([core, RectPredicate(tile)])

    def region_predicates(self) -> Mapping[str, RegionPredicate]:
        preds: Dict[str, RegionPredicate] = {}
        for name in ("C0", "C_right", "C_left", "C_top", "C_bottom"):
            preds[name] = DiscPredicate(self.c_disc(name))
        for direction in DIRECTIONS:
            preds[f"E_{direction}"] = self.e_region(direction)
        return preds

    def region_anchor(self, name: str) -> np.ndarray:
        if name == "C0":
            return np.zeros(2)
        if name.startswith("C_"):
            disc = self.c_disc(name)
            return disc.center
        direction = name.removeprefix("E_")
        if direction not in _DIRECTION_VECTORS:
            raise KeyError(f"unknown region {name!r}")
        return _DIRECTION_VECTORS[direction] * (2.0 * self.a)

    def relay_chain(self, direction: str) -> Sequence[str]:
        """NN-SENS relays per direction: first the E-region, then the C-disc."""
        return (f"E_{direction}", f"C_{direction}")

    # -- validation --------------------------------------------------------------
    def validate(self, resolution: int = 200) -> SpecDiagnostics:
        """Check feasibility and the Claim 2.3 disc-containment guarantees.

        Guarantee margins (all must be ≥ 0):

        ``e_within_rep_disc``
            For sampled rep ∈ C0 and relay ∈ E_right: the disc centred at rep
            through the relay stays inside the two-tile rectangle.
        ``c_to_neighbour_c``
            For sampled c ∈ C_right and target ∈ C_left of the right
            neighbour: the disc centred at c through the target stays inside
            the two-tile rectangle (the paper's "must contain the left disc of
            its neighbouring tile" step).
        ``e_between_c0_and_cdir``
            E_right actually lies between C0 and C_right (sanity of the anchor
            approximation): distance of every E_right sample to both disc
            centres is below the tile side.
        """
        areas = self._area_report(resolution)
        empty = tuple(name for name in self.required_regions if areas[name] <= 1e-9)
        notes: list[str] = []
        margins: Dict[str, float] = {}

        pair_rect = self.two_tile_rect("right")
        preds = self.region_predicates()
        tile = self.tile_rect()
        grid = tile.grid(resolution)
        c0_pts = grid[preds["C0"].contains(grid)]
        er_pts = grid[preds["E_right"].contains(grid)]
        cr_pts = grid[preds["C_right"].contains(grid)]

        def containment_margin(centers: np.ndarray, targets: np.ndarray) -> float:
            """min over (center, target) of dist(center, ∂pair_rect) − d(center, target)."""
            if len(centers) == 0 or len(targets) == 0:
                return float("-inf")
            boundary = np.minimum.reduce(
                [
                    centers[:, 0] - pair_rect.xmin,
                    pair_rect.xmax - centers[:, 0],
                    centers[:, 1] - pair_rect.ymin,
                    pair_rect.ymax - centers[:, 1],
                ]
            )
            dists = pairwise_distances(centers, targets)
            return float(np.min(boundary[:, None] - dists))

        margins["e_within_rep_disc"] = containment_margin(c0_pts, er_pts)
        # The left C-disc of the right-hand neighbour, in this tile's local frame.
        neighbour_cl = self.c_disc("C_left").translate(self.tile_side, 0.0)
        cl_neighbour_pts = np.vstack([neighbour_cl.boundary_points(64), neighbour_cl.center[None, :]])
        margins["c_to_neighbour_c"] = containment_margin(cr_pts, cl_neighbour_pts)
        if len(er_pts):
            d0 = pairwise_distances(er_pts, np.zeros((1, 2))).max()
            d4 = pairwise_distances(er_pts, np.array([[4.0 * self.a, 0.0]])).max()
            margins["e_between_c0_and_cdir"] = self.tile_side - max(float(d0), float(d4))
        else:
            margins["e_between_c0_and_cdir"] = float("-inf")
            notes.append("E_right came out empty; increase anchor_samples or check a.")

        feasible = not empty and all(v >= -1e-9 for v in margins.values())
        return SpecDiagnostics(
            feasible=feasible,
            region_areas=areas,
            empty_regions=empty,
            guarantee_margins=margins,
            notes=tuple(notes),
        )

    # -- analytic helpers ---------------------------------------------------------
    def region_area_estimates(self, resolution: int = 250) -> Dict[str, float]:
        """Grid-integrated areas of all regions (tile-local coordinates)."""
        return self._area_report(resolution)

    def analytic_good_probability(
        self, k: int, intensity: float = 1.0, resolution: int = 250
    ) -> float:
        """Independence-based estimate of P(tile good) for parameter ``k``.

        Combines the occupancy cap (Poisson CDF at ``k·occupancy_fraction``
        with mean ``λ·(10a)²``) with per-region occupancy probabilities
        ``1 − exp(−λ·area)``.  The regions C0, C_left/right/top/bottom are
        pairwise disjoint; the E-regions may overlap the C-discs' complements
        only, so the product is a reasonable approximation — the Monte-Carlo
        estimator remains the reference.

        Note that for the NN model the intensity is a free scaling choice (the
        graph is scale-invariant); the default ``intensity = 1`` matches the
        convention used in the paper's numbers.
        """
        from scipy import stats

        if k < 1:
            raise ValueError("k must be positive")
        mean_count = intensity * self.tile_side**2
        cap = self.max_points_per_tile(k)
        prob = float(stats.poisson.cdf(cap, mean_count))
        for name, area in self.region_area_estimates(resolution).items():
            prob *= 1.0 - np.exp(-intensity * area)
        return float(prob)
