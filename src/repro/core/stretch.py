"""Distance-stretch measurement (property P2, Claims 2.1/2.3, Theorem 3.2).

The paper's stretch statement compares the graph distance *inside the SENS
overlay* with the Euclidean distance between two points (the Euclidean
distance lower-bounds the base-graph distance for both UDG and NN, so a
constant Euclidean stretch implies a constant stretch against the base
graph).  Theorem 3.2 additionally says that the probability of exceeding a
fixed stretch α decays exponentially in the lattice distance between the
tiles — inherited from the Antal–Pisztora chemical-distance bound through the
coupling.

:func:`measure_stretch` samples pairs of tile representatives inside the SENS
component and reports both the Euclidean-weighted and the hop-count stretch,
plus the tail behaviour as a function of distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.result import SensNetwork
from repro.graphs.metrics import shortest_path_euclidean, shortest_path_hops
from repro.rng import resolve_rng

__all__ = ["StretchSamplePair", "StretchReport", "measure_stretch"]


@dataclass(frozen=True)
class StretchSamplePair:
    """One sampled representative pair.

    Attributes
    ----------
    source_tile, target_tile: tile indices of the two representatives.
    euclidean: Euclidean distance between the two representative points.
    overlay_distance: Euclidean-weighted shortest-path distance in SENS.
    overlay_hops: hop count of the shortest path in SENS.
    stretch: ``overlay_distance / euclidean``.
    lattice_distance: L¹ distance between the two tiles (the D(x, y) of
        Theorem 3.2).
    """

    source_tile: tuple[int, int]
    target_tile: tuple[int, int]
    euclidean: float
    overlay_distance: float
    overlay_hops: float
    stretch: float
    lattice_distance: int


@dataclass
class StretchReport:
    """Aggregate view of the sampled stretch values."""

    samples: list[StretchSamplePair]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("stretch report needs at least one sample")

    @property
    def stretches(self) -> np.ndarray:
        return np.asarray([s.stretch for s in self.samples])

    @property
    def lattice_distances(self) -> np.ndarray:
        return np.asarray([s.lattice_distance for s in self.samples])

    @property
    def max_stretch(self) -> float:
        return float(self.stretches.max())

    @property
    def mean_stretch(self) -> float:
        return float(self.stretches.mean())

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.stretches, q))

    def tail_probability(self, alpha: float) -> float:
        """Empirical P(stretch > α) over all samples."""
        return float(np.mean(self.stretches > alpha))

    def tail_by_distance(self, alpha: float, bins: Sequence[float]) -> list[dict[str, float]]:
        """P(stretch > α) per lattice-distance bin (the Theorem 3.2 decay check)."""
        rows = []
        dists = self.lattice_distances
        stretches = self.stretches
        edges = np.asarray(list(bins), dtype=float)
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (dists >= lo) & (dists < hi)
            if not mask.any():
                continue
            rows.append(
                {
                    "distance_lo": float(lo),
                    "distance_hi": float(hi),
                    "n_pairs": int(mask.sum()),
                    "tail_probability": float(np.mean(stretches[mask] > alpha)),
                    "mean_stretch": float(stretches[mask].mean()),
                    "max_stretch": float(stretches[mask].max()),
                }
            )
        return rows


def measure_stretch(
    network: SensNetwork,
    n_pairs: int = 200,
    rng: np.random.Generator | None = None,
    min_euclidean: float | None = None,
) -> StretchReport:
    """Sample representative pairs in the SENS component and measure stretch.

    Parameters
    ----------
    network:
        A built :class:`~repro.core.result.SensNetwork`.
    n_pairs:
        Number of representative pairs to sample (sources are reused across a
        few targets so one Dijkstra sweep serves several pairs).
    rng:
        Random generator.
    min_euclidean:
        Discard pairs closer than this (defaults to one tile side — stretch at
        sub-tile distances is dominated by the relay detour and is not what
        Theorem 3.2 talks about).

    Raises
    ------
    ValueError
        If the SENS component contains fewer than two tile representatives.
    """
    if n_pairs < 1:
        raise ValueError("n_pairs must be positive")
    rng = resolve_rng(rng)
    sens = network.sens
    min_euclidean = network.tiling.tile_side if min_euclidean is None else min_euclidean

    rep_items = sorted(sens.tile_representatives.items())
    if len(rep_items) < 2:
        raise ValueError("the SENS component has fewer than two tile representatives")
    tiles = [t for t, _ in rep_items]
    nodes = np.asarray([n for _, n in rep_items], dtype=np.int64)
    positions = sens.graph.points

    n_sources = max(1, min(len(rep_items), int(np.ceil(n_pairs / 4))))
    source_choices = rng.choice(len(rep_items), size=n_sources, replace=False)
    dist_matrix = shortest_path_euclidean(sens.graph, sources=nodes[source_choices])
    hop_matrix = shortest_path_hops(sens.graph, sources=nodes[source_choices])

    samples: list[StretchSamplePair] = []
    budget = n_pairs
    for row, src_idx in enumerate(source_choices):
        if budget <= 0:
            break
        targets = rng.choice(len(rep_items), size=min(4, budget), replace=False)
        for tgt_idx in targets:
            if tgt_idx == src_idx:
                continue
            src_node, tgt_node = nodes[src_idx], nodes[tgt_idx]
            euclid = float(np.linalg.norm(positions[src_node] - positions[tgt_node]))
            if euclid < min_euclidean:
                continue
            overlay_dist = float(dist_matrix[row, tgt_node])
            overlay_hops = float(hop_matrix[row, tgt_node])
            if not np.isfinite(overlay_dist):
                # Both endpoints are in the largest component by construction,
                # so this should not happen; guard anyway.
                continue
            src_tile, tgt_tile = tiles[src_idx], tiles[tgt_idx]
            lattice_dist = abs(src_tile[0] - tgt_tile[0]) + abs(src_tile[1] - tgt_tile[1])
            samples.append(
                StretchSamplePair(
                    source_tile=src_tile,
                    target_tile=tgt_tile,
                    euclidean=euclid,
                    overlay_distance=overlay_dist,
                    overlay_hops=overlay_hops,
                    stretch=overlay_dist / euclid,
                    lattice_distance=int(lattice_dist),
                )
            )
            budget -= 1
    if not samples:
        raise ValueError(
            "no valid representative pairs were sampled; "
            "increase n_pairs or lower min_euclidean"
        )
    return StretchReport(samples)
