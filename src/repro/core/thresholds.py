"""Threshold calculators behind Theorems 2.2 and 2.4.

The paper's argument is: if the probability that a tile is *good* exceeds the
site-percolation threshold p_c ≈ 0.5927, the coupled site process is
supercritical, hence the SENS overlay contains an infinite component; the
smallest parameter value (λ for UDG, k for NN) achieving this is the
construction's threshold (λ_s / k_s) and doubles as an upper bound on the
continuum-percolation critical value.

This module estimates P(tile good) as a function of the parameter by
Monte-Carlo simulation of single tiles (the goodness event only involves
points inside the tile, so single-tile sampling is exact), backs it up with
the independence-based analytic approximation from the tile specs, and
searches for the threshold crossing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.tiles_base import TileSpec
from repro.core.tiles_nn import NNTileSpec
from repro.core.tiles_udg import UDGTileSpec
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.percolation import SITE_PERCOLATION_THRESHOLD
from repro.rng import resolve_rng

__all__ = [
    "GoodnessEstimate",
    "GoodnessCurve",
    "estimate_goodness_probability",
    "goodness_curve_udg",
    "goodness_curve_nn",
    "find_udg_lambda_threshold",
    "find_nn_k_threshold",
    "optimise_nn_tile_parameter",
]


@dataclass(frozen=True)
class GoodnessEstimate:
    """Monte-Carlo estimate of P(tile good) at one parameter setting.

    Attributes
    ----------
    parameter:
        The swept parameter value (λ for UDG, k for NN).
    probability:
        Estimated probability that a single tile is good.
    standard_error:
        Binomial standard error of the estimate.
    trials:
        Number of simulated tiles.
    failure_histogram:
        Counts of the reasons bad tiles failed (``"overcrowded"`` /
        ``"missing:<region>"``) — the diagnostic that explains *which*
        constraint binds at a given parameter value.
    """

    parameter: float
    probability: float
    standard_error: float
    trials: int
    failure_histogram: dict[str, int]


@dataclass(frozen=True)
class GoodnessCurve:
    """P(tile good) as a function of a swept parameter."""

    parameter_name: str
    estimates: tuple[GoodnessEstimate, ...]

    @property
    def parameters(self) -> np.ndarray:
        return np.asarray([e.parameter for e in self.estimates])

    @property
    def probabilities(self) -> np.ndarray:
        return np.asarray([e.probability for e in self.estimates])

    def threshold_crossing(self, target: float = SITE_PERCOLATION_THRESHOLD) -> float | None:
        """Smallest swept parameter whose goodness probability exceeds ``target``.

        Returns ``None`` when the curve never crosses.  (No interpolation: the
        paper reports the smallest *tested* value exceeding the threshold,
        which is what we mirror.)
        """
        for est in sorted(self.estimates, key=lambda e: e.parameter):
            if est.probability > target:
                return est.parameter
        return None

    def as_rows(self) -> list[dict[str, float]]:
        """Table rows (one per parameter value) for the benchmark printers."""
        return [
            {
                self.parameter_name: e.parameter,
                "p_good": e.probability,
                "stderr": e.standard_error,
                "trials": e.trials,
            }
            for e in self.estimates
        ]


def _single_tile_good(
    spec: TileSpec, intensity: float, k: int | None, rng: np.random.Generator
) -> tuple[bool, str]:
    """Simulate one tile and return (good?, failure reason)."""
    half = spec.tile_side / 2.0
    tile_rect = Rect(-half, -half, half, half)
    pts = poisson_points(tile_rect, intensity, rng)
    cap = spec.max_points_per_tile(k)
    if cap is not None and len(pts) > cap:
        return False, "overcrowded"
    if len(pts) == 0:
        return False, f"missing:{spec.required_regions[0]}"
    masks = spec.classify_points(pts)
    for name in spec.required_regions:
        if not masks[name].any():
            return False, f"missing:{name}"
    return True, ""


def estimate_goodness_probability(
    spec: TileSpec,
    intensity: float,
    k: int | None = None,
    trials: int = 400,
    rng: np.random.Generator | None = None,
    parameter: float | None = None,
) -> GoodnessEstimate:
    """Monte-Carlo estimate of P(tile good) for one parameter setting.

    Parameters
    ----------
    spec:
        Tile specification.
    intensity:
        Poisson intensity of the deployment (λ).
    k:
        NN parameter (ignored by UDG specs).
    trials:
        Number of independent tiles to simulate.
    rng:
        Random generator.
    parameter:
        The value recorded as the swept parameter in the result (defaults to
        ``intensity`` for UDG-style sweeps and must be set to ``k`` by NN
        sweeps).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = resolve_rng(rng)
    hits = 0
    failures: dict[str, int] = {}
    for _ in range(trials):
        good, reason = _single_tile_good(spec, intensity, k, rng)
        if good:
            hits += 1
        else:
            failures[reason] = failures.get(reason, 0) + 1
    p = hits / trials
    se = float(np.sqrt(max(p * (1 - p), 0.0) / trials))
    return GoodnessEstimate(
        parameter=float(parameter if parameter is not None else intensity),
        probability=p,
        standard_error=se,
        trials=trials,
        failure_histogram=failures,
    )


def goodness_curve_udg(
    spec: UDGTileSpec,
    intensities: Sequence[float],
    trials: int = 400,
    rng: np.random.Generator | None = None,
) -> GoodnessCurve:
    """P(tile good) vs λ for a UDG tile spec."""
    rng = resolve_rng(rng)
    estimates = tuple(
        estimate_goodness_probability(spec, float(lam), k=None, trials=trials, rng=rng)
        for lam in intensities
    )
    return GoodnessCurve("lambda", estimates)


def goodness_curve_nn(
    spec_factory: Callable[[int], NNTileSpec] | NNTileSpec,
    k_values: Sequence[int],
    intensity: float = 1.0,
    trials: int = 200,
    rng: np.random.Generator | None = None,
) -> GoodnessCurve:
    """P(tile good) vs k for NN tile specs.

    ``spec_factory`` may be a fixed :class:`NNTileSpec` (same geometry for
    every k, as in the paper's single (k, a) pair) or a callable ``k → spec``
    so that the tile parameter a can be co-optimised with k
    (:func:`optimise_nn_tile_parameter`).
    """
    rng = resolve_rng(rng)
    estimates = []
    for k in k_values:
        spec = spec_factory(int(k)) if callable(spec_factory) else spec_factory
        estimates.append(
            estimate_goodness_probability(
                spec, intensity, k=int(k), trials=trials, rng=rng, parameter=float(k)
            )
        )
    return GoodnessCurve("k", tuple(estimates))


def find_udg_lambda_threshold(
    spec: UDGTileSpec | None = None,
    intensities: Sequence[float] | None = None,
    trials: int = 400,
    target: float = SITE_PERCOLATION_THRESHOLD,
    rng: np.random.Generator | None = None,
) -> tuple[float | None, GoodnessCurve]:
    """λ_s: the smallest probed λ whose tile-goodness probability exceeds ``target``.

    Returns ``(lambda_s, curve)``; ``lambda_s`` is ``None`` when no probed
    value crosses (e.g. for the degenerate paper-parameter spec, whose
    goodness probability is identically zero).
    """
    spec = spec or UDGTileSpec.default()
    if intensities is None:
        intensities = np.concatenate([np.arange(1.0, 10.0, 1.0), np.arange(10.0, 42.0, 2.0)])
    curve = goodness_curve_udg(spec, intensities, trials=trials, rng=rng)
    return curve.threshold_crossing(target), curve


def find_nn_k_threshold(
    spec: NNTileSpec | None = None,
    k_values: Sequence[int] | None = None,
    intensity: float = 1.0,
    trials: int = 200,
    target: float = SITE_PERCOLATION_THRESHOLD,
    rng: np.random.Generator | None = None,
    optimise_a: bool = False,
) -> tuple[float | None, GoodnessCurve]:
    """k_s: the smallest probed k whose tile-goodness probability exceeds ``target``.

    With ``optimise_a=True`` the tile parameter a is re-optimised for every k
    (a coarse grid search), which is how the paper arrives at the pairing
    k = 188, a = 0.893.
    """
    if k_values is None:
        k_values = list(range(120, 261, 10))
    if optimise_a:
        factory: Callable[[int], NNTileSpec] = lambda k: optimise_nn_tile_parameter(
            k, intensity=intensity, trials=max(trials // 4, 40), rng=rng
        )
        curve = goodness_curve_nn(factory, k_values, intensity=intensity, trials=trials, rng=rng)
    else:
        spec = spec or NNTileSpec.default()
        curve = goodness_curve_nn(spec, k_values, intensity=intensity, trials=trials, rng=rng)
    return curve.threshold_crossing(target), curve


def optimise_nn_tile_parameter(
    k: int,
    a_grid: Sequence[float] | None = None,
    intensity: float = 1.0,
    trials: int = 60,
    rng: np.random.Generator | None = None,
) -> NNTileSpec:
    """Pick the tile parameter a maximising P(tile good) for a given k.

    The trade-off: a larger a makes each of the nine regions easier to occupy
    but pushes the expected tile occupancy ``λ·(10a)²`` against the cap
    ``k/2``.  A coarse grid search is all the paper's procedure needs.
    """
    rng = resolve_rng(rng)
    if a_grid is None:
        # Centre the grid on the occupancy-balanced value a* where the expected
        # count equals half the cap: λ·(10a)² = k/4  ⇒  a* = sqrt(k)/20 for λ=1.
        a_star = float(np.sqrt(k / intensity) / 20.0)
        a_grid = np.linspace(max(0.3 * a_star, 0.05), 1.4 * a_star, 8)
    best_spec = None
    best_p = -1.0
    for a in a_grid:
        spec = NNTileSpec(a=float(a))
        est = estimate_goodness_probability(spec, intensity, k=k, trials=trials, rng=rng, parameter=k)
        if est.probability > best_p:
            best_p = est.probability
            best_spec = spec
    assert best_spec is not None
    return best_spec
