"""Square tiling of the plane and the tile ↔ Z² bijection.

The constructions view R² as a union of square tiles of side ``tile_side``.
A :class:`Tiling` restricts that to a finite window: only tiles fully
contained in the window are *interior* tiles and take part in the coupling
(the bijection φ of the paper maps tile (col, row) to the lattice site
(row, col), so the good-tile indicator becomes the open-site mask of a
:class:`repro.percolation.lattice.LatticeConfiguration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.geometry.primitives import Rect, as_points

__all__ = ["TileIndex", "Tiling"]

#: Integer (col, row) tile coordinates.
TileIndex = Tuple[int, int]

#: Offsets to the four neighbouring tiles, keyed by direction name.
DIRECTION_OFFSETS: dict[str, Tuple[int, int]] = {
    "right": (1, 0),
    "left": (-1, 0),
    "top": (0, 1),
    "bottom": (0, -1),
}

#: The direction seen from the other side (right neighbour's facing region is its "left").
OPPOSITE_DIRECTION: dict[str, str] = {
    "right": "left",
    "left": "right",
    "top": "bottom",
    "bottom": "top",
}


@dataclass(frozen=True)
class Tiling:
    """Axis-aligned square tiling of a rectangular window.

    Attributes
    ----------
    window:
        The deployment window being tiled.
    tile_side:
        Side length of every tile (``a_u = 4/3`` for UDG-SENS, ``10·a_k`` for
        NN-SENS in the paper's notation).
    origin:
        Lower-left corner of tile (0, 0).  Defaults to the window's lower-left
        corner.
    """

    window: Rect
    tile_side: float
    origin: Tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.tile_side <= 0:
            raise ValueError("tile_side must be positive")
        if self.origin is None:
            object.__setattr__(self, "origin", (self.window.xmin, self.window.ymin))

    # -- grid dimensions ------------------------------------------------------
    @property
    def n_cols(self) -> int:
        """Number of whole tiles that fit across the window horizontally."""
        return int(np.floor((self.window.xmax - self.origin[0]) / self.tile_side + 1e-9))

    @property
    def n_rows(self) -> int:
        """Number of whole tiles that fit across the window vertically."""
        return int(np.floor((self.window.ymax - self.origin[1]) / self.tile_side + 1e-9))

    @property
    def shape(self) -> Tuple[int, int]:
        """Lattice shape ``(n_rows, n_cols)`` used for the Z² coupling."""
        return (self.n_rows, self.n_cols)

    @property
    def n_tiles(self) -> int:
        return self.n_rows * self.n_cols

    # -- tile geometry ---------------------------------------------------------
    def tile_rect(self, tile: TileIndex) -> Rect:
        """Footprint rectangle of tile ``(col, row)``."""
        col, row = tile
        x0 = self.origin[0] + col * self.tile_side
        y0 = self.origin[1] + row * self.tile_side
        return Rect(x0, y0, x0 + self.tile_side, y0 + self.tile_side)

    def tile_center(self, tile: TileIndex) -> np.ndarray:
        """Centre of tile ``(col, row)``."""
        col, row = tile
        return np.array(
            [
                self.origin[0] + (col + 0.5) * self.tile_side,
                self.origin[1] + (row + 0.5) * self.tile_side,
            ]
        )

    def contains_tile(self, tile: TileIndex) -> bool:
        """True when the tile lies fully inside the window grid."""
        col, row = tile
        return 0 <= col < self.n_cols and 0 <= row < self.n_rows

    def tiles(self) -> Iterator[TileIndex]:
        """Iterate over all (col, row) tile indices of the grid."""
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield (col, row)

    def neighbours(self, tile: TileIndex) -> dict[str, TileIndex]:
        """In-grid neighbouring tiles keyed by direction."""
        col, row = tile
        result = {}
        for direction, (dc, dr) in DIRECTION_OFFSETS.items():
            cand = (col + dc, row + dr)
            if self.contains_tile(cand):
                result[direction] = cand
        return result

    # -- point assignment ------------------------------------------------------
    def tile_of_points(self, points: np.ndarray) -> np.ndarray:
        """Tile indices ``(col, row)`` of each point (``(n, 2)`` integer array).

        Points to the left/below the origin get negative indices; callers that
        only care about in-grid tiles should mask with :meth:`in_grid_mask`.
        """
        pts = as_points(points)
        cols = np.floor((pts[:, 0] - self.origin[0]) / self.tile_side).astype(np.int64)
        rows = np.floor((pts[:, 1] - self.origin[1]) / self.tile_side).astype(np.int64)
        return np.column_stack([cols, rows])

    def in_grid_mask(self, tile_indices: np.ndarray) -> np.ndarray:
        """Mask of tile indices lying inside the finite grid."""
        idx = np.asarray(tile_indices, dtype=np.int64)
        return (
            (idx[:, 0] >= 0)
            & (idx[:, 0] < self.n_cols)
            & (idx[:, 1] >= 0)
            & (idx[:, 1] < self.n_rows)
        )

    def group_points_by_tile(self, points: np.ndarray) -> dict[TileIndex, np.ndarray]:
        """Map each in-grid tile index to the indices of the points inside it."""
        pts = as_points(points)
        tiles = self.tile_of_points(pts)
        in_grid = self.in_grid_mask(tiles)
        groups: dict[TileIndex, list[int]] = {}
        for point_idx in np.nonzero(in_grid)[0]:
            key = (int(tiles[point_idx, 0]), int(tiles[point_idx, 1]))
            groups.setdefault(key, []).append(int(point_idx))
        return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    # -- coupling with Z² -------------------------------------------------------
    def lattice_site(self, tile: TileIndex) -> Tuple[int, int]:
        """The paper's bijection φ: tile (col, row) → lattice site (row, col)."""
        col, row = tile
        return (row, col)

    def tile_of_site(self, site: Tuple[int, int]) -> TileIndex:
        """Inverse of :meth:`lattice_site`."""
        row, col = site
        return (col, row)
