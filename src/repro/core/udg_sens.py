"""High-level builder for ``UDG-SENS(2, λ)`` (paper §2.1).

:func:`build_udg_sens` goes from a deployment (an explicit point set or a
Poisson intensity to sample from) to a fully assembled
:class:`~repro.core.result.SensNetwork`: base unit-disk graph, tile
classification, relay overlay, and its largest connected component
(UDG-SENS proper).
"""

from __future__ import annotations

import numpy as np

from repro.core.goodness import classify_tiles
from repro.core.overlay import build_overlay
from repro.core.result import SensNetwork
from repro.core.tiles_udg import UDGTileSpec
from repro.core.tiling import Tiling
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect, as_points
from repro.graphs.udg import build_udg
from repro.rng import resolve_rng

__all__ = ["build_udg_sens"]


def build_udg_sens(
    points: np.ndarray | None = None,
    *,
    intensity: float | None = None,
    window: Rect | None = None,
    spec: UDGTileSpec | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    build_base_graph: bool = True,
) -> SensNetwork:
    """Build ``UDG-SENS(2, λ)``.

    Parameters
    ----------
    points:
        Explicit deployment coordinates.  When omitted, a Poisson process of
        the given ``intensity`` is sampled on ``window``.
    intensity:
        Poisson intensity λ (required when ``points`` is omitted).
    window:
        Deployment window.  Required when sampling; when ``points`` are given
        and no window is passed, the bounding box of the points is used.
    spec:
        Tile geometry; defaults to :meth:`UDGTileSpec.default` (the repaired
        parameterisation — see DESIGN.md §2).
    rng, seed:
        Randomness control for the sampling step (``rng`` wins over ``seed``).
    build_base_graph:
        Set to ``False`` to skip building the full UDG base graph (the overlay
        itself does not need it); useful in large threshold sweeps.

    Returns
    -------
    SensNetwork
        The assembled network; ``result.sens`` is UDG-SENS.
    """
    spec = spec or UDGTileSpec.default()
    if points is None:
        if intensity is None or window is None:
            raise ValueError("either points, or both intensity and window, must be provided")
        rng = resolve_rng(rng, seed)
        points = poisson_points(window, intensity, rng)
    else:
        points = as_points(points)
        if window is None:
            if len(points) == 0:
                raise ValueError("cannot infer a window from an empty point set")
            window = Rect(
                float(points[:, 0].min()),
                float(points[:, 1].min()),
                float(points[:, 0].max()),
                float(points[:, 1].max()),
            )

    tiling = Tiling(window=window, tile_side=spec.tile_side)
    classification = classify_tiles(points, tiling, spec, k=None)
    overlay = build_overlay(points, classification, name="UDG-SENS")
    sens = overlay.largest_component()

    if build_base_graph:
        base = build_udg(points, radius=spec.connection_radius, name="UDG")
    else:
        base = build_udg(np.zeros((0, 2)), radius=spec.connection_radius, name="UDG(skipped)")

    return SensNetwork(
        model="udg",
        points=points,
        base_graph=base,
        tiling=tiling,
        spec=spec,
        k=None,
        classification=classification,
        overlay=overlay,
        sens=sens,
    )
