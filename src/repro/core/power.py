"""Power model and power-stretch measurement (Li–Wan–Wang, paper §1).

Radio energy for one hop of length d is modelled as ``d^β`` with the path-loss
exponent β ∈ [2, 5]; the power cost of a multi-hop path is the sum of its
per-hop costs.  Li, Wan and Wang's lemma (cited by the paper) says a
*spanning* subgraph with distance stretch δ has power stretch at most δ^β,
which is how the paper turns its constant distance stretch (P2) into the
claim of power efficiency.

:func:`power_stretch` measures the actual ratio of minimum path powers
(SENS vs the base graph) on sampled node pairs and reports the δ^β value of
the same pairs as the Li–Wan–Wang reference.  One honest caveat, recorded in
EXPERIMENTS.md as well: the lemma's proof replaces every edge of the
base-graph optimal path by a short path in the subgraph, which requires the
subgraph to contain *every* node.  UDG-SENS / NN-SENS deliberately keep only
a small subset of nodes, and the dense base graph can always relay through
many very short hops, so the measured ratio may exceed δ^β by a
density-dependent factor while still being bounded by a constant for a fixed
deployment density — that is the quantity the benchmarks track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import dijkstra

from repro.core.result import SensNetwork
from repro.graphs.base import GeometricGraph
from repro.rng import resolve_rng

__all__ = ["path_power", "min_power_distances", "PowerReport", "power_stretch"]

#: Valid range of the path-loss exponent in the cited power model.
BETA_RANGE = (2.0, 5.0)


def path_power(points: np.ndarray, path: Sequence[int], beta: float = 2.0) -> float:
    """Power cost of a node-index path: sum of per-hop ``length^β``."""
    _check_beta(beta)
    nodes = np.asarray(list(path), dtype=np.int64)
    if nodes.size < 2:
        return 0.0
    pts = np.asarray(points, dtype=np.float64)
    diffs = pts[nodes[1:]] - pts[nodes[:-1]]
    lengths = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    return float(np.sum(lengths**beta))


def _check_beta(beta: float) -> None:
    if not BETA_RANGE[0] <= beta <= BETA_RANGE[1]:
        raise ValueError(f"beta must lie in [{BETA_RANGE[0]}, {BETA_RANGE[1]}], got {beta}")


def _power_adjacency(graph: GeometricGraph, beta: float) -> coo_matrix:
    n = graph.n_nodes
    if graph.n_edges == 0:
        return coo_matrix((n, n))
    weights = graph.edge_lengths() ** beta
    rows = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    cols = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
    data = np.concatenate([weights, weights])
    return coo_matrix((data, (rows, cols)), shape=(n, n))


def min_power_distances(
    graph: GeometricGraph, sources: Sequence[int], beta: float = 2.0
) -> np.ndarray:
    """Minimum path power from each source to every node (``inf`` if unreachable)."""
    _check_beta(beta)
    adj = _power_adjacency(graph, beta)
    indices = np.asarray(list(sources), dtype=np.int64)
    return dijkstra(adj, directed=False, indices=indices)


@dataclass
class PowerReport:
    """Sampled power-stretch observations of a SENS network against its base graph.

    Attributes
    ----------
    beta: path-loss exponent used.
    ratios: per-pair ratio (min power in SENS) / (min power in base graph).
    distance_stretch_bound: the δ^β value computed from the observed maximum
        distance stretch δ of the same pairs — the Li–Wan–Wang reference.  For
        spanning subgraphs it is a true upper bound; for the node-subsampled
        SENS overlays it is indicative only (see the module docstring).
    """

    beta: float
    ratios: np.ndarray
    distance_stretch_bound: float

    @property
    def max_ratio(self) -> float:
        return float(self.ratios.max())

    @property
    def mean_ratio(self) -> float:
        return float(self.ratios.mean())

    def within_bound(self) -> bool:
        """Whether every sampled ratio respects the δ^β reference (1% slack).

        Expected to hold for spanning spanners (Gabriel/RNG/Yao built on all
        nodes); may legitimately be ``False`` for the SENS overlays.
        """
        return bool(self.max_ratio <= self.distance_stretch_bound * 1.01)


def power_stretch(
    network: SensNetwork,
    beta: float = 2.0,
    n_pairs: int = 100,
    rng: np.random.Generator | None = None,
) -> PowerReport:
    """Measure the power stretch of SENS against the base graph on sampled pairs.

    Pairs are sampled among SENS nodes (so both endpoints exist in both
    graphs); for each pair the minimum path power is computed in the base
    graph (using all deployed nodes) and in the SENS overlay, and the ratio is
    recorded.  Pairs that are disconnected in the base graph are skipped
    (they carry no information about stretch).

    Raises
    ------
    ValueError
        If fewer than two SENS nodes exist or no valid pair could be sampled.
    """
    _check_beta(beta)
    if n_pairs < 1:
        raise ValueError("n_pairs must be positive")
    rng = resolve_rng(rng)
    sens = network.sens
    if sens.n_nodes < 2:
        raise ValueError("SENS component too small for power-stretch sampling")
    base = network.base_graph
    if base.n_nodes != len(network.points):
        raise ValueError("the base graph was skipped at build time; rebuild with build_base_graph=True")

    n_sources = max(1, min(sens.n_nodes, int(np.ceil(n_pairs / 4))))
    src_local = rng.choice(sens.n_nodes, size=n_sources, replace=False)
    src_original = sens.original_indices[src_local]

    sens_power = min_power_distances(sens.graph, src_local, beta)
    base_power = min_power_distances(base, src_original, beta)
    # Distance stretch of the same pairs, to compute the δ^β bound.
    sens_dist = dijkstra(_length_adjacency(sens.graph), directed=False, indices=src_local)
    base_dist = dijkstra(_length_adjacency(base), directed=False, indices=src_original)

    ratios: list[float] = []
    stretches: list[float] = []
    budget = n_pairs
    for row in range(n_sources):
        if budget <= 0:
            break
        targets = rng.choice(sens.n_nodes, size=min(4, budget), replace=False)
        for tgt_local in targets:
            if tgt_local == src_local[row]:
                continue
            tgt_original = int(sens.original_indices[tgt_local])
            bp = float(base_power[row, tgt_original])
            sp = float(sens_power[row, tgt_local])
            if not np.isfinite(bp) or bp <= 0 or not np.isfinite(sp):
                continue
            ratios.append(sp / bp)
            bd = float(base_dist[row, tgt_original])
            sd = float(sens_dist[row, tgt_local])
            if np.isfinite(bd) and bd > 0 and np.isfinite(sd):
                stretches.append(sd / bd)
            budget -= 1
    if not ratios:
        raise ValueError("no valid pairs sampled for the power-stretch measurement")
    delta = max(stretches) if stretches else float("nan")
    return PowerReport(
        beta=beta,
        ratios=np.asarray(ratios),
        distance_stretch_bound=float(delta**beta) if np.isfinite(delta) else float("inf"),
    )


def _length_adjacency(graph: GeometricGraph) -> coo_matrix:
    n = graph.n_nodes
    if graph.n_edges == 0:
        return coo_matrix((n, n))
    weights = graph.edge_lengths()
    rows = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    cols = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
    data = np.concatenate([weights, weights])
    return coo_matrix((data, (rows, cols)), shape=(n, n))
