"""The Figure-7 distributed construction algorithm.

The paper's algorithm has four steps, each realised here with explicit
messages over a :class:`~repro.distributed.network.MessageNetwork`:

1. **Tile identification** — every node derives its tile index from its own
   coordinates and the tile side programmed into it (pure local computation,
   no messages).
2. **Region identification** — every node evaluates the tile-spec region
   predicates on its own (local) coordinates.
3. **Leader election** — the nodes of each non-empty region elect a leader
   (one broadcast round per region,
   :func:`~repro.distributed.leader_election.elect_leader_distributed`); the
   C0 leader becomes the tile representative, other leaders become relays.
4. **Connection** — the representative handshakes with its relays
   (``connect-request`` / ``connect-ack``), decides whether its tile is good
   (all required relays answered and, for NN-SENS, the tile occupancy cap
   holds), announces goodness to its relays, and the outward relays then
   handshake with the facing relays of the neighbouring tile.  Overlay edges
   are created exactly for handshakes in which *both* sides belong to good
   tiles, which reproduces the centralized overlay edge-for-edge (verified by
   :meth:`DistributedBuildResult.matches_overlay` in the integration tests).

One deliberate simplification is documented here rather than hidden: the
NN-SENS occupancy count (``≤ k/2`` points in the tile) is computed from the
tile membership directly instead of via an in-network census protocol.  The
paper itself does not specify a census mechanism; counting messages for it
would be guesswork, and it does not affect which overlay is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.goodness import TileClassification
from repro.core.overlay import OverlayGraph
from repro.core.tiles_base import TileSpec
from repro.core.tiling import TileIndex, Tiling
from repro.distributed.leader_election import elect_leader_distributed, election_key
from repro.distributed.messages import Message
from repro.distributed.network import MessageNetwork, NetworkStats
from repro.geometry.primitives import Rect, as_points

__all__ = [
    "DistributedBuildResult",
    "distributed_build",
    "region_members_of_tile",
    "elect_tile_leaders",
    "tile_goodness",
    "cross_tile_edges",
]


# -- pure per-tile decision helpers -------------------------------------------
# The repair engine (repro.distributed.repair) re-runs exactly these decisions
# in only the tiles a diff touched; sharing one implementation is what makes
# "repair equals rebuild" a structural property rather than a coincidence.


def region_members_of_tile(
    points: np.ndarray, member_idx: np.ndarray, center: np.ndarray, spec: TileSpec
) -> Dict[str, List[int]]:
    """Region membership of one tile: name → member node ids (ascending).

    ``points`` is any array indexable by the ids in ``member_idx`` (the global
    coordinate array here, the id-indexed buffer of a dynamic index in the
    repair engine).  Regions may overlap — a node can serve two relay roles.
    """
    local = points[member_idx] - center
    masks = spec.classify_points(local)
    return {
        name: [int(member_idx[i]) for i in np.nonzero(mask)[0]] for name, mask in masks.items()
    }


def elect_tile_leaders(
    points: np.ndarray, region_members: Dict[str, List[int]], center: np.ndarray, spec: TileSpec
) -> Dict[str, int]:
    """Deterministic leader of every non-empty region of one tile.

    The election key is ``(distance to the region anchor, node id)`` — the
    exact rule the message-passing election converges to, so the distributed
    run, the repair engine and the centralized classifier all pick the same
    nodes.
    """
    leaders: Dict[str, int] = {}
    for name, members in region_members.items():
        if not members:
            continue
        anchor = center + spec.region_anchor(name)
        leaders[name] = min(members, key=lambda m: election_key(points, m, anchor))
    return leaders


def tile_goodness(
    spec: TileSpec, tile_leaders: Dict[str, int], n_members: int, cap: int | None
) -> Tuple[bool, Dict[str, int]]:
    """Goodness decision of one tile: ``(is_good, present relay leaders)``.

    A tile is good when its representative region elected a leader, every
    relay region is occupied and the occupancy cap (NN-SENS) holds.  The
    present-relay mapping is returned even for bad tiles — the handshake
    phase messages them before the decision is known.
    """
    rep_region = spec.representative_region
    if rep_region not in tile_leaders:
        return False, {}
    relay_regions = tuple(name for name in spec.region_names if name != rep_region)
    present = {name: tile_leaders[name] for name in relay_regions if name in tile_leaders}
    over_cap = cap is not None and n_members > cap
    good = len(present) == len(relay_regions) and not over_cap
    return good, present


def cross_tile_edges(
    spec: TileSpec,
    direction: str,
    rep_a: int,
    relays_a: Dict[str, int],
    rep_b: int,
    relays_b: Dict[str, int],
) -> Tuple[List[Tuple[int, int]], Tuple[int, int]]:
    """Overlay edges of one good tile pair, plus the border-handshake endpoints.

    ``a`` is the tile owning ``direction`` (right/top), ``b`` its neighbour.
    Returns the ``(min, max)`` edge tuples along the relay path
    ``rep_a – chain(a) – chain(b) reversed – rep_b`` (consecutive duplicates
    skipped) and the two outermost relays whose border handshake precedes the
    splice.
    """
    facing = spec.facing_direction(direction)
    own_chain = [rep_a] + [relays_a[region] for region in spec.relay_chain(direction)]
    other_chain = [relays_b[region] for region in reversed(spec.relay_chain(facing))] + [rep_b]
    path = own_chain + other_chain
    edges = [
        (min(u, v), max(u, v)) for u, v in zip(path[:-1], path[1:]) if u != v
    ]
    return edges, (own_chain[-1], other_chain[0])


@dataclass
class DistributedBuildResult:
    """Outcome of the distributed construction.

    Attributes
    ----------
    edges:
        ``(m, 2)`` array of overlay edges as *global point index* pairs.
    representatives:
        Mapping good tile → global index of its elected representative.
    relays:
        Mapping good tile → {region name → global index of the elected relay}.
    good_tiles:
        Tiles whose representatives declared themselves good.
    stats:
        Message/round accounting of the whole run.
    """

    edges: np.ndarray
    representatives: Dict[TileIndex, int]
    relays: Dict[TileIndex, Dict[str, int]]
    good_tiles: List[TileIndex]
    stats: NetworkStats

    def edge_set(self) -> set[Tuple[int, int]]:
        return {(min(int(a), int(b)), max(int(a), int(b))) for a, b in self.edges}

    def matches_overlay(self, overlay: OverlayGraph) -> bool:
        """Whether the produced edges equal the centralized overlay's edges."""
        central = {
            (
                min(int(overlay.original_indices[a]), int(overlay.original_indices[b])),
                max(int(overlay.original_indices[a]), int(overlay.original_indices[b])),
            )
            for a, b in overlay.graph.edges
        }
        return self.edge_set() == central

    def matches_classification(self, classification: TileClassification) -> bool:
        """Whether good tiles and elected points agree with the centralized rule."""
        central_good = set(classification.good_tiles())
        if central_good != set(self.good_tiles):
            return False
        for tile in central_good:
            record = classification.records[tile]
            if self.representatives.get(tile) != record.representative:
                return False
            if {k: v for k, v in self.relays.get(tile, {}).items()} != dict(record.relays):
                return False
        return True


def distributed_build(
    points: np.ndarray,
    spec: TileSpec,
    window: Rect,
    k: int | None = None,
    radio_range: float | None = None,
    index_backend: str = "grid",
) -> DistributedBuildResult:
    """Run the Figure-7 algorithm on a deployment and return the built overlay.

    Parameters
    ----------
    points:
        Deployment coordinates (node ids are row indices).
    spec:
        Tile specification (UDG or NN).
    window:
        Deployment window (defines the tiling, as in the centralized builder).
    k:
        NN parameter for the occupancy cap (ignored by UDG specs).
    radio_range:
        Enforced maximum message distance.  Defaults to the UDG connection
        radius for UDG specs and to unlimited for NN specs (NN links are not
        distance-bounded); pass an explicit value to tighten the locality
        check.
    index_backend:
        Spatial-index backend used by the network to precompute the one-hop
        neighbour table (the distributed-build hot path); see
        :func:`repro.geometry.index.build_index`.
    """
    pts = as_points(points)
    tiling = Tiling(window=window, tile_side=spec.tile_side)
    if radio_range is None:
        radio_range = getattr(spec, "connection_radius", None)
    network = MessageNetwork(pts, radio_range=radio_range, index_backend=index_backend)

    # -- Steps 1 & 2: local tile + region identification --------------------------
    groups = tiling.group_points_by_tile(pts)
    region_members: Dict[TileIndex, Dict[str, List[int]]] = {
        tile: region_members_of_tile(pts, member_idx, tiling.tile_center(tile), spec)
        for tile, member_idx in groups.items()
    }

    # -- Step 3: leader election per non-empty region -------------------------------
    # All regions elect in parallel: every candidate broadcasts its key to the
    # other members of its region in one round, then every candidate locally
    # picks the minimum key it heard (plus its own).  The broadcasts of all
    # regions share the same synchronous round, so the whole step costs one
    # round regardless of the number of tiles — this is what property P4 is
    # about.  (elect_leader_distributed implements the same protocol for a
    # single region and is unit-tested separately.)
    leaders: Dict[TileIndex, Dict[str, int]] = {}
    for tile, regions in region_members.items():
        for name, members in regions.items():
            if len(members) < 2:
                continue
            for m in members:
                network.broadcast(
                    m, members, "candidate", {"tile": tile, "region": name, "node": m}
                )
    network.deliver_round()
    for tile, regions in region_members.items():
        leaders[tile] = elect_tile_leaders(pts, regions, tiling.tile_center(tile), spec)

    # -- Step 4a: representative ↔ relay handshake, goodness decision ----------------
    rep_region = spec.representative_region
    cap = spec.max_points_per_tile(k)

    representatives: Dict[TileIndex, int] = {}
    relays: Dict[TileIndex, Dict[str, int]] = {}
    good_tiles: List[TileIndex] = []
    edges: set[Tuple[int, int]] = set()

    # Every tile runs its intra-tile handshake in parallel (one request round,
    # one ack round), so the whole phase costs two synchronous rounds.
    for tile, tile_leaders in leaders.items():
        if rep_region not in tile_leaders:
            continue
        rep = tile_leaders[rep_region]
        _, present_relays = tile_goodness(spec, tile_leaders, len(groups.get(tile, ())), cap)
        for relay in present_relays.values():
            if relay != rep:
                network.send(Message(rep, relay, "connect-request", {"tile": tile}))
    network.deliver_round()
    for tile, tile_leaders in leaders.items():
        if rep_region not in tile_leaders:
            continue
        rep = tile_leaders[rep_region]
        _, present_relays = tile_goodness(spec, tile_leaders, len(groups.get(tile, ())), cap)
        for relay in present_relays.values():
            if relay != rep:
                network.send(Message(relay, rep, "connect-ack", {"tile": tile}))
    network.deliver_round()

    for tile, tile_leaders in leaders.items():
        is_good, present_relays = tile_goodness(
            spec, tile_leaders, len(groups.get(tile, ())), cap
        )
        if not is_good:
            continue
        rep = tile_leaders[rep_region]
        good_tiles.append(tile)
        representatives[tile] = rep
        relays[tile] = dict(present_relays)
        # Goodness announcement to the relays (1 message each).
        for relay in present_relays.values():
            if relay != rep:
                network.send(Message(rep, relay, "tile-good", {"tile": tile}))
    network.deliver_round()

    # -- Step 4b: cross-tile handshakes between good neighbours ----------------------
    good_set = set(good_tiles)
    for tile in good_tiles:
        neighbours = tiling.neighbours(tile)
        for direction in ("right", "top"):
            neighbour = neighbours.get(direction)
            if neighbour is None or neighbour not in good_set:
                continue
            pair_edges, (a, b) = cross_tile_edges(
                spec,
                direction,
                representatives[tile],
                relays[tile],
                representatives[neighbour],
                relays[neighbour],
            )
            # Border handshake between the two outermost relays (2 messages).
            if a != b:
                network.send(Message(a, b, "border-request", {"tile": tile, "direction": direction}))
                network.send(Message(b, a, "border-ack", {"tile": neighbour}))
            edges.update(pair_edges)
    network.deliver_round()

    edge_array = (
        np.asarray(sorted(edges), dtype=np.int64) if edges else np.zeros((0, 2), dtype=np.int64)
    )
    return DistributedBuildResult(
        edges=edge_array,
        representatives=representatives,
        relays=relays,
        good_tiles=good_tiles,
        stats=network.stats,
    )
