"""Message records exchanged by the distributed construction algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    Attributes
    ----------
    sender:
        Node id (global point index) of the sender.
    recipient:
        Node id of the recipient.
    kind:
        Message type tag, e.g. ``"candidate"``, ``"connect-request"``,
        ``"connect-ack"``.
    payload:
        Arbitrary, immutable-by-convention content (tuples / scalars only in
        this library).
    """

    sender: int
    recipient: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sender < 0 or self.recipient < 0:
            raise ValueError("node ids must be non-negative")
        if not self.kind:
            raise ValueError("message kind must be a non-empty string")
