"""Leader election within a tile region.

All nodes that fall in the same region of the same tile can hear each other
(the regions are constructed with diameter below the communication radius),
so the election runs on a complete graph: every candidate broadcasts its key,
and every candidate independently picks the minimum key it heard (including
its own).  The key is ``(distance to the region's nominal anchor, node id)``,
which makes the outcome identical to the centralized selection rule in
:func:`repro.core.goodness.select_region_leader` — the cross-check the
integration tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.distributed.network import MessageNetwork

__all__ = ["election_key", "elect_leader_distributed"]


def election_key(points: np.ndarray, node: int, anchor: np.ndarray) -> Tuple[float, int]:
    """The election key of a node: (distance to the region anchor, node id)."""
    d = float(np.linalg.norm(np.asarray(points)[node] - np.asarray(anchor)))
    return (d, int(node))


def elect_leader_distributed(
    network: MessageNetwork,
    members: Sequence[int],
    anchor: np.ndarray,
    kind: str = "candidate",
) -> int:
    """Run a one-round complete-graph leader election among ``members``.

    Every member broadcasts its key to every other member; after delivery each
    member computes the minimum key.  The function returns the elected node id
    and leaves the message/round accounting in ``network.stats``.

    Raises
    ------
    ValueError
        If ``members`` is empty.
    """
    member_list = [int(m) for m in members]
    if not member_list:
        raise ValueError("cannot elect a leader among zero members")
    if len(member_list) == 1:
        # A single candidate elects itself without sending anything.
        return member_list[0]

    keys: Dict[int, Tuple[float, int]] = {
        m: election_key(network.points, m, anchor) for m in member_list
    }
    # Broadcast keys.
    for m in member_list:
        network.broadcast(
            m,
            member_list,
            kind,
            {"distance": keys[m][0], "node": keys[m][1]},
        )
    inboxes = network.deliver_round()

    # Each member picks the minimum of the keys it heard plus its own; all
    # members must agree, which we assert (it is a completeness check on the
    # message plumbing, not a probabilistic property).
    decisions: List[int] = []
    for m in member_list:
        heard = [(msg.payload["distance"], msg.payload["node"]) for msg in inboxes.get(m, [])]
        heard.append(keys[m])
        decisions.append(min(heard)[1])
    winner = decisions[0]
    if any(d != winner for d in decisions):
        raise RuntimeError("leader election diverged — message delivery is broken")
    return int(winner)
