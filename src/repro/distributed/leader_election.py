"""Leader election within a tile region.

All nodes that fall in the same region of the same tile can hear each other
(the regions are constructed with diameter below the communication radius),
so the election runs on a complete graph: every candidate broadcasts its key,
and every candidate independently picks the minimum key it heard (including
its own).  The key is ``(distance to the region's nominal anchor, node id)``,
which makes the outcome identical to the centralized selection rule in
:func:`repro.core.goodness.select_region_leader` — the cross-check the
integration tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.distributed.network import MessageNetwork

__all__ = ["election_key", "elect_leader_distributed"]


def election_key(points: np.ndarray, node: int, anchor: np.ndarray) -> Tuple[float, int]:
    """The election key of a node: (distance to the region anchor, node id)."""
    d = float(np.linalg.norm(np.asarray(points)[node] - np.asarray(anchor)))
    return (d, int(node))


def elect_leader_distributed(
    network: MessageNetwork,
    members: Sequence[int],
    anchor: np.ndarray,
    kind: str = "candidate",
    retransmissions: int = 0,
) -> int:
    """Run a complete-graph leader election among ``members``.

    Every member broadcasts its key to every other member; after delivery each
    member computes the minimum key over everything it has heard (its own key
    included).  The function returns the elected node id and leaves the
    message/round accounting in ``network.stats``.

    ``retransmissions`` bounds the fault tolerance: when the members' local
    decisions diverge (messages were dropped or are still delayed), every
    member re-broadcasts its key and the check repeats — up to that many
    extra rounds.  Heard keys accumulate across rounds, so duplicates are
    harmless (the minimum of a multiset) and a delayed message heals the
    divergence when it finally lands.  A fault-free election always
    converges in the first round, so the default accounting is unchanged.

    Raises
    ------
    ValueError
        If ``members`` is empty.
    RuntimeError
        If the members still disagree after the retransmission budget — the
        explicit beyond-the-envelope outcome (never a silently wrong
        leader).
    """
    member_list = [int(m) for m in members]
    if not member_list:
        raise ValueError("cannot elect a leader among zero members")
    if len(member_list) == 1:
        # A single candidate elects itself without sending anything.
        return member_list[0]

    keys: Dict[int, Tuple[float, int]] = {
        m: election_key(network.points, m, anchor) for m in member_list
    }
    # Every member always counts its own key among the heard ones.
    heard: Dict[int, set] = {m: {keys[m]} for m in member_list}
    for _ in range(max(0, retransmissions) + 1):
        # (Re-)broadcast keys.
        for m in member_list:
            network.broadcast(
                m,
                member_list,
                kind,
                {"distance": keys[m][0], "node": keys[m][1]},
            )
        inboxes = network.deliver_round()
        for m in member_list:
            for msg in inboxes.get(m, []):
                heard[m].add((msg.payload["distance"], msg.payload["node"]))
        # Each member picks the minimum of the keys it heard plus its own;
        # all members must agree (a completeness check on the message
        # plumbing, not a probabilistic property).
        decisions: List[int] = [min(heard[m])[1] for m in member_list]
        winner = decisions[0]
        if all(d == winner for d in decisions):
            return int(winner)
    raise RuntimeError("leader election diverged — message delivery is broken")
