"""Distributed (local-information) construction substrate (paper §4.1, Figure 7).

The paper's property P4 says each node can decide its role using only its own
GPS position and messages to immediate neighbours.  This package simulates
that algorithm faithfully as a synchronous message-passing computation:

* :mod:`repro.distributed.messages` — message records.
* :mod:`repro.distributed.network` — a synchronous-round message-passing
  simulator with per-round delivery and message/round accounting.
* :mod:`repro.distributed.leader_election` — leader election on the complete
  graph formed by the nodes of one region (the paper cites Singh's
  complete-network election; any deterministic rule works, we use
  lowest-key-wins on (distance-to-anchor, node id)).
* :mod:`repro.distributed.construct` — the four-step algorithm of Figure 7
  (tile identification, region identification, leader election, handshake
  connection), producing the same overlay as the centralized builder, which
  the integration tests verify.
* :mod:`repro.distributed.repair` — the diff-driven repair engine: given the
  dirty-id stream of a dynamic deployment, re-runs election/classification
  only in the tiles the diff touched and splices the overlay edges of the
  affected tile pairs, equal to a from-scratch ``distributed_build`` at a
  cost proportional to the diff.
"""

from repro.distributed.construct import DistributedBuildResult, distributed_build
from repro.distributed.leader_election import elect_leader_distributed
from repro.distributed.messages import Message
from repro.distributed.network import MessageNetwork, NetworkStats
from repro.distributed.repair import DistributedRepairEngine, RepairReport, repair_build

__all__ = [
    "Message",
    "MessageNetwork",
    "NetworkStats",
    "elect_leader_distributed",
    "DistributedBuildResult",
    "distributed_build",
    "DistributedRepairEngine",
    "RepairReport",
    "repair_build",
]
