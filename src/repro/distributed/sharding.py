"""Domain-decomposed distributed build: shard the window, stitch at halos.

The tile grid of :class:`~repro.core.tiling.Tiling` is a natural shard key:
every construction decision of
:func:`~repro.distributed.construct.distributed_build` is a function of one
tile's membership (elections, goodness) or of one adjacent tile pair's
elected leaders (overlay splices).  :class:`ShardedBuilder` splits the grid
into contiguous blocks of tile *columns*, extends each block by a one-column
ghost (halo) margin on either side, and runs the per-shard construction pass
(:func:`repro.shard.worker.build_shard`) for every block — in a
:class:`~concurrent.futures.ProcessPoolExecutor` with the position buffer in
:mod:`multiprocessing.shared_memory` (``executor="process"``), or inline in
this process (``executor="serial"``; same code path, plain arrays).

**Stitching.**  A shard reports decisions only for the tiles it *owns*; an
adjacent pair is owned by the shard owning its left/bottom tile.  Owned tiles
and owned pairs partition the grid exactly, so the stitched overlay is the
set union of per-shard edge sets, the good-tile/representative/relay maps are
disjoint unions, and summed per-shard message counts reproduce the unsharded
:class:`~repro.distributed.network.NetworkStats` — certified by
:func:`matches_unsharded`, the PR 4 ``matches_rebuild()`` discipline applied
to sharding.  The stitched ``good_tiles`` list is sorted (the canonical order
also used by the repair engine's ``result()``; ``distributed_build`` emits
dict-discovery order instead, so the certificate compares sets).

**Incremental repair under shards.**  The builder keeps per-shard results and
a dirty set: :meth:`ShardedBuilder.move`, :meth:`~ShardedBuilder.insert` and
:meth:`~ShardedBuilder.delete` mark exactly the shards whose readable column
span (owned + halo) contains an affected tile column, and
:meth:`~ShardedBuilder.rebuild_dirty` re-runs only those shards before
restitching — the diff-driven repair idea of PR 4 at shard granularity.

Like :class:`~repro.distributed.repair.DistributedRepairEngine`, the sharded
path computes protocol decisions directly (no message simulation, no
neighbour table — a large part of its speed over the simulated build) and
does not re-verify radio-range locality.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple
import weakref

import numpy as np

from repro.core.tiles_base import TileSpec
from repro.core.tiling import TileIndex, Tiling
from repro.distributed.construct import DistributedBuildResult, distributed_build
from repro.distributed.network import NetworkStats
from repro.distributed.repair import _PROTOCOL_ROUNDS
from repro.faults.plan import (
    CRASH,
    STALL,
    Fault,
    FaultInjector,
    FaultToleranceExceeded,
    InjectedWorkerCrash,
)
from repro.faults.retry import RetryError, RetryPolicy, call_with_retry
from repro.geometry.primitives import Rect, as_points
from repro.kernels.layout import POSITIONS, ROW_IDS
from repro.shard.shm import create_block
from repro.shard.worker import ShardResult, ShardTask, build_shard, run_shard_task

__all__ = [
    "ShardAccounting",
    "ShardedBuildInfo",
    "ShardedBuilder",
    "matches_unsharded",
    "plan_shard_columns",
    "sharded_build",
]

#: Message kinds in the order the unsharded build first emits them (cosmetic:
#: dict equality ignores order, canonical JSON sorts keys).
_MESSAGE_KINDS = (
    "candidate",
    "connect-request",
    "connect-ack",
    "tile-good",
    "border-request",
    "border-ack",
)


def plan_shard_columns(n_cols: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous half-open tile-column blocks ``[start, stop)``, one per shard.

    Blocks differ in width by at most one column; with more shards than
    columns the surplus shards get empty blocks (and do no work).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return [
        (shard * n_cols // n_shards, (shard + 1) * n_cols // n_shards)
        for shard in range(n_shards)
    ]


@dataclass(frozen=True)
class ShardAccounting:
    """Per-worker resource accounting of one shard's last build."""

    shard_id: int
    n_owned: int
    n_halo: int
    wall_s: float
    max_rss_kb: int


@dataclass(frozen=True)
class ShardedBuildInfo:
    """Resource/overhead accounting of one stitched build."""

    n_shards: int
    shards: Tuple[ShardAccounting, ...]

    @property
    def total_owned(self) -> int:
        return sum(shard.n_owned for shard in self.shards)

    @property
    def total_halo(self) -> int:
        return sum(shard.n_halo for shard in self.shards)

    @property
    def halo_overhead(self) -> float:
        """Halo members processed per owned member (the ghost-work fraction)."""
        return self.total_halo / max(1, self.total_owned)

    @property
    def max_rss_kb(self) -> int:
        return max((shard.max_rss_kb for shard in self.shards), default=0)


def matches_unsharded(
    sharded: DistributedBuildResult,
    reference: DistributedBuildResult,
    ids: Optional[np.ndarray] = None,
) -> bool:
    """Shard-count-invariance certificate against an unsharded build.

    Same overlay edges, good tiles (as sets — orders are canonical-vs-
    discovery), representatives, relays *and* message accounting (rounds,
    totals, per-kind counts).  ``ids`` maps the reference's compact row
    indices into the sharded result's global id space after churn, exactly
    as in ``DistributedRepairEngine.matches_rebuild``.
    """
    if ids is not None:
        id_map = np.asarray(ids, dtype=np.int64)
        ref_edges = (
            id_map[reference.edges] if len(reference.edges) else np.zeros((0, 2), dtype=np.int64)
        )
        ref_reps = {tile: int(id_map[rep]) for tile, rep in reference.representatives.items()}
        ref_relays = {
            tile: {name: int(id_map[relay]) for name, relay in relays.items()}
            for tile, relays in reference.relays.items()
        }
    else:
        ref_edges = reference.edges
        ref_reps = {tile: int(rep) for tile, rep in reference.representatives.items()}
        ref_relays = {
            tile: {name: int(relay) for name, relay in relays.items()}
            for tile, relays in reference.relays.items()
        }
    return (
        np.array_equal(sharded.edges, ref_edges)
        and set(sharded.good_tiles) == set(reference.good_tiles)
        and sharded.representatives == ref_reps
        and sharded.relays == ref_relays
        and sharded.stats.rounds == reference.stats.rounds
        and sharded.stats.messages_sent == reference.stats.messages_sent
        and dict(sharded.stats.messages_by_kind) == dict(reference.stats.messages_by_kind)
    )


def _release_block(shm) -> None:
    """Finalizer body: release an owned segment (idempotent, never raises)."""
    try:
        shm.close()
        shm.unlink()
    except Exception:
        pass


class ShardedBuilder:
    """Owns a deployment and maintains its stitched distributed build.

    Parameters
    ----------
    points:
        Initial deployment; node ids are global row indices and remain stable
        across churn (like the dynamic index's id space).
    spec, window, k:
        As for :func:`~repro.distributed.construct.distributed_build`.
    n_shards:
        Number of column blocks the grid is split into.
    executor:
        ``"process"`` (shared-memory positions + ``ProcessPoolExecutor``) or
        ``"serial"`` (same shard pass, inline — the reference for tests and
        the cheapest mode on a single core).
    max_workers:
        Pool size for ``executor="process"``; defaults to
        ``min(n_shards, os.cpu_count())``.
    injector:
        Optional seeded :class:`~repro.faults.plan.FaultInjector`.  Each
        shard-build *attempt* is one occurrence of the ``shard.build``
        point: a ``crash`` fault kills that attempt (an in-worker exception,
        or — ``arg >= 1`` — a hard worker death that breaks the pool), a
        ``stall`` fault delays it.  Crashed attempts are resubmitted with
        the retry policy's backoff; a shard that exhausts the budget raises
        :class:`~repro.faults.plan.FaultToleranceExceeded` (explicitly —
        never a partial stitch).
    retry:
        Bounded resubmission budget per shard (default:
        :class:`~repro.faults.retry.RetryPolicy`'s three attempts).
    sleep:
        Injected sleeper for the resubmission backoff (``None`` — the
        default — retries immediately; tests pass a recording stub,
        production boundaries may pass ``time.sleep``).

    Use as a context manager (or call :meth:`close`): the process mode owns a
    shared-memory segment and a worker pool.
    """

    def __init__(
        self,
        points: np.ndarray,
        spec: TileSpec,
        window: Rect,
        k: int | None = None,
        n_shards: int = 4,
        executor: str = "process",
        max_workers: int | None = None,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if executor not in ("process", "serial"):
            raise ValueError("executor must be 'process' or 'serial'")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        pts = as_points(points)
        self.spec = spec
        self.window = window
        self.k = k
        self.n_shards = int(n_shards)
        self.tiling = Tiling(window=window, tile_side=spec.tile_side)
        self.col_ranges = plan_shard_columns(self.tiling.n_cols, self.n_shards)
        self._executor = executor
        self._max_workers = (
            max(1, int(max_workers))
            if max_workers is not None
            else min(self.n_shards, os.cpu_count() or 1)
        )
        self._pool: ProcessPoolExecutor | None = None
        self._injector = injector
        self._retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        #: Fault-recovery accounting: shard attempts retried after a crash.
        self.fault_resubmissions = 0
        #: Fault-recovery accounting: broken pools recreated after a hard crash.
        self.pool_restarts = 0

        self._n = len(pts)
        self._capacity = max(self._n, 1)
        self._shm = None
        self._finalizer = None
        if executor == "process":
            # Sized and viewed through the shared SoA buffer description
            # (layout.POSITIONS) the shard workers attach with.
            self._shm = create_block(POSITIONS.nbytes(self._capacity))
            self._finalizer = weakref.finalize(self, _release_block, self._shm)
            self._buf = POSITIONS.view(self._shm.buf, self._capacity)
        else:
            self._buf = POSITIONS.empty(self._capacity)
        self._buf[: self._n] = pts

        self._alive = np.zeros(self._capacity, dtype=bool)
        self._alive[: self._n] = True
        self._cols = np.zeros(self._capacity, dtype=np.int64)
        self._in_grid = np.zeros(self._capacity, dtype=bool)
        if self._n:
            tiles = self.tiling.tile_of_points(pts)
            in_grid = self.tiling.in_grid_mask(tiles)
            self._cols[: self._n] = tiles[:, 0]
            self._in_grid[: self._n] = in_grid

        self._results: List[Optional[ShardResult]] = [None] * self.n_shards
        self._dirty = set(range(self.n_shards))
        self._last: Optional[DistributedBuildResult] = None

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool and the owned shared-memory segment."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._shm = None

    def __enter__(self) -> "ShardedBuilder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    # -- id-space views --------------------------------------------------------
    def alive_ids(self) -> np.ndarray:
        """Ascending global row ids of the alive nodes."""
        return np.nonzero(self._alive[: self._n])[0].astype(np.int64)

    def positions(self) -> np.ndarray:
        """Positions of the alive nodes, compacted in ascending-id order."""
        return self._buf[: self._n][self._alive[: self._n]].copy()

    def id_positions(self) -> np.ndarray:
        """Copy of the id-indexed position buffer (rows of dead ids are stale)."""
        return self._buf[: self._n].copy()

    @property
    def n_alive(self) -> int:
        return int(np.count_nonzero(self._alive[: self._n]))

    # -- churn / mobility ------------------------------------------------------
    def _check_alive(self, rows: np.ndarray) -> None:
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self._n:
            raise ValueError("row ids out of range")
        if not self._alive[rows].all():
            raise ValueError("row ids must reference alive nodes")

    def _mark_cols_dirty(self, cols: np.ndarray) -> None:
        if len(cols) == 0:
            return
        affected = np.unique(np.asarray(cols, dtype=np.int64))
        for shard, (start, stop) in enumerate(self.col_ranges):
            if start == stop:
                continue
            # A shard reads its owned columns plus the halo column each side.
            if np.any((affected >= start - 1) & (affected <= stop)):
                self._dirty.add(shard)

    def move(self, rows: np.ndarray, new_positions: np.ndarray) -> None:
        """Move alive nodes; shards reading an affected column become dirty."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        new = as_points(new_positions)
        if len(new) != rows.size:
            raise ValueError("rows and new_positions must have equal length")
        self._check_alive(rows)
        old = rows[self._in_grid[rows]]
        self._mark_cols_dirty(self._cols[old])
        self._buf[rows] = new
        tiles = self.tiling.tile_of_points(new)
        in_grid = self.tiling.in_grid_mask(tiles)
        self._cols[rows] = tiles[:, 0]
        self._in_grid[rows] = in_grid
        self._mark_cols_dirty(tiles[in_grid, 0])

    def insert(self, new_points: np.ndarray) -> np.ndarray:
        """Add nodes (fresh ids at the end of the id space); returns their ids."""
        new = as_points(new_points)
        m = len(new)
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        if self._n + m > self._capacity:
            self._grow(max(2 * self._capacity, self._n + m))
        ids = np.arange(self._n, self._n + m, dtype=np.int64)
        self._buf[ids] = new
        self._alive[ids] = True
        tiles = self.tiling.tile_of_points(new)
        in_grid = self.tiling.in_grid_mask(tiles)
        self._cols[ids] = tiles[:, 0]
        self._in_grid[ids] = in_grid
        self._n += m
        self._mark_cols_dirty(tiles[in_grid, 0])
        return ids

    def delete(self, rows: np.ndarray) -> None:
        """Remove alive nodes; their ids are never reused."""
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        self._check_alive(rows)
        old = rows[self._in_grid[rows]]
        self._mark_cols_dirty(self._cols[old])
        self._alive[rows] = False

    def _grow(self, capacity: int) -> None:
        """Reallocate the position buffer (values, ids and results unchanged)."""
        if self._executor == "process":
            new_shm = create_block(POSITIONS.nbytes(capacity))
            new_buf = POSITIONS.view(new_shm.buf, capacity)
            new_buf[: self._n] = self._buf[: self._n]
            old_finalizer = self._finalizer
            self._shm = new_shm
            self._buf = new_buf
            self._finalizer = weakref.finalize(self, _release_block, new_shm)
            if old_finalizer is not None:
                old_finalizer()
        else:
            new_buf = POSITIONS.empty(capacity)
            new_buf[: self._n] = self._buf[: self._n]
            self._buf = new_buf
        for name in ("_alive", "_in_grid", "_cols"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)
        self._capacity = capacity

    # -- building --------------------------------------------------------------
    def _shard_rows(self, shard: int) -> np.ndarray:
        start, stop = self.col_ranges[shard]
        n = self._n
        mask = (
            self._alive[:n]
            & self._in_grid[:n]
            & (self._cols[:n] >= start - 1)
            & (self._cols[:n] <= stop)
        )
        return np.nonzero(mask)[0].astype(np.int64)

    def build(self) -> DistributedBuildResult:
        """Rebuild every shard from the current deployment and stitch."""
        self._dirty = set(range(self.n_shards))
        return self.rebuild_dirty()

    def rebuild_dirty(self) -> DistributedBuildResult:
        """Re-run only the dirty shards, restitch, and return the result."""
        dirty = sorted(self._dirty)
        live = [shard for shard in dirty if self.col_ranges[shard][0] != self.col_ranges[shard][1]]
        for shard in dirty:
            if shard not in live:
                self._results[shard] = ShardResult(shard_id=shard)
        if live:
            rows_per_shard = {shard: self._shard_rows(shard) for shard in live}
            if self._executor == "serial":
                for shard in live:
                    self._results[shard] = self._build_serial_shard(shard, rows_per_shard[shard])
            else:
                self._run_process_tasks(live, rows_per_shard)
        self._dirty.clear()
        self._last = self._stitch()
        return self._last

    def _fire_shard_fault(self) -> Optional[Fault]:
        """One ``shard.build`` occurrence (per build *attempt*, so a retried
        shard advances the plan and typically succeeds on resubmission)."""
        if self._injector is None:
            return None
        return self._injector.fire("shard.build")

    def _note_resubmission(self, failures: int, shard: int) -> None:
        self.fault_resubmissions += 1
        if self._sleep is not None:
            self._sleep(self._retry.delay(failures))

    def _build_serial_shard(self, shard: int, rows: np.ndarray) -> ShardResult:
        """One shard's build, inline, with crash faults retried in place."""
        start, stop = self.col_ranges[shard]

        def attempt() -> ShardResult:
            fault = self._fire_shard_fault()
            if fault is not None and fault.kind == CRASH:
                raise InjectedWorkerCrash(f"injected crash in shard {shard}")
            # A serial stall is a no-op beyond the occurrence bookkeeping:
            # there is no concurrent progress for a straggler to hold back.
            result = build_shard(self._buf, rows, self.spec, self.tiling, start, stop, self.k)
            result.shard_id = shard
            return result

        try:
            # _note_resubmission sleeps the backoff itself, so no `sleep` here
            # (it would back off twice per retry).
            return call_with_retry(
                attempt,
                policy=self._retry,
                retry_on=(InjectedWorkerCrash,),
                on_retry=lambda failures, _delay, _err: self._note_resubmission(failures, shard),
            )
        except RetryError as err:
            raise FaultToleranceExceeded(
                f"shard {shard} crashed {self._retry.max_attempts} time(s); "
                "raising instead of stitching a partial build"
            ) from err

    def _make_task(
        self, shard: int, rows_shm_name: str, total: int, offset: int, count: int
    ) -> ShardTask:
        start, stop = self.col_ranges[shard]
        fault = self._fire_shard_fault()
        crash = fault is not None and fault.kind == CRASH and fault.arg < 1.0
        hard = fault is not None and fault.kind == CRASH and fault.arg >= 1.0
        stall = fault.arg if (fault is not None and fault.kind == STALL) else 0.0
        return ShardTask(
            shard_id=shard,
            col_start=start,
            col_stop=stop,
            spec=self.spec,
            tiling=self.tiling,
            k=self.k,
            positions_shm=self._shm.name,
            capacity=self._capacity,
            rows_shm=rows_shm_name,
            rows_total=total,
            rows_offset=offset,
            rows_count=count,
            crash=crash,
            hard_crash=hard,
            stall_s=float(stall),
        )

    def _reset_pool(self) -> None:
        """Replace a broken pool (a worker died hard, taking the pool down)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.pool_restarts += 1

    def _run_process_tasks(self, shards: Sequence[int], rows_per_shard: Dict[int, np.ndarray]) -> None:
        """Submit one task per shard; resubmit crashed attempts with backoff.

        Unlike a bare ``pool.map``, each shard is an independent future: an
        :class:`~repro.faults.plan.InjectedWorkerCrash` fails only its own
        shard (resubmitted up to the retry budget), and a hard worker death
        (``BrokenProcessPool``) fails the in-flight shards, after which the
        pool is recreated and those shards are resubmitted.  A shard whose
        attempts run out raises
        :class:`~repro.faults.plan.FaultToleranceExceeded` — the stitched
        result is all-or-nothing.
        """
        total = int(sum(len(rows_per_shard[shard]) for shard in shards))
        rows_shm = create_block(ROW_IDS.nbytes(max(total, 1)))
        try:
            rows_block = ROW_IDS.view(rows_shm.buf, total)
            offsets: Dict[int, Tuple[int, int]] = {}
            offset = 0
            for shard in shards:
                rows = rows_per_shard[shard]
                rows_block[offset : offset + len(rows)] = rows
                offsets[shard] = (offset, len(rows))
                offset += len(rows)

            attempts = {shard: 1 for shard in shards}
            remaining = list(shards)
            while remaining:
                pool = self._ensure_pool()
                futures = {}
                for shard in remaining:
                    shard_offset, count = offsets[shard]
                    task = self._make_task(shard, rows_shm.name, total, shard_offset, count)
                    futures[pool.submit(run_shard_task, task)] = shard
                failed: List[int] = []
                broken = False
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        shard = futures[future]
                        try:
                            result = future.result()
                        except InjectedWorkerCrash:
                            failed.append(shard)
                        except BrokenProcessPool:
                            failed.append(shard)
                            broken = True
                        else:
                            self._results[result.shard_id] = result
                if broken:
                    self._reset_pool()
                for shard in failed:
                    if attempts[shard] >= self._retry.max_attempts:
                        raise FaultToleranceExceeded(
                            f"shard {shard} crashed {attempts[shard]} time(s); "
                            "raising instead of stitching a partial build"
                        )
                    self._note_resubmission(attempts[shard], shard)
                    attempts[shard] += 1
                remaining = sorted(failed)
        finally:
            rows_shm.close()
            rows_shm.unlink()

    def _stitch(self) -> DistributedBuildResult:
        edge_set: set[Tuple[int, int]] = set()
        representatives: Dict[TileIndex, int] = {}
        relays: Dict[TileIndex, Dict[str, int]] = {}
        counts: Dict[str, int] = {}
        for result in self._results:
            if result is None:
                continue
            for tile, rep, tile_relays in result.good:
                representatives[tile] = rep
                relays[tile] = dict(tile_relays)
            if len(result.edges):
                edge_set.update((int(a), int(b)) for a, b in result.edges.tolist())
            for kind, value in result.counts.items():
                counts[kind] = counts.get(kind, 0) + value
        good_tiles = sorted(representatives)
        by_kind = {kind: counts[kind] for kind in _MESSAGE_KINDS if kind in counts}
        for kind in sorted(counts):
            by_kind.setdefault(kind, counts[kind])
        stats = NetworkStats(
            rounds=_PROTOCOL_ROUNDS,
            messages_sent=sum(counts.values()),
            messages_by_kind=by_kind,
        )
        edges = (
            np.asarray(sorted(edge_set), dtype=np.int64)
            if edge_set
            else np.zeros((0, 2), dtype=np.int64)
        )
        return DistributedBuildResult(
            edges=edges,
            representatives={tile: representatives[tile] for tile in good_tiles},
            relays={tile: relays[tile] for tile in good_tiles},
            good_tiles=good_tiles,
            stats=stats,
        )

    def result(self) -> DistributedBuildResult:
        """The current stitched build (rebuilding dirty shards if needed).

        Unlike the repair engine's cumulative stats, the stitched ``stats``
        always describes one from-scratch protocol execution over the
        *current* deployment — after any interleaving of moves and churn it
        equals a fresh ``distributed_build``'s accounting.
        """
        if self._last is None or self._dirty:
            return self.rebuild_dirty()
        return self._last

    def info(self) -> ShardedBuildInfo:
        """Per-shard accounting of the shards' most recent builds."""
        shards = tuple(
            ShardAccounting(
                shard_id=result.shard_id,
                n_owned=result.n_owned,
                n_halo=result.n_halo,
                wall_s=result.wall_s,
                max_rss_kb=result.max_rss_kb,
            )
            for result in self._results
            if result is not None
        )
        return ShardedBuildInfo(n_shards=self.n_shards, shards=shards)

    def matches_unsharded(self, reference: DistributedBuildResult | None = None) -> bool:
        """Certify the stitched state against a from-scratch unsharded build.

        ``reference`` may pass a precomputed ``distributed_build`` over
        :meth:`positions` (callers timing the baseline reuse it here); by
        default one is computed now.
        """
        got = self.result()
        if reference is None:
            # radio_range=None: this certifies decision equivalence; locality
            # is a property of the construction's geometry, checked by the
            # simulated build (arbitrary churned deployments may violate it).
            reference = distributed_build(
                self.positions(), self.spec, self.window, k=self.k, radio_range=None
            )
        return matches_unsharded(got, reference, ids=self.alive_ids())


def sharded_build(
    points: np.ndarray,
    spec: TileSpec,
    window: Rect,
    k: int | None = None,
    n_shards: int = 4,
    executor: str = "process",
    max_workers: int | None = None,
    injector: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> Tuple[DistributedBuildResult, ShardedBuildInfo]:
    """One-shot sharded build; returns the stitched result and its accounting."""
    with ShardedBuilder(
        points,
        spec,
        window,
        k=k,
        n_shards=n_shards,
        executor=executor,
        max_workers=max_workers,
        injector=injector,
        retry=retry,
        sleep=sleep,
    ) as builder:
        result = builder.build()
        return result, builder.info()
