"""Synchronous message-passing network simulator.

The simulator models the standard synchronous-round abstraction used by the
distributed-computing literature the paper cites: in each round every node
reads the messages delivered to it in the previous round, updates its local
state and emits new messages, which are delivered at the start of the next
round.  Radio constraints are enforced at send time: a node may only message
nodes within its communication radius (one-hop neighbours), which is exactly
the paper's locality requirement P4.

The simulator is deliberately simple — no losses, no collisions — because the
paper's algorithm is analysed under the same assumptions; the energy model of
:mod:`repro.simulation` handles the cost side separately.  Losses *can* be
injected deliberately: a seeded :class:`~repro.faults.plan.FaultInjector`
passed at construction fires scheduled drop/duplicate/delay faults at the
``network.deliver`` point (one occurrence per delivered message), which is
how the chaos tests certify that the protocols above either tolerate the
storm (duplicates, bounded delays healed by retransmission) or fail loudly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple
import weakref

import numpy as np

from repro.distributed.messages import Message
from repro.faults.plan import DELAY, DROP, DUPLICATE, FaultInjector
from repro.geometry.index import build_index
from repro.geometry.primitives import as_points

__all__ = [
    "NetworkStats",
    "MessageNetwork",
    "invalidate_neighbour_cache",
    "clear_neighbour_cache",
]


# -- neighbour-table cache ----------------------------------------------------
#: (id(points), radius, backend) → (weakref to the points array, table).  The
#: table is the expensive precompute of repeated ``distributed_build`` calls
#: on the same deployment; keying on array *identity* (not content) keeps the
#: lookup O(1), and the weakref both drops entries when the deployment dies
#: and guards against CPython reusing the id of a collected array.
_NEIGHBOUR_CACHE: Dict[Tuple[int, float, str], Tuple[weakref.ref, List[np.ndarray]]] = {}


def _cached_neighbour_table(
    points: np.ndarray, radius: float, backend: str
) -> List[np.ndarray]:
    key = (id(points), float(radius), backend)
    entry = _NEIGHBOUR_CACHE.get(key)
    if entry is not None and entry[0]() is points:
        return entry[1]
    index = build_index(points, radius=radius, backend=backend)
    table = index.neighbour_lists(radius)
    try:
        ref = weakref.ref(points, lambda _: _NEIGHBOUR_CACHE.pop(key, None))
    except TypeError:  # non-weakrefable array subclass: just don't cache
        return table
    _NEIGHBOUR_CACHE[key] = (ref, table)
    return table


def invalidate_neighbour_cache(points: np.ndarray) -> None:
    """Drop cached neighbour tables of one positions array.

    Required whenever an array that was handed to a :class:`MessageNetwork`
    is mutated *in place* (the dynamics layer does this on node moves);
    replacing the array with a fresh object needs no invalidation because
    the cache keys on identity.
    """
    stale = [key for key, (ref, _) in _NEIGHBOUR_CACHE.items() if ref() is points]
    for key in stale:
        _NEIGHBOUR_CACHE.pop(key, None)


def clear_neighbour_cache() -> None:
    """Drop every cached neighbour table (test isolation hook)."""
    _NEIGHBOUR_CACHE.clear()


@dataclass
class NetworkStats:
    """Accounting of a distributed execution.

    Attributes
    ----------
    rounds: number of synchronous rounds executed.
    messages_sent: total messages sent (a broadcast to m neighbours counts m).
    messages_by_kind: per-kind message counts.
    dropped/duplicated/delayed: injected-fault accounting (all zero on a
    fault-free network, so fault-free stats stay byte-identical).
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0

    def record(self, message: Message) -> None:
        self.messages_sent += 1
        self.messages_by_kind[message.kind] = self.messages_by_kind.get(message.kind, 0) + 1


class MessageNetwork:
    """A set of positioned nodes exchanging messages in synchronous rounds.

    Parameters
    ----------
    points:
        ``(n, 2)`` node positions; node ids are the row indices.
    radio_range:
        Maximum distance over which a message can be sent.  ``None`` disables
        the check (useful for unit tests of upper layers).
    index_backend:
        Spatial-index backend (:func:`repro.geometry.index.build_index`) used
        to precompute the one-hop neighbour table.
    use_cache:
        Reuse the neighbour table across networks built over the *same*
        positions array object and radio range (repeated
        ``distributed_build`` calls on one deployment).  The cache keys on
        array identity; callers that mutate a positions array in place must
        call :func:`invalidate_neighbour_cache` (the dynamics layer does).

    When a radio range is given, the full neighbour table is computed once at
    construction with one bulk ``neighbour_lists`` query; every subsequent
    locality check in :meth:`send` is then an O(log degree) membership probe
    on the sender's sorted neighbour array instead of a per-message distance
    computation (and no second copy of the table is materialised).  The table
    uses the backends' exact closed ball (true distance ``<= r``, see
    :func:`repro.geometry.index.within_ball`), so "can message" and "is a
    neighbour" agree on every boundary pair.
    """

    def __init__(
        self,
        points: np.ndarray,
        radio_range: float | None = None,
        index_backend: str = "grid",
        use_cache: bool = True,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.points = as_points(points)
        self.radio_range = radio_range
        self.index_backend = index_backend
        self.stats = NetworkStats()
        self.injector = injector
        self._outbox: List[Message] = []
        self._delayed: List[Message] = []
        self._inboxes: Dict[int, List[Message]] = defaultdict(list)
        self._neighbours: Optional[List[np.ndarray]] = None
        if radio_range is not None and len(self.points):
            if use_cache:
                self._neighbours = _cached_neighbour_table(
                    self.points, radio_range, index_backend
                )
            else:
                index = build_index(self.points, radius=radio_range, backend=index_backend)
                self._neighbours = index.neighbour_lists(radio_range)

    @property
    def n_nodes(self) -> int:
        return len(self.points)

    # -- sending ---------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue a message for delivery at the next round.

        Raises
        ------
        ValueError
            If either endpoint does not exist or the recipient is out of radio
            range (a locality violation — the construction algorithm must
            never do this).
        """
        if message.sender >= self.n_nodes or message.recipient >= self.n_nodes:
            raise ValueError("message endpoints must be existing node ids")
        if (
            self._neighbours is not None
            and message.recipient != message.sender
            and not self._is_neighbour(message.sender, message.recipient)
        ):
            d = float(np.linalg.norm(self.points[message.sender] - self.points[message.recipient]))
            raise ValueError(
                f"locality violation: node {message.sender} tried to message node "
                f"{message.recipient} at distance {d:.6g} > radio range {self.radio_range:.6g}"
            )
        self._outbox.append(message)
        self.stats.record(message)

    def _is_neighbour(self, sender: int, recipient: int) -> bool:
        """Membership probe on the sender's sorted neighbour array."""
        neighbours = self._neighbours[sender]
        pos = int(np.searchsorted(neighbours, recipient))
        return pos < len(neighbours) and neighbours[pos] == recipient

    def broadcast(self, sender: int, recipients: Iterable[int], kind: str, payload=None) -> None:
        """Send the same message to several recipients (counts one message each).

        The default payload is a *fresh* dict per recipient, so a receiver
        mutating its payload cannot leak the mutation into the other
        recipients' inboxes.  An explicit payload (falsy ones included) is
        shared by reference, as for :meth:`send`.
        """
        for recipient in recipients:
            if recipient == sender:
                continue
            self.send(Message(sender, int(recipient), kind, {} if payload is None else payload))

    def neighbours_of(self, node: int) -> np.ndarray:
        """One-hop neighbours of ``node`` under the radio range (empty if unlimited)."""
        if self._neighbours is None:
            return np.zeros(0, dtype=np.int64)
        return self._neighbours[int(node)].copy()

    # -- round execution ---------------------------------------------------------
    def deliver_round(self) -> Dict[int, List[Message]]:
        """Deliver all queued messages and advance the round counter.

        Returns the per-recipient inboxes for the round that just started.
        With a fault injector attached, each message to deliver is one
        occurrence of the ``network.deliver`` point: a *drop* fault loses
        the message, a *duplicate* delivers it twice, a *delay* holds it
        back for the start of the next round (messages delayed in an
        earlier round deliver first, preserving per-sender order).
        """
        inboxes: Dict[int, List[Message]] = defaultdict(list)
        queue = self._delayed + self._outbox
        self._delayed = []
        self._outbox = []
        for message in queue:
            fault = self.injector.fire("network.deliver") if self.injector else None
            if fault is not None:
                if fault.kind == DROP:
                    self.stats.dropped += 1
                    continue
                if fault.kind == DELAY:
                    self.stats.delayed += 1
                    self._delayed.append(message)
                    continue
                if fault.kind == DUPLICATE:
                    self.stats.duplicated += 1
                    inboxes[message.recipient].append(message)
            inboxes[message.recipient].append(message)
        self.stats.rounds += 1
        self._inboxes = inboxes
        return inboxes

    def run_phase(
        self,
        step: Callable[[int, List[Message], "MessageNetwork"], None],
        nodes: Sequence[int] | None = None,
        rounds: int = 1,
    ) -> None:
        """Run ``rounds`` synchronous rounds of a phase.

        ``step(node, inbox, network)`` is called once per node per round with
        the messages delivered to that node at the start of the round; any
        messages it sends are delivered at the next round.
        """
        node_ids = list(range(self.n_nodes)) if nodes is None else list(nodes)
        for _ in range(rounds):
            inboxes = self.deliver_round()
            for node in node_ids:
                step(int(node), inboxes.get(int(node), []), self)
