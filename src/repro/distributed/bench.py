"""S04 — sharded build/repair scaling against the simulated baseline.

Times the PR-7 domain-decomposed :class:`~repro.distributed.sharding.ShardedBuilder`
against the simulated :func:`~repro.distributed.construct.distributed_build`
on the same deployment, across a ladder of shard counts, and certifies every
stitched result with :func:`~repro.distributed.sharding.matches_unsharded`.
Three arms:

* **build** — one unsharded baseline build (its result doubles as the
  certificate reference), then one sharded build per entry of
  ``shard_counts`` with throughput (nodes/s) and halo-overhead accounting.
* **repair** — movers confined to one shard's interior columns, so exactly
  one shard dirties; times :meth:`~repro.distributed.sharding.ShardedBuilder.rebuild_dirty`
  against a full sharded rebuild of the identical post-move deployment and
  certifies the spliced result against the rebuilt one.
* **million** (``million_nodes > 0``) — a from-scratch sharded build at
  ``million_nodes`` scale, certified 4-shards-vs-1-shard (the simulated
  baseline is not run at this size; stitched results are canonical, so
  byte-comparing the two shardings is exact).

On a single-core host the shard counts tie on wall-clock — the headline
speedup is the *algorithmic* one over the simulated build (no per-message
objects, no neighbour table, vectorised classification), which is also what
the sharded path buys per core once real cores exist.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.analysis.spatial_bench import _best_of
from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.construct import DistributedBuildResult, distributed_build
from repro.distributed.sharding import ShardedBuilder, matches_unsharded
from repro.dynamics.mobility import reflect_into
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.runner.registry import register

__all__ = ["experiment_s04_sharded_build"]


def _null_headline() -> Dict:
    return {
        "shard_invariance": None,
        "speedup_4shards_vs_unsharded": None,
        "nodes_per_s_4shards": None,
        "halo_overhead_4shards": None,
        "shard_repair_speedup_vs_full": None,
        "repair_matches": None,
        "million_nodes_ok": None,
        "million_nodes_per_s": None,
    }


@register("S04")
def experiment_s04_sharded_build(
    n_points: int = 200000,
    intensity: float = 2.0,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    move_count: int = 500,
    executor: str = "process",
    million_nodes: int = 0,
    repeats: int = 1,
    seed: int = 307,
) -> ExperimentResult:
    """Sharded build/repair scaling (the first BENCH-trajectory experiment).

    Parameters
    ----------
    n_points:
        Target expected deployment size (window side is
        ``sqrt(n_points / intensity)``).
    intensity:
        Poisson deployment intensity.
    shard_counts:
        Shard-count ladder of the build arm; must contain ``4`` (the
        headline count) and ``1`` would make the single-shard overhead
        visible.
    move_count:
        Movers of the repair arm (confined to one shard's interior columns).
    executor:
        ``"process"`` (shared-memory + worker pool) or ``"serial"``.
    million_nodes:
        When positive, adds the large-scale arm at this node count
        (certified 4-shards-vs-1-shard; the simulated baseline is skipped).
    repeats:
        Timing repetitions per arm (best-of).
    seed:
        RNG seed for the deployment and the move plan.
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    if not shard_counts or any(int(s) < 1 for s in shard_counts):
        raise ValueError("shard_counts must be a non-empty sequence of positive ints")
    if 4 not in tuple(int(s) for s in shard_counts):
        raise ValueError("shard_counts must contain 4 (the headline shard count)")
    if move_count < 1:
        raise ValueError("move_count must be positive")
    if million_nodes < 0:
        raise ValueError("million_nodes must be non-negative")
    rng = np.random.default_rng(seed)
    spec = UDGTileSpec.default()
    side = float(np.sqrt(n_points / intensity))
    window = Rect(0, 0, side, side)
    pts = poisson_points(window, intensity, rng)
    title = "Sharded build/repair scaling vs the simulated baseline"
    reference = "Sec. 5 construction at scale (domain decomposition, PR 7)"
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="S04",
            title=title,
            paper_reference=reference,
            rows=[],
            headline=_null_headline(),
            notes=["degenerate realisation (< 2 points); nothing to measure"],
        )

    rows: List[Dict] = []
    headline = _null_headline()

    # -- build arm: simulated baseline, then the shard-count ladder ------------
    # radio_range=None on the baseline: the certificate is about decision
    # equivalence; locality verification is not part of either timed path.
    holder: Dict[str, DistributedBuildResult] = {}

    def run_baseline() -> None:
        holder["ref"] = distributed_build(pts, spec, window, radio_range=None)

    baseline_s = _best_of(repeats, run_baseline)
    ref = holder["ref"]
    rows.append(
        {
            "arm": "build",
            "builder": "unsharded",
            "n": len(pts),
            "build_s": round(baseline_s, 3),
            "nodes_per_s": round(len(pts) / baseline_s),
        }
    )

    invariance = True
    per_count: Dict[int, float] = {}
    for count in (int(s) for s in shard_counts):
        with ShardedBuilder(pts, spec, window, n_shards=count, executor=executor) as builder:
            build_s = _best_of(repeats, builder.build)
            matches = builder.matches_unsharded(reference=ref)
            info = builder.info()
        invariance = invariance and matches
        per_count[count] = build_s
        rows.append(
            {
                "arm": "build",
                "builder": f"sharded-{count}",
                "n": len(pts),
                "build_s": round(build_s, 3),
                "nodes_per_s": round(len(pts) / build_s),
                "halo_overhead": round(info.halo_overhead, 4),
                "max_rss_kb": info.max_rss_kb,
                "matches_unsharded": matches,
            }
        )
        if count == 4:
            headline["speedup_4shards_vs_unsharded"] = round(baseline_s / build_s, 1)
            headline["nodes_per_s_4shards"] = round(len(pts) / build_s)
            headline["halo_overhead_4shards"] = round(info.halo_overhead, 4)
    headline["shard_invariance"] = bool(invariance)

    # -- repair arm: dirty one shard, splice vs full sharded rebuild -----------
    repair = _repair_arm(pts, spec, window, move_count, executor, repeats, rng)
    if repair is None:
        notes_repair = (
            "repair arm skipped: no shard has enough interior columns to confine "
            f"{move_count} movers (world too small for the shard width)"
        )
    else:
        repair_s, full_s, matches = repair
        notes_repair = None
        rows.append({"arm": "repair", "strategy": "rebuild_dirty", "repair_s": round(repair_s, 3)})
        rows.append({"arm": "repair", "strategy": "full_build", "repair_s": round(full_s, 3)})
        headline["shard_repair_speedup_vs_full"] = (
            round(full_s / repair_s, 1) if repair_s > 0 else None
        )
        headline["repair_matches"] = bool(matches)

    # -- million arm: from-scratch sharded build at scale ----------------------
    if million_nodes:
        m_side = float(np.sqrt(million_nodes / intensity))
        m_window = Rect(0, 0, m_side, m_side)
        m_pts = poisson_points(m_window, intensity, rng)
        result_1, wall_1 = _timed_build(m_pts, spec, m_window, 1, executor)
        result_4, wall_4 = _timed_build(m_pts, spec, m_window, 4, executor)
        million_ok = matches_unsharded(result_4, result_1)
        rows.append(
            {
                "arm": "million",
                "builder": "sharded-1",
                "n": len(m_pts),
                "build_s": round(wall_1, 3),
                "nodes_per_s": round(len(m_pts) / wall_1),
            }
        )
        rows.append(
            {
                "arm": "million",
                "builder": "sharded-4",
                "n": len(m_pts),
                "build_s": round(wall_4, 3),
                "nodes_per_s": round(len(m_pts) / wall_4),
                "matches_1shard": million_ok,
            }
        )
        headline["million_nodes_ok"] = bool(million_ok)
        headline["million_nodes_per_s"] = round(len(m_pts) / wall_4)

    notes = [
        "Wall-clock rows vary between reruns; the invariance/matches headlines are "
        "deterministic.  The headline speedup compares the sharded pass against the "
        "simulated message-passing build: on a single-core host the shard counts tie "
        "on wall-clock (the pool serialises), so the algorithmic speedup is the "
        "honest figure — it is what each added core multiplies.  The baseline and "
        "the sharded path both skip radio-range verification (radio_range=None).",
    ]
    if notes_repair:
        notes.append(notes_repair)
    return ExperimentResult(
        experiment_id="S04",
        title=title,
        paper_reference=reference,
        rows=rows,
        headline=headline,
        notes=notes,
    )


def _timed_build(
    pts: np.ndarray, spec: UDGTileSpec, window: Rect, n_shards: int, executor: str
) -> Tuple[DistributedBuildResult, float]:
    with ShardedBuilder(pts, spec, window, n_shards=n_shards, executor=executor) as builder:
        started = time.perf_counter()
        result = builder.build()
        return result, time.perf_counter() - started


def _repair_arm(
    pts: np.ndarray,
    spec: UDGTileSpec,
    window: Rect,
    move_count: int,
    executor: str,
    repeats: int,
    rng: np.random.Generator,
) -> Optional[Tuple[float, float, bool]]:
    """Time rebuild_dirty vs a full rebuild with exactly one shard dirtied.

    Movers stay in tile columns ``[start+2, stop-3]`` of the widest shard and
    displace at most 0.4 tile sides per axis, so old and new columns both lie
    in ``[start+1, stop-2]`` — inside this shard's read span and outside both
    neighbours' halo columns.
    """
    with ShardedBuilder(pts, spec, window, n_shards=4, executor=executor) as builder:
        start, stop = max(builder.col_ranges, key=lambda r: r[1] - r[0])
        if stop - 3 < start + 2:
            return None
        tiles = builder.tiling.tile_of_points(builder.id_positions())
        cols = tiles[:, 0]
        band = np.nonzero(
            builder.tiling.in_grid_mask(tiles) & (cols >= start + 2) & (cols <= stop - 3)
        )[0]
        if len(band) < move_count:
            return None
        movers = np.sort(rng.choice(band, size=move_count, replace=False))
        displacement = rng.uniform(-0.4, 0.4, size=(move_count, 2)) * spec.tile_side
        target = reflect_into(builder.id_positions()[movers] + displacement, window)

        repair_s = np.inf
        spliced: Optional[DistributedBuildResult] = None
        for _ in range(max(1, repeats)):
            builder.build()  # restore a clean full state, then dirty one shard
            builder.move(movers, target)
            started = time.perf_counter()
            spliced = builder.rebuild_dirty()
            repair_s = min(repair_s, time.perf_counter() - started)
            builder.move(movers, pts[movers])  # undo for the next repetition
        builder.move(movers, target)
        full_s = _best_of(repeats, builder.build)
        full = builder.result()
        assert spliced is not None
        return float(repair_s), float(full_s), matches_unsharded(spliced, full)
