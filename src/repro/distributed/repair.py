"""Diff-driven repair of the distributed construction.

Re-running :func:`~repro.distributed.construct.distributed_build` from scratch
on every timestep of a mobile deployment pays the full Figure-7 price —
re-grouping all nodes into tiles, re-electing every region, re-handshaking
every good pair — even when only a handful of nodes moved.  The construction,
however, is perfectly local: every decision of the algorithm is a function of
one tile's membership and coordinates (elections, goodness) or of one
adjacent tile pair's elected leaders (overlay edges).  A diff of node
positions therefore bounds exactly which decisions can change.

:class:`DistributedRepairEngine` exploits that.  It consumes the dirty-id
stream of a :class:`~repro.dynamics.incremental.DynamicSpatialIndex` (the
same stream the :class:`~repro.dynamics.topology.TopologyTracker` repairs UDG
edges from — pass the consumed ``(dirty, deleted)`` pair explicitly to share
one stream between both consumers) and, per :meth:`~DistributedRepairEngine.update`:

1. **Re-tiles only the moved/inserted/deleted nodes** — a moved node marks
   its old and new tile dirty (a move *within* a tile still changes election
   distances, so the tile is dirty even without a membership change).
2. **Re-elects and re-classifies only the dirty tiles**, through the very
   helpers :func:`distributed_build` itself runs
   (:func:`~repro.distributed.construct.region_members_of_tile`,
   :func:`~repro.distributed.construct.elect_tile_leaders`,
   :func:`~repro.distributed.construct.tile_goodness`) — repair equals
   rebuild by shared implementation, not by luck, and the property tests pin
   it over random mobility/churn interleavings.
3. **Re-splices only the overlay edges of tile pairs whose endpoints
   changed** (representative, relays or goodness), via
   :func:`~repro.distributed.construct.cross_tile_edges`; edges between two
   untouched good tiles are never revisited.

Everything runs in stable *node-id* space, so results remain comparable
across arrivals and failures; a from-scratch ``distributed_build`` over the
compacted positions maps onto the engine's result through
``index.ids()[...]``.

The engine computes the protocol's decisions directly instead of simulating
message delivery (the deterministic election rule is exactly what the
messaging converges to), but it keeps faithful
:class:`~repro.distributed.network.NetworkStats` accounting of the messages
and rounds the repair protocol *would* exchange: candidate broadcasts in
re-elected regions, connect/goodness handshakes in re-decided tiles, border
handshakes on re-spliced pairs.  Comparing that against a from-scratch run's
stats is the message-complexity story of the M02 workload.  What the engine
deliberately does not re-verify is radio-range locality — that is a property
of the construction's geometry (checked by the simulated
``distributed_build`` and the spec's guarantee margins), not of the repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.tiles_base import TileSpec
from repro.core.tiling import TileIndex, Tiling
from repro.distributed.construct import (
    DistributedBuildResult,
    cross_tile_edges,
    distributed_build,
    elect_tile_leaders,
    region_members_of_tile,
    tile_goodness,
)
from repro.distributed.network import NetworkStats
from repro.geometry.primitives import Rect
from repro.kernels import ops as kernel_ops

if TYPE_CHECKING:  # no runtime dependency on the dynamics layer
    from repro.dynamics.incremental import DynamicSpatialIndex

__all__ = ["RepairReport", "DistributedRepairEngine", "repair_build"]

#: Each unordered adjacent tile pair is owned by its left/bottom tile.
_PAIR_DIRECTIONS = ("right", "top")

#: Synchronous rounds of one construction pass (election, connect-request,
#: connect-ack, goodness, border) — what a repair step re-runs for its dirty
#: tiles.
_PROTOCOL_ROUNDS = 5

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class RepairReport:
    """What one :meth:`DistributedRepairEngine.update` actually did.

    ``dirty_tiles`` counts tiles whose election inputs changed (membership or
    member coordinates); ``changed_tiles`` the subset whose *outcome*
    (goodness, representative or relays) changed; ``respliced_pairs`` the
    adjacent tile pairs whose overlay edges were recomputed; ``messages`` the
    protocol messages the repair exchanged.  A report full of zeros means the
    diff provably could not have changed the overlay.
    """

    dirty_tiles: int
    changed_tiles: int
    re_elected_regions: int
    respliced_pairs: int
    messages: int

    @property
    def touched(self) -> bool:
        return self.dirty_tiles > 0


class DistributedRepairEngine:
    """Maintains a :class:`DistributedBuildResult` over a dynamic deployment.

    Parameters
    ----------
    index:
        The :class:`~repro.dynamics.incremental.DynamicSpatialIndex` holding
        the deployment.  Construction performs one full pass over the current
        alive nodes and consumes any pending dirty stream (updates made
        before the engine existed are already reflected in the full pass).
    spec:
        Tile specification (UDG or NN), as for ``distributed_build``.
    window:
        Deployment window defining the tiling.
    k:
        NN occupancy-cap parameter (ignored by UDG specs).

    After construction, call :meth:`update` once per batch of index updates;
    :meth:`result` returns the current spliced build at any time.
    """

    def __init__(
        self,
        index: "DynamicSpatialIndex",
        spec: TileSpec,
        window: Rect,
        k: int | None = None,
    ) -> None:
        self.index = index
        self.spec = spec
        self.window = window
        self.k = k
        self.tiling = Tiling(window=window, tile_side=spec.tile_side)
        self._cap = spec.max_points_per_tile(k)
        self._rep_region = spec.representative_region
        self.stats = NetworkStats()

        #: tile → set of member node ids (in-grid tiles with ≥ 1 member only).
        self._members: Dict[TileIndex, Set[int]] = {}
        #: node id → its in-grid tile (off-grid nodes are absent).
        self._node_tile: Dict[int, TileIndex] = {}
        #: tile → elected leader per non-empty region (tiles with members only).
        self._leaders: Dict[TileIndex, Dict[str, int]] = {}
        #: good tiles and their present relay mapping.
        self._good: Set[TileIndex] = set()
        self._relays: Dict[TileIndex, Dict[str, int]] = {}
        #: (tile, direction) → spliced overlay edges of that good pair.
        self._pair_edges: Dict[Tuple[TileIndex, str], List[Tuple[int, int]]] = {}

        index.consume_dirty()
        self._full_pass()

    # -- construction ----------------------------------------------------------
    def _full_pass(self) -> None:
        ids = self.index.ids()
        if len(ids):
            positions = self.index.id_positions()[ids]
            tiles = self.tiling.tile_of_points(positions)
            in_grid = self.tiling.in_grid_mask(tiles)
            for row in np.nonzero(in_grid)[0].tolist():
                tile = (int(tiles[row, 0]), int(tiles[row, 1]))
                node = int(ids[row])
                self._members.setdefault(tile, set()).add(node)
                self._node_tile[node] = tile
        for tile in list(self._members):
            self._classify_tile(tile)
        for tile in self._good:
            for direction in _PAIR_DIRECTIONS:
                self._resplice_pair(tile, direction)
        self.stats.rounds += _PROTOCOL_ROUNDS

    def _count(self, kind: str, n: int) -> None:
        if n <= 0:
            return
        self.stats.messages_sent += n
        self.stats.messages_by_kind[kind] = self.stats.messages_by_kind.get(kind, 0) + n

    def _classify_tile(self, tile: TileIndex) -> Tuple[bool, int]:
        """Re-run election + goodness for one tile.

        Returns ``(outcome_changed, regions_elected)`` where the outcome is
        the triple the overlay depends on: goodness, representative, relays.
        """
        old = (
            tile in self._good,
            self._leaders.get(tile, {}).get(self._rep_region),
            self._relays.get(tile),
        )
        members = self._members.get(tile)
        if not members:
            self._members.pop(tile, None)
            self._leaders.pop(tile, None)
            self._relays.pop(tile, None)
            self._good.discard(tile)
            return old != (False, None, None), 0

        member_idx = np.fromiter(sorted(members), dtype=np.int64, count=len(members))
        pts = self.index.id_positions()
        center = self.tiling.tile_center(tile)
        regions = region_members_of_tile(pts, member_idx, center, self.spec)
        leaders = elect_tile_leaders(pts, regions, center, self.spec)
        for region_members in regions.values():
            m = len(region_members)
            if m >= 2:
                self._count("candidate", m * (m - 1))
        good, present = tile_goodness(self.spec, leaders, len(member_idx), self._cap)
        if self._rep_region in leaders:
            rep = leaders[self._rep_region]
            handshakes = sum(1 for relay in present.values() if relay != rep)
            self._count("connect-request", handshakes)
            self._count("connect-ack", handshakes)
            if good:
                self._count("tile-good", handshakes)

        self._leaders[tile] = leaders
        if good:
            self._good.add(tile)
            self._relays[tile] = present
        else:
            self._good.discard(tile)
            self._relays.pop(tile, None)
        new = (good, leaders.get(self._rep_region), present if good else None)
        return old != new, len(leaders)

    def _resplice_pair(self, tile: TileIndex, direction: str) -> bool:
        """Recompute one adjacent pair's overlay edges; True when it is live."""
        if not self.tiling.contains_tile(tile):
            return False
        neighbour = self.tiling.neighbours(tile).get(direction)
        key = (tile, direction)
        if neighbour is None or tile not in self._good or neighbour not in self._good:
            self._pair_edges.pop(key, None)
            return False
        edges, (a, b) = cross_tile_edges(
            self.spec,
            direction,
            self._leaders[tile][self._rep_region],
            self._relays[tile],
            self._leaders[neighbour][self._rep_region],
            self._relays[neighbour],
        )
        self._pair_edges[key] = edges
        if a != b:
            self._count("border-request", 1)
            self._count("border-ack", 1)
        return True

    # -- repair ----------------------------------------------------------------
    def update(
        self,
        dirty: Optional[np.ndarray] = None,
        deleted: Optional[np.ndarray] = None,
    ) -> RepairReport:
        """Absorb an index diff and repair only what it can have changed.

        With no arguments the engine consumes the index's own dirty stream
        (:meth:`~repro.dynamics.incremental.DynamicSpatialIndex.consume_dirty`);
        pass the already-consumed ``(dirty, deleted)`` pair explicitly when a
        topology tracker shares the same stream.  Passing only one of the
        two is rejected — it would silently drop the other half of the diff.
        """
        if (dirty is None) != (deleted is None):
            raise ValueError(
                "pass both dirty and deleted (one consumed stream), or neither"
            )
        if dirty is None:
            dirty, deleted = self.index.consume_dirty()
        dirty = np.asarray(dirty, dtype=np.int64).reshape(-1)
        deleted = np.asarray(deleted, dtype=np.int64).reshape(-1)
        if dirty.size == 0 and deleted.size == 0:
            # An empty diff provably cannot change any tile: true no-op —
            # no dirty-set bookkeeping, no stats churn, no protocol rounds.
            return RepairReport(0, 0, 0, 0, 0)
        messages_before = self.stats.messages_sent

        dirty_tiles: Set[TileIndex] = set()
        for node in deleted.tolist():
            tile = self._node_tile.pop(node, None)
            if tile is not None:
                self._members[tile].discard(node)
                dirty_tiles.add(tile)
        if dirty.size:
            positions = self.index.id_positions()[dirty]
            tiles = self.tiling.tile_of_points(positions)
            in_grid = self.tiling.in_grid_mask(tiles)
            for i, node in enumerate(dirty.tolist()):
                new_tile = (int(tiles[i, 0]), int(tiles[i, 1])) if in_grid[i] else None
                old_tile = self._node_tile.get(node)
                if old_tile is not None:
                    dirty_tiles.add(old_tile)
                    if new_tile != old_tile:
                        self._members[old_tile].discard(node)
                if new_tile is not None:
                    dirty_tiles.add(new_tile)
                    self._members.setdefault(new_tile, set()).add(node)
                    self._node_tile[node] = new_tile
                elif old_tile is not None:
                    del self._node_tile[node]

        changed: List[TileIndex] = []
        re_elected = 0
        for tile in dirty_tiles:
            outcome_changed, regions = self._classify_tile(tile)
            re_elected += regions
            if outcome_changed:
                changed.append(tile)

        pairs: Set[Tuple[TileIndex, str]] = set()
        for col, row in changed:
            pairs.add(((col, row), "right"))
            pairs.add(((col, row), "top"))
            pairs.add(((col - 1, row), "right"))
            pairs.add(((col, row - 1), "top"))
        respliced = sum(1 for tile, direction in pairs if self._resplice_pair(tile, direction))

        if dirty_tiles:
            self.stats.rounds += _PROTOCOL_ROUNDS
        return RepairReport(
            dirty_tiles=len(dirty_tiles),
            changed_tiles=len(changed),
            re_elected_regions=re_elected,
            respliced_pairs=respliced,
            messages=self.stats.messages_sent - messages_before,
        )

    # -- views -----------------------------------------------------------------
    def result(self) -> DistributedBuildResult:
        """The current spliced build, in stable node-id space.

        ``good_tiles`` is sorted (the canonical order — ``distributed_build``
        emits discovery order instead, so compare as sets); edges are sorted
        ``(min, max)`` pairs exactly as the from-scratch result's.  ``stats``
        is the engine's *cumulative* protocol accounting: the initial full
        pass plus every repair since.
        """
        # Canonical sorted unique pairs from the per-(tile, direction) edge
        # fragments — the splice_edges kernel replaces the scalar
        # set-union + sorted() splice byte-identically.
        edge_array = kernel_ops.splice_edges(list(self._pair_edges.values()))
        good_tiles = sorted(self._good)
        return DistributedBuildResult(
            edges=edge_array,
            representatives={tile: self._leaders[tile][self._rep_region] for tile in good_tiles},
            relays={tile: dict(self._relays[tile]) for tile in good_tiles},
            good_tiles=good_tiles,
            stats=self.stats,
        )

    def matches_rebuild(self, scratch: DistributedBuildResult | None = None) -> bool:
        """Whether the spliced state equals a from-scratch ``distributed_build``.

        The single equivalence definition every consumer (tests, the S03
        benchmark, the M02 workload, the examples) certifies against: same
        overlay edges, good tiles, representatives *and* relays, with the
        scratch run's compact row indices mapped through ``index.ids()``.
        ``scratch`` may pass a precomputed build over ``index.positions()``
        when the caller also reads its stats.
        """
        got = self.result()
        ids = self.index.ids()
        if scratch is None:
            scratch = distributed_build(
                self.index.positions(), self.spec, self.window, k=self.k
            )
        scratch_edges = (
            ids[scratch.edges] if len(scratch.edges) else np.zeros((0, 2), dtype=np.int64)
        )
        return (
            np.array_equal(got.edges, scratch_edges)
            and set(got.good_tiles) == set(scratch.good_tiles)
            and got.representatives
            == {tile: int(ids[rep]) for tile, rep in scratch.representatives.items()}
            and got.relays
            == {
                tile: {name: int(ids[relay]) for name, relay in relays.items()}
                for tile, relays in scratch.relays.items()
            }
        )


def repair_build(
    index: "DynamicSpatialIndex",
    spec: TileSpec,
    window: Rect,
    k: int | None = None,
    engine: DistributedRepairEngine | None = None,
) -> Tuple[DistributedBuildResult, DistributedRepairEngine]:
    """Maintain a distributed build across index updates, one call per step.

    The first call (``engine=None``) runs the full pass and returns the
    result plus the engine to thread through subsequent calls; each later
    call absorbs the diff accumulated in the index since the previous one and
    returns the repaired result::

        result, engine = repair_build(index, spec, window)
        ...
        index.move(ids, new_positions)
        result, engine = repair_build(index, spec, window, engine=engine)

    Equivalent to ``distributed_build`` over the surviving positions at every
    step (modulo the id ↔ compact-row mapping), at a cost proportional to the
    diff instead of the deployment.
    """
    if engine is None:
        engine = DistributedRepairEngine(index, spec, window, k=k)
    else:
        engine.update()
    return engine.result(), engine
