"""CLI for the invariant linter: ``python -m repro.devtools.lint [paths...]``.

Exit codes: 0 = clean (possibly with baselined/suppressed findings),
1 = new findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
from collections import Counter
from pathlib import Path
import sys
from typing import List, Optional

from repro.devtools.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.devtools.engine import lint_paths
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import RULE_CLASSES, all_rules

DEFAULT_PATHS = ["src", "benchmarks", "examples"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Enforce the repo's determinism/float-safety/concurrency contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: every finding fails the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    return parser


def _list_rules(stream) -> None:
    for cls in RULE_CLASSES:
        stream.write(f"{cls.code} {cls.name}\n    {cls.summary}\n")
        if cls.allow_paths:
            stream.write(f"    allowlisted: {', '.join(cls.allow_paths)}\n")
        if cls.only_paths:
            stream.write(f"    scoped to: {', '.join(cls.only_paths)}\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(sys.stdout)
        return 0

    select = None
    if args.select:
        select = {code.strip() for code in args.select.split(",") if code.strip()}
        known = {cls.code for cls in RULE_CLASSES}
        unknown = select - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")

    try:
        result = lint_paths(args.paths, all_rules(), select=select)
    except FileNotFoundError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover — parser.error raises SystemExit

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = Path(DEFAULT_BASELINE_NAME)
        baseline_path = candidate if candidate.exists() else None

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE_NAME)
        write_baseline(target, result.findings)
        sys.stdout.write(f"wrote {len(result.findings)} baseline entries to {target}\n")
        return 0

    baseline = Counter()
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot load baseline {baseline_path}: {exc}")

    new, grandfathered, unused = split_by_baseline(result.findings, baseline)
    render = render_json if args.format == "json" else render_text
    render(result, new, grandfathered, unused, sys.stdout)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
