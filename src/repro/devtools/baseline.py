"""Baseline support: grandfather existing findings without weakening the gate.

A baseline file is checked-in JSON listing fingerprints of known findings.
Fingerprints are ``(rule, path, stripped source line)`` — deliberately free
of line numbers so unrelated edits do not invalidate the baseline — and are
matched as a *multiset*: two identical violations on different lines need
two baseline entries, and a baselined line that gets fixed simply leaves an
unused entry (reported so it can be pruned).

The repo policy (CONTRIBUTING.md) is that the baseline stays **empty**: new
rules land together with fixes or justified inline suppressions.  The
machinery exists so a future rule with a long tail can still land its gate
on day one.
"""

from __future__ import annotations

from collections import Counter
import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.devtools.engine import Finding

__all__ = ["load_baseline", "write_baseline", "split_by_baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_Fingerprint = Tuple[str, str, str]


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a fingerprint multiset."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"unsupported baseline format in {path} (want version 1)")
    fingerprints: Counter = Counter()
    for entry in data.get("findings", []):
        fingerprints[(entry["rule"], entry["path"], entry["snippet"].strip())] += 1
    return fingerprints


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable bytes)."""
    entries = sorted(
        ({"rule": f.rule, "path": f.path, "snippet": f.snippet.strip()} for f in findings),
        key=lambda e: (e["path"], e["rule"], e["snippet"]),
    )
    payload: Dict[str, object] = {"version": 1, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], Counter]:
    """Partition findings into (new, baselined); also return unused entries.

    Consumes baseline entries greedily in finding order; leftovers are the
    stale entries whose violations no longer exist (candidates for pruning).
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    unused = Counter({fp: n for fp, n in remaining.items() if n > 0})
    return new, grandfathered, unused
