"""repro.devtools — static-analysis tooling that enforces the repo's contracts.

The subpackage hosts a small AST-based lint engine (:mod:`repro.devtools.engine`)
plus a rule pack (:mod:`repro.devtools.rules`) encoding the invariants the
library's correctness rests on: seeded-RNG byte-determinism, exact float
predicates (``within_ball``), injectable clocks, canonical-JSON store records,
single-``os.write`` appends and SQLite transaction discipline.

Run it with::

    python -m repro.devtools.lint src benchmarks examples

Findings can be suppressed per line (``# repro: allow[REPRO102] reason``),
per file (``# repro: allow-file[REPRO301] reason``) or grandfathered in a
checked-in baseline file.  See CONTRIBUTING.md for the rule catalogue and
the suppression policy.

The engine is deliberately stdlib-only: importing :mod:`repro.devtools` must
never require numpy/scipy, so the lint gate can run in any environment.
"""

from repro.devtools.engine import Finding, LintResult, Rule, lint_paths
from repro.devtools.rules import all_rules

__all__ = ["Finding", "LintResult", "Rule", "lint_paths", "all_rules"]
