"""Core of the invariant lint engine: rules, findings, suppression, file walk.

Design notes
------------
* **Stdlib only.**  The engine parses with :mod:`ast` and :mod:`tokenize`;
  it never imports the code under analysis, so a lint run cannot execute
  repo code and needs no third-party packages.
* **Rules are classes.**  A rule subclasses :class:`Rule`, declares a stable
  ``code`` (``REPROxxx``), optional path scoping (``only_paths`` /
  ``allow_paths``) and yields :class:`Finding` objects from :meth:`Rule.check`.
  Each rule receives a fully prepared :class:`FileContext` (source, AST,
  import-alias map, suppression table) so individual rules stay tiny.
* **Suppression is explicit.**  ``# repro: allow[CODE] justification`` on the
  offending line (or the line directly above) silences one finding;
  ``# repro: allow-file[CODE] justification`` silences a rule for a whole
  file; ``allow[*]`` silences every rule.  Suppression comments are read
  from real COMMENT tokens, so string literals can never suppress anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
import io
from pathlib import Path
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintResult",
    "iter_python_files",
    "prepare_file",
    "lint_paths",
    "qualified_name",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow|allow-file)\[(?P<codes>[A-Za-z0-9_*,\s]+)\]"
)

PARSE_ERROR_CODE = "REPRO000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix-style path as passed on the command line
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        ``(rule, path, stripped source line)`` survives unrelated edits that
        shift line numbers; a multiset match in :mod:`repro.devtools.baseline`
        handles duplicates of the same snippet.
        """
        return (self.rule, self.path, self.snippet.strip())

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class Suppressions:
    """Per-file suppression table parsed from ``# repro:`` comments."""

    line_codes: Dict[int, Set[str]] = field(default_factory=dict)
    file_codes: Set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if "*" in self.file_codes or code in self.file_codes:
            return True
        codes = self.line_codes.get(line, ())
        return "*" in codes or code in codes


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str]
    suppressions: Suppressions
    #: ``alias -> fully dotted module`` for ``import numpy as np`` style imports.
    module_aliases: Dict[str, str]
    #: ``name -> fully dotted origin`` for ``from numpy.random import default_rng``.
    from_imports: Dict[str, str]

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].rstrip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.code,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        return qualified_name(node, self.module_aliases, self.from_imports)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``only_paths`` restricts the rule to matching files (empty = all files);
    ``allow_paths`` exempts matching files entirely — that is the mechanism
    for "this module *is* the sanctioned implementation" carve-outs, and
    every entry must be justified in the rule's ``rationale``.
    """

    code: str = "REPRO999"
    name: str = "unnamed-rule"
    summary: str = ""
    rationale: str = ""
    only_paths: Tuple[str, ...] = ()
    allow_paths: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if self.only_paths and not any(_match(relpath, p) for p in self.only_paths):
            return False
        return not any(_match(relpath, p) for p in self.allow_paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> Dict[str, object]:
        return {
            "code": cls.code,
            "name": cls.name,
            "summary": cls.summary,
            "rationale": cls.rationale,
            "only_paths": list(cls.only_paths),
            "allow_paths": list(cls.allow_paths),
        }


def _match(relpath: str, pattern: str) -> bool:
    """fnmatch against the posix relpath, tolerant of leading directories."""
    return fnmatch(relpath, pattern) or fnmatch(relpath, "*/" + pattern)


def qualified_name(
    node: ast.AST,
    module_aliases: Dict[str, str],
    from_imports: Dict[str, str],
) -> Optional[str]:
    """Resolve an expression to a fully dotted name, expanding import aliases.

    ``np.random.default_rng`` (with ``import numpy as np``) resolves to
    ``numpy.random.default_rng``; a bare ``default_rng`` imported via
    ``from numpy.random import default_rng`` resolves the same way.  Returns
    ``None`` for expressions that are not plain dotted names.
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = cur.id
    if root in module_aliases:
        base = module_aliases[root]
    elif root in from_imports:
        base = from_imports[root]
    else:
        base = root
    return ".".join([base, *reversed(parts)]) if parts else base


def _collect_imports(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    module_aliases: Dict[str, str] = {}
    from_imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module_aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    module_aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                from_imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return module_aliases, from_imports


def _collect_suppressions(source: str) -> Suppressions:
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            codes = {c.strip() for c in m.group("codes").split(",") if c.strip()}
            if m.group("kind") == "allow-file":
                sup.file_codes |= codes
            else:
                # A trailing comment suppresses its own line; a standalone
                # comment suppresses the statement on the next line.
                line = tok.start[0]
                sup.line_codes.setdefault(line, set()).update(codes)
                sup.line_codes.setdefault(line + 1, set()).update(codes)
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return sup


def prepare_file(path: Path, relpath: str) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a :class:`FileContext`, or a parse-error finding."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(PARSE_ERROR_CODE, relpath, 1, 0, f"cannot read file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            PARSE_ERROR_CODE,
            relpath,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            f"syntax error: {exc.msg}",
        )
    module_aliases, from_imports = _collect_imports(tree)
    ctx = FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=_collect_suppressions(source),
        module_aliases=module_aliases,
        from_imports=from_imports,
    )
    return ctx, None


_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache", "node_modules"}


def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[Path, str]]:
    """Yield ``(abs_path, display_relpath)`` for every .py file under ``paths``."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root, root.as_posix()
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for sub in sorted(root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in sub.parts):
                continue
            yield sub, sub.as_posix()


@dataclass
class LintResult:
    """Outcome of one lint run, before baseline filtering."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


def lint_paths(
    paths: Sequence[str],
    rules: Iterable[Rule],
    *,
    select: Optional[Set[str]] = None,
) -> LintResult:
    """Run ``rules`` over every Python file under ``paths``.

    ``select`` restricts the run to the given rule codes (used by tests and
    by ``--select`` on the CLI).  Suppressed findings are kept separately so
    reporters can surface how much is being waved through.
    """
    active = [r for r in rules if select is None or r.code in select]
    result = LintResult()
    for path, relpath in iter_python_files(paths):
        ctx, parse_err = prepare_file(path, relpath)
        result.files_checked += 1
        if parse_err is not None:
            result.findings.append(parse_err)
            continue
        assert ctx is not None
        for rule in active:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(ctx):
                if ctx.suppressions.is_suppressed(finding.rule, finding.line):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
