"""The repro rule pack.

Rules are grouped by contract family; stable codes:

* ``REPRO1xx`` — RNG discipline (:mod:`repro.devtools.rules.rng_rules`)
* ``REPRO2xx`` — float safety (:mod:`repro.devtools.rules.float_rules`)
* ``REPRO3xx`` — determinism hygiene / clocks (:mod:`repro.devtools.rules.clock_rules`)
* ``REPRO4xx`` — store & serialization (:mod:`repro.devtools.rules.store_rules`)
* ``REPRO5xx`` — concurrency (:mod:`repro.devtools.rules.concurrency_rules`)
* ``REPRO6xx`` — shared-memory lifecycle (:mod:`repro.devtools.rules.shm_rules`)
* ``REPRO7xx`` — fault tolerance / retry discipline (:mod:`repro.devtools.rules.retry_rules`)
* ``REPRO8xx`` — kernel-layer discipline (:mod:`repro.devtools.rules.kernel_rules`)

``all_rules()`` returns one fresh instance of every registered rule; the
registry is the single source the CLI, the tests and CONTRIBUTING.md verify
against.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.devtools.engine import Rule
from repro.devtools.rules.clock_rules import WallClockRule
from repro.devtools.rules.concurrency_rules import BeginImmediateRule, SqliteThreadRule
from repro.devtools.rules.float_rules import FloatEqualityRule, RawSquaredDistanceRule
from repro.devtools.rules.kernel_rules import InlineKernelIdiomRule
from repro.devtools.rules.retry_rules import BareSleepRetryRule
from repro.devtools.rules.rng_rules import (
    GlobalStateRngRule,
    SeedArithmeticRule,
    UnseededDefaultRngRule,
)
from repro.devtools.rules.shm_rules import SharedMemoryLifecycleRule
from repro.devtools.rules.store_rules import AppendDisciplineRule, CanonicalSerializerRule

RULE_CLASSES: List[Type[Rule]] = [
    GlobalStateRngRule,
    UnseededDefaultRngRule,
    SeedArithmeticRule,
    FloatEqualityRule,
    RawSquaredDistanceRule,
    WallClockRule,
    CanonicalSerializerRule,
    AppendDisciplineRule,
    SqliteThreadRule,
    BeginImmediateRule,
    SharedMemoryLifecycleRule,
    BareSleepRetryRule,
    InlineKernelIdiomRule,
]

__all__ = ["RULE_CLASSES", "all_rules", "rules_by_code"]


def all_rules() -> List[Rule]:
    return [cls() for cls in RULE_CLASSES]


def rules_by_code() -> Dict[str, Type[Rule]]:
    return {cls.code: cls for cls in RULE_CLASSES}
