"""REPRO5xx — SQLite concurrency discipline.

The SQLite store/queue (PR 5) holds two lines: connections are thread-affine
(each worker thread opens its own), and every write transaction opens with
``BEGIN IMMEDIATE`` so lock acquisition happens up front instead of failing
with ``SQLITE_BUSY`` mid-transaction after reads have already been served
from a stale snapshot.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import FileContext, Finding, Rule


class SqliteThreadRule(Rule):
    code = "REPRO501"
    name = "sqlite-thread-affinity"
    summary = (
        "No sqlite3.connect(check_same_thread=False); inside repro.runner, "
        "connect must also pass isolation_level=None."
    )
    rationale = (
        "check_same_thread=False disables sqlite3's only guard against "
        "cross-thread connection sharing, which corrupts in-flight statements "
        "under the WAL setup; open one connection per thread instead.  "
        "isolation_level=None keeps the driver out of implicit-transaction "
        "mode so the BEGIN IMMEDIATE discipline (REPRO502) actually governs "
        "every write."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_runner = self._in_runner(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.qualified_name(node.func) != "sqlite3.connect":
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            cst = kwargs.get("check_same_thread")
            if isinstance(cst, ast.Constant) and cst.value is False:
                yield ctx.finding(
                    self,
                    node,
                    "sqlite3.connect(check_same_thread=False) invites cross-"
                    "thread connection sharing; open one connection per thread",
                )
            if in_runner:
                iso = kwargs.get("isolation_level")
                if not (isinstance(iso, ast.Constant) and iso.value is None):
                    yield ctx.finding(
                        self,
                        node,
                        "sqlite3.connect in runner code must pass "
                        "isolation_level=None (explicit BEGIN IMMEDIATE "
                        "transactions, no driver-managed implicit ones)",
                    )

    @staticmethod
    def _in_runner(relpath: str) -> bool:
        return "/repro/runner/" in f"/{relpath}"


class BeginImmediateRule(Rule):
    code = "REPRO502"
    name = "begin-immediate"
    summary = "SQLite write transactions open with BEGIN IMMEDIATE (or EXCLUSIVE)."
    rationale = (
        "A plain/DEFERRED BEGIN takes no lock until the first write, so two "
        "workers can both read job state and then race the upgrade — the "
        "lease-claim protocol is only atomic because the claim transaction "
        "starts IMMEDIATE (PR 5's two-workers-vs-serial byte-identity test)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("execute", "executescript"):
                continue
            for arg in node.args[:1]:
                if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                    continue
                sql = arg.value.strip().upper()
                if sql.startswith("BEGIN") and not any(
                    kind in sql for kind in ("IMMEDIATE", "EXCLUSIVE")
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "write transaction opened with a deferred BEGIN; use "
                        "BEGIN IMMEDIATE so the write lock is taken up front",
                    )
