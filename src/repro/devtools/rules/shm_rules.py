"""REPRO6xx — shared-memory lifecycle discipline.

The sharded builder (PR 7) passes million-row position arrays to worker
processes through ``multiprocessing.shared_memory``.  A segment that is
created (or even just attached) and never closed/unlinked outlives the
process in ``/dev/shm`` — a leak the OS will not reclaim until reboot.
The rule keeps every acquisition inside a structure that guarantees
release: the sanctioned :mod:`repro.shard.shm` helpers, a context
manager, a ``try``/``finally``, or an owning class with a ``close``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.devtools.engine import FileContext, Finding, Rule

_SHM_QNAMES = frozenset(
    {
        "multiprocessing.shared_memory.SharedMemory",
        "shared_memory.SharedMemory",
    }
)

_RELEASE_METHODS = ("close", "unlink")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)


class SharedMemoryLifecycleRule(Rule):
    code = "REPRO601"
    name = "shm-lifecycle"
    summary = (
        "multiprocessing.shared_memory blocks must be released via a context "
        "manager, a try/finally that closes them, or an owning class with close()."
    )
    rationale = (
        "A SharedMemory segment is a kernel object under /dev/shm: if the "
        "acquiring process dies between the constructor and close()/unlink(), "
        "the segment leaks until reboot (and the resource tracker spams "
        "KeyError warnings at interpreter exit).  Acquire segments through "
        "repro.shard.shm (create_block/attach_block with a documented "
        "owner-vs-worker lifecycle), or keep the constructor visibly inside "
        "a with-statement, a try/finally whose finally calls close()/unlink(), "
        "or a self-attribute of a class that defines close/__exit__/__del__.  "
        "repro/shard/shm.py is exempt: it *is* the sanctioned implementation."
    )
    allow_paths = ("repro/shard/shm.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        calls = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call) and ctx.qualified_name(node.func) in _SHM_QNAMES
        ]
        if not calls:
            return
        parents: Dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(ctx.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in calls:
            if self._is_released(node, parents):
                continue
            yield ctx.finding(
                self,
                node,
                "SharedMemory acquired without a visible release path; use the "
                "repro.shard.shm helpers, a context manager, or a try/finally "
                "that calls close()/unlink()",
            )

    def _is_released(self, call: ast.Call, parents: Dict[ast.AST, ast.AST]) -> bool:
        if self._under_withitem(call, parents):
            return True
        stmt = self._enclosing_statement(call, parents)
        if stmt is None:
            return False
        target = _single_assign_target(stmt, call)
        if isinstance(target, ast.Name):
            return self._scope_finalizes(stmt, target.id, parents)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return self._class_defines_release(stmt, parents)
        return False

    @staticmethod
    def _under_withitem(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
        """True when the call sits inside a ``with`` item's context expression.

        Ascending hits the ``withitem`` before the ``With`` statement exactly
        when the call is part of the context expression (possibly wrapped,
        e.g. ``with closing(SharedMemory(...))``); calls in the ``with`` body
        ascend straight to the ``With`` node instead.
        """
        cur: Optional[ast.AST] = node
        while cur is not None:
            if isinstance(cur, ast.withitem):
                return True
            if isinstance(cur, ast.stmt):
                return False
            cur = parents.get(cur)
        return False

    @staticmethod
    def _enclosing_statement(
        node: ast.AST, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[ast.stmt]:
        cur: Optional[ast.AST] = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = parents.get(cur)
        return cur if isinstance(cur, ast.stmt) else None

    def _scope_finalizes(
        self, stmt: ast.stmt, name: str, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """Some ``try`` in the assignment's scope finalizes ``name``.

        Accepts both shapes — assignment inside the ``try`` body and the
        common acquire-then-``try`` sequence — by scanning every ``try`` in
        the enclosing function/module for a ``finally`` (or handler) that
        calls ``name.close()`` / ``name.unlink()``.
        """
        scope = self._enclosing_scope(stmt, parents)
        for node in ast.walk(scope):
            if isinstance(node, ast.Try):
                cleanup = list(node.finalbody) + [
                    s for handler in node.handlers for s in handler.body
                ]
                for body_stmt in cleanup:
                    if _calls_release_on(body_stmt, name):
                        return True
        return False

    def _class_defines_release(
        self, stmt: ast.stmt, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        cur: Optional[ast.AST] = stmt
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return any(
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and member.name in ("close", "__exit__", "__del__")
                    for member in cur.body
                )
            cur = parents.get(cur)
        return False

    @staticmethod
    def _enclosing_scope(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> ast.AST:
        cur: Optional[ast.AST] = parents.get(node)
        while cur is not None and not isinstance(cur, _SCOPE_NODES):
            cur = parents.get(cur)
        return cur if cur is not None else node


def _single_assign_target(stmt: ast.stmt, call: ast.Call) -> Optional[ast.expr]:
    """The sole target of ``target = SharedMemory(...)``, else None."""
    if isinstance(stmt, ast.Assign) and stmt.value is call and len(stmt.targets) == 1:
        return stmt.targets[0]
    if isinstance(stmt, ast.AnnAssign) and stmt.value is call:
        return stmt.target
    return None


def _calls_release_on(stmt: ast.stmt, name: str) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False
