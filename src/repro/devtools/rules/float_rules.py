"""REPRO2xx — float safety.

PR 2's review cycle exists because ad-hoc float comparisons are where the
spatial-index backends silently diverged (subnormal offsets, half-ULP cell
boundaries, underflowing ``d² <= r²``).  The repo's answer is one shared
exact predicate — :func:`repro.geometry.index.within_ball` — and these rules
keep ad-hoc comparisons from creeping back in.

Static analysis cannot see types, so :class:`FloatEqualityRule` approximates
"float expression" by "float literal on either side"; genuinely exact
sentinel comparisons (``area == 0.0`` where the zero is constructed, not
computed) are expected to carry a justified ``# repro: allow[REPRO201]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.engine import FileContext, Finding, Rule


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_squared(node: ast.AST) -> bool:
    """``x ** 2`` or ``x * x`` (textually identical factors)."""
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Pow)
        and isinstance(node.right, ast.Constant)
        and node.right.value == 2
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return ast.dump(node.left) == ast.dump(node.right)
    return False


def _is_sum_of_squares(node: ast.AST) -> bool:
    """An Add chain whose leaves are all squared terms (>= 2 of them)."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
        return False

    def leaves(n: ast.AST):
        if isinstance(n, ast.BinOp) and isinstance(n.op, ast.Add):
            yield from leaves(n.left)
            yield from leaves(n.right)
        else:
            yield n

    parts = list(leaves(node))
    return len(parts) >= 2 and all(_is_squared(p) for p in parts)


def _squared_distance_assignments(ctx: FileContext) -> Set[str]:
    """Names assigned (anywhere in the file) from a squared-distance expression.

    Catches ``d2 = dx**2 + dy**2``, ``d2 = np.einsum("ijk,ijk->ij", diff, diff)``
    and ``d2 = np.sum(diff**2, ...)`` so that a later ``d2 <= r2`` comparison is
    recognised even though the squaring happened on an earlier line.
    """
    tainted: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _is_sum_of_squares(node.value):
            tainted.add(target.id)
            continue
        if isinstance(node.value, ast.Call):
            qual = ctx.qualified_name(node.value.func)
            if qual == "numpy.einsum" and len(node.value.args) == 3:
                a, b = node.value.args[1], node.value.args[2]
                if ast.dump(a) == ast.dump(b):
                    tainted.add(target.id)
            elif qual == "numpy.sum" and node.value.args:
                if any(_is_squared(n) for n in ast.walk(node.value.args[0])):
                    tainted.add(target.id)
    return tainted


class FloatEqualityRule(Rule):
    code = "REPRO201"
    name = "float-equality"
    summary = "No ==/!= against float literals; use a tolerance or an integer sentinel."
    rationale = (
        "Exact equality on computed floats is the bug class behind PR 2's "
        "backend disagreements.  Compare with math.isclose/np.isclose, an "
        "explicit tolerance, or restructure around integer/None sentinels.  "
        "Exact-zero sentinel checks on *constructed* values may be suppressed "
        "with a justification."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, comparators, comparators[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield ctx.finding(
                        self,
                        node,
                        "exact ==/!= against a float literal; use math.isclose/"
                        "np.isclose with an explicit tolerance, or an integer sentinel",
                    )
                    break


class RawSquaredDistanceRule(Rule):
    code = "REPRO202"
    name = "raw-squared-distance"
    summary = (
        "No hand-rolled d*d <= r*r distance tests; use "
        "repro.geometry.index.within_ball (exact np.hypot predicate)."
    )
    rationale = (
        "Squared-distance comparisons underflow/overflow where true distances "
        "do not (PR 2 review: subnormal offsets at radius 0, spreads > 1e154).  "
        "within_ball is the single exact membership predicate both index "
        "backends agree on; geometry-internal implementations live in the "
        "allowlisted modules below and nowhere else."
    )
    # The sanctioned homes of squared-distance arithmetic:
    #  - predicates.py: region membership over (n, k)-anchor grids, where the
    #    chunked einsum form is the documented implementation;
    #  - index.py: within_ball itself plus candidate prefilters that re-check
    #    through within_ball;
    #  - primitives.py: Disc.contains, the leaf primitive predicates build on.
    allow_paths = (
        "src/repro/geometry/predicates.py",
        "src/repro/geometry/index.py",
        "src/repro/geometry/primitives.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tainted = _squared_distance_assignments(ctx)

        def is_distance_operand(n: ast.AST) -> bool:
            if _is_sum_of_squares(n):
                return True
            if isinstance(n, ast.Name) and n.id in tainted:
                return True
            if isinstance(n, ast.Call):
                qual = ctx.qualified_name(n.func)
                if qual in ("numpy.sqrt", "math.sqrt") and n.args:
                    inner = n.args[0]
                    return _is_sum_of_squares(inner) or (
                        isinstance(inner, ast.Name) and inner.id in tainted
                    )
            # `d2 <= r2 + eps`: look through top-level +/- for a tainted core.
            if isinstance(n, ast.BinOp) and isinstance(n.op, (ast.Add, ast.Sub)):
                return any(is_distance_operand(side) for side in (n.left, n.right))
            return False

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, comparators, comparators[1:]):
                if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                    continue
                squared_sides = sum(1 for side in (left, right) if _is_squared(side))
                distance_sides = sum(1 for side in (left, right) if is_distance_operand(side))
                if distance_sides >= 1 or squared_sides >= 2:
                    yield ctx.finding(
                        self,
                        node,
                        "raw squared-distance comparison; use "
                        "repro.geometry.index.within_ball (or add the module to the "
                        "rule's documented allowlist if it is a sanctioned geometry core)",
                    )
                    break
