"""REPRO8xx — kernel-layer discipline.

PR 10 hoisted the stack's hot inner loops (cell-table gather, closed-ball
membership, edge splicing, event stepping) into :mod:`repro.kernels`: one
SoA vocabulary with a scalar ``reference`` backend and property-tested
byte-identity certificates.  The refactor only stays done if new hot paths
keep going *through* that layer instead of hand-rolling the same
searchsorted/argsort idioms inline — every inline copy is one more loop the
certificates do not cover and one more place an optimisation has to be
re-implemented.

:class:`InlineKernelIdiomRule` approximates "hand-rolled kernel hot path"
by idiom co-occurrence *within one function*: a CSR-style gather
(``searchsorted`` feeding a ``repeat`` expansion) or a sort-and-regroup
(``argsort``/``lexsort`` feeding a ``split``).  Either combination is the
signature of code re-implementing ``cell_gather``/``pair_candidates``;
single uses of any of these functions are ubiquitous and never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.engine import FileContext, Finding, Rule

#: searchsorted feeding repeat: the CSR bulk-gather idiom (cell_gather /
#: pair_candidates territory).
_GATHER_CALLS = {"numpy.searchsorted", "numpy.repeat"}
#: argsort/lexsort feeding split: the sort-and-regroup idiom
#: (pair_candidates / sort_groups territory).
_SORTS = {"numpy.argsort", "numpy.lexsort"}
_REGROUP = "numpy.split"


class InlineKernelIdiomRule(Rule):
    code = "REPRO801"
    name = "inline-kernel-idiom"
    summary = (
        "No hand-rolled gather/regroup hot paths (searchsorted+repeat, "
        "argsort/lexsort+split) outside repro.kernels; call the kernel layer."
    )
    rationale = (
        "The kernel layer (repro.kernels) carries the property-tested "
        "byte-identity certificates and the backend dispatch.  A function "
        "that re-rolls the CSR gather (np.searchsorted feeding np.repeat) or "
        "the sort-and-regroup (np.argsort/np.lexsort feeding np.split) is a "
        "hot path the certificates do not cover — route it through "
        "kernels.ops (cell_gather / pair_candidates) or kernels.layout "
        "(sort_groups) instead, or add the module to the allowlist if it is "
        "a sanctioned kernel home."
    )
    # The sanctioned homes of these idioms:
    #  - the kernel package itself (the implementations under certificate);
    #  - geometry/index.py: the grid index's packed-key construction feeds
    #    the kernels and documents its own chunk discipline;
    #  - dynamics/incremental.py: the dynamic index's compaction keeps one
    #    argsort+split regroup over its own id space.
    allow_paths = (
        "src/repro/kernels/*",
        "src/repro/geometry/index.py",
        "src/repro/dynamics/incremental.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            calls: Set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    qual = ctx.qualified_name(sub.func)
                    if qual:
                        calls.add(qual)
            if _GATHER_CALLS <= calls:
                yield ctx.finding(
                    self,
                    node,
                    f"function {node.name!r} hand-rolls a searchsorted+repeat "
                    "gather; use repro.kernels.ops.cell_gather (or "
                    "pair_candidates) so the byte-identity certificates cover it",
                )
            elif calls & _SORTS and _REGROUP in calls:
                yield ctx.finding(
                    self,
                    node,
                    f"function {node.name!r} hand-rolls an argsort/lexsort+split "
                    "regroup; use repro.kernels.ops.pair_candidates or "
                    "repro.kernels.layout.sort_groups",
                )
