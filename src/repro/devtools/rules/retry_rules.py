"""REPRO7xx — fault tolerance (retry discipline).

Every retry loop in the repo must be *bounded* and must back off through an
*injected* sleeper, so chaos tests can drive thousands of fault storms
without wall time and a misbehaving dependency can never wedge a run.  The
sanctioned helper is :func:`repro.faults.retry.call_with_retry` (bounded
attempts, injected ``sleep``); hand-rolled loops that call ``time.sleep``
directly hide an unbounded, untestable wait inside what looks like error
handling.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.devtools.engine import FileContext, Finding, Rule


class BareSleepRetryRule(Rule):
    code = "REPRO701"
    name = "bare-sleep-retry"
    summary = (
        "No bare time.sleep inside retry/poll loops; use "
        "repro.faults.retry.call_with_retry or take an injected sleep callable."
    )
    rationale = (
        "A loop that sleeps with time.sleep retries on the wall clock: tests "
        "must sleep-and-pray, backoff is untunable, and nothing bounds the "
        "attempts.  The faults subsystem (PR 9) provides the sanctioned "
        "shape — call_with_retry(policy=RetryPolicy(max_attempts=...), "
        "sleep=<injected>) — and run_worker shows the injectable-sleeper "
        "pattern for poll loops (`sleep: Callable[[float], None] = "
        "time.sleep` as a parameter, never called by its dotted name)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For, ast.AsyncFor)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                if ctx.qualified_name(node.func) != "time.sleep":
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:  # nested loops revisit the same call
                    continue
                seen.add(key)
                yield ctx.finding(
                    self,
                    node,
                    "bare `time.sleep` inside a loop is an unbounded wall-clock "
                    "retry; use repro.faults.retry.call_with_retry or accept an "
                    "injected `sleep` callable",
                )
