"""REPRO1xx — RNG discipline.

The whole experiment pipeline stakes byte-determinism on one convention:
randomness enters through an explicit ``numpy.random.Generator`` (or an
explicit seed resolved by :func:`repro.rng.resolve_rng`), and per-job /
per-realisation streams are derived with ``SeedSequence.spawn``.  These
rules reject the three ways that convention has historically leaked.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.engine import FileContext, Finding, Rule

#: numpy.random attributes that are *constructors/types*, not global-state calls.
_NUMPY_RANDOM_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
}

#: stdlib ``random`` module functions that read/mutate the hidden global RNG.
_STDLIB_GLOBAL = {
    "random.seed",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.getrandbits",
    "random.betavariate",
    "random.expovariate",
    "random.triangular",
}


def _module_level_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Calls executed at import time (module body, incl. class bodies)."""
    stack: list = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # deferred execution: not import-time
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class GlobalStateRngRule(Rule):
    code = "REPRO101"
    name = "global-state-rng"
    summary = (
        "No module-level numpy.random.*/random.* calls, and no hidden-global "
        "RNG API (np.random.seed/rand/..., random.random/...) at any scope."
    )
    rationale = (
        "Import-time randomness and the process-global legacy RNG make output "
        "depend on import order and on unrelated callers.  All randomness must "
        "flow through an explicit numpy.random.Generator (PR 1's SeedSequence "
        "job-seeding contract)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_call_nodes: Set[int] = {id(c) for c in _module_level_calls(ctx.tree)}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            legacy_numpy = qual.startswith("numpy.random.") and qual not in _NUMPY_RANDOM_OK
            if legacy_numpy or qual in _STDLIB_GLOBAL:
                yield ctx.finding(
                    self,
                    node,
                    f"call to hidden-global RNG API `{qual}`: pass an explicit "
                    "numpy.random.Generator instead (see repro.rng.resolve_rng)",
                )
            elif (
                (qual.startswith("numpy.random.") or qual.startswith("random."))
                and id(node) in module_call_nodes
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"module-level call to `{qual}` runs RNG machinery at import "
                    "time; construct generators inside functions and pass them down",
                )


class UnseededDefaultRngRule(Rule):
    code = "REPRO102"
    name = "unseeded-default-rng"
    summary = (
        "No argument-less np.random.default_rng() / SeedSequence(): an entropy-"
        "seeded fallback makes 'forgot to pass rng' silently nondeterministic."
    )
    rationale = (
        "`rng = rng or np.random.default_rng()` fallbacks (pre-PR 6 percolation/"
        "dynamics/geometry code) produced different bytes on every call when the "
        "caller omitted rng.  Use repro.rng.resolve_rng(rng), which falls back "
        "to the documented DEFAULT_ROOT_SEED SeedSequence instead of OS entropy."
    )
    # repro.rng is the sanctioned fallback implementation; it never calls the
    # zero-arg form, but keeping it exempt documents where the contract lives.
    allow_paths = ("src/repro/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual not in ("numpy.random.default_rng", "numpy.random.SeedSequence"):
                continue
            unseeded = not node.args and not node.keywords
            none_seeded = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or none_seeded:
                yield ctx.finding(
                    self,
                    node,
                    f"`{qual}()` seeds from OS entropy and is nondeterministic; "
                    "require an explicit seed/Generator or use repro.rng.resolve_rng",
                )


class SeedArithmeticRule(Rule):
    code = "REPRO103"
    name = "seed-arithmetic"
    summary = (
        "Child seeds must come from SeedSequence.spawn, not arithmetic on a "
        "seed value (default_rng(seed + i), SeedSequence(seed * k), ...)."
    )
    rationale = (
        "Arithmetically related seeds give statistically correlated streams; "
        "SeedSequence.spawn is the contract PR 1's executor established for "
        "per-job independence (repro.rng.spawn_rngs wraps it)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual not in ("numpy.random.default_rng", "numpy.random.SeedSequence"):
                continue
            for arg in node.args:
                if isinstance(arg, ast.BinOp) and _involves_name(arg):
                    yield ctx.finding(
                        self,
                        arg,
                        f"seed derived by arithmetic inside `{qual}(...)`: derive "
                        "child seeds via SeedSequence.spawn (repro.rng.spawn_rngs)",
                    )


def _involves_name(node: ast.AST) -> bool:
    return any(isinstance(n, (ast.Name, ast.Attribute)) for n in ast.walk(node))
