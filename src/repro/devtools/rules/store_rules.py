"""REPRO4xx — store & serialization discipline.

PR 5's concurrency guarantees rest on two mechanical facts: (1) every record
is rendered by the canonical serializer (``runner/serialize.py``: sorted
keys, compact separators) so N-worker drains export byte-identically, and
(2) JSONL appends are a single ``os.write`` on an ``O_APPEND`` descriptor so
concurrent writers can never interleave partial lines.  Both break silently
if a new code path renders or appends on its own — these rules make that a
lint failure instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import FileContext, Finding, Rule


class CanonicalSerializerRule(Rule):
    code = "REPRO401"
    name = "canonical-serializer"
    summary = (
        "Inside repro.runner and benchmarks, JSON must be rendered by "
        "runner/serialize.py — no bare json.dump/json.dumps."
    )
    rationale = (
        "Byte-identity of store records (resume cache hits, N-worker drain "
        "equality, torn-line healing) requires one canonical rendering: "
        "sort_keys=True, separators=(',', ':'), jsonify-normalised values.  "
        "A bare json.dumps with default settings produces different bytes for "
        "the same record and silently poisons resume comparisons."
    )
    only_paths = ("src/repro/runner/*.py", "benchmarks/*.py")
    allow_paths = ("src/repro/runner/serialize.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual in ("json.dump", "json.dumps"):
                yield ctx.finding(
                    self,
                    node,
                    f"bare `{qual}` in store-adjacent code; render records via "
                    "repro.runner.serialize (canonical_json/jsonify) so bytes "
                    "are canonical",
                )


class AppendDisciplineRule(Rule):
    code = "REPRO402"
    name = "append-discipline"
    summary = (
        "File appends inside repro.runner go through the store's single-"
        "os.write O_APPEND helper, not open(..., 'a')."
    )
    rationale = (
        "Buffered append-mode writes flush in chunks, so two concurrent "
        "processes can interleave partial lines (the PR 5 torn-line bug).  "
        "JsonlStore.put's os.open(O_RDWR|O_CREAT|O_APPEND) + single os.write "
        "is the one sanctioned append path for record data."
    )
    only_paths = ("src/repro/runner/*.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            is_open = qual == "open" or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "open"
            )
            if not is_open:
                continue
            mode = _open_mode(node)
            if mode is not None and "a" in mode:
                yield ctx.finding(
                    self,
                    node,
                    f"append-mode open (mode={mode!r}) in runner code; record "
                    "appends must use the store's single-os.write O_APPEND helper "
                    "so concurrent writers cannot interleave partial lines",
                )


def _open_mode(call: ast.Call) -> str | None:
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            return call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return None
