"""REPRO3xx — determinism hygiene (wall clocks).

Simulation output must be a pure function of (inputs, seed).  Wall-clock
reads smuggle ambient state into that function; the lease queue
(``runner/queue.py``) shows the sanctioned pattern instead — every method
takes an explicit ``now`` so tests inject a clock, and ``time.time`` appears
only as the documented production default of that injectable parameter.
``serve/clock.py`` is the other sanctioned boundary: the serving daemon's
single wall/monotonic source, which every serve component receives as an
injectable ``clock`` callable (tests drive a ``ManualClock``).

``time.perf_counter`` / ``time.monotonic`` are *not* flagged: timing how
long something took is measurement, not simulation state, and the benchmark
harness depends on it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.engine import FileContext, Finding, Rule

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    code = "REPRO301"
    name = "wall-clock-read"
    summary = (
        "No time.time()/datetime.now() in simulation paths; inject clocks "
        "(explicit `now` parameters) like runner/queue.py does."
    )
    rationale = (
        "Seeded paths must be replayable byte-for-byte; ambient clock reads "
        "break that and make tests sleep-and-pray.  runner/queue.py is "
        "allowlisted by design: its whole API takes `now` explicitly and only "
        "defaults to time.time at the production boundary (PR 5's lease "
        "protocol is tested entirely with injected clocks).  serve/clock.py "
        "is allowlisted for the same reason: it IS the daemon's clock "
        "boundary — everything else in repro.serve takes a `clock` callable "
        "and is tested with a ManualClock."
    )
    allow_paths = (
        "src/repro/runner/queue.py",
        "src/repro/serve/clock.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual in _WALL_CLOCK:
                yield ctx.finding(
                    self,
                    node,
                    f"wall-clock read `{qual}()`; take an explicit `now`/clock "
                    "parameter instead (see runner/queue.py for the pattern)",
                )
            elif qual == "time.strftime" and len(node.args) < 2:
                yield ctx.finding(
                    self,
                    node,
                    "time.strftime without an explicit time tuple reads the "
                    "wall clock; pass the time in or inject a clock",
                )
