"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

from collections import Counter
import json
from typing import IO, Dict, List

from repro.devtools.engine import Finding, LintResult

__all__ = ["render_text", "render_json"]


def render_text(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    unused_baseline: Counter,
    stream: IO[str],
) -> None:
    for f in new:
        stream.write(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}\n")
        if f.snippet.strip():
            stream.write(f"    {f.snippet.strip()}\n")
    parts = [f"{len(new)} finding{'s' if len(new) != 1 else ''}"]
    if baselined:
        parts.append(f"{len(baselined)} baselined")
    if result.suppressed:
        parts.append(f"{len(result.suppressed)} suppressed")
    if unused_baseline:
        parts.append(f"{sum(unused_baseline.values())} stale baseline entries")
    stream.write(f"{', '.join(parts)} in {result.files_checked} files\n")
    if unused_baseline:
        stream.write("stale baseline entries (fixed violations — prune them):\n")
        for (rule, path, snippet), n in sorted(unused_baseline.items()):
            stream.write(f"    {path}: {rule} x{n}: {snippet}\n")


def render_json(
    result: LintResult,
    new: List[Finding],
    baselined: List[Finding],
    unused_baseline: Counter,
    stream: IO[str],
) -> None:
    counts: Dict[str, int] = {}
    for f in new:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in new],
        "baselined": [f.as_dict() for f in baselined],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "stale_baseline": [
            {"rule": rule, "path": path, "snippet": snippet, "count": n}
            for (rule, path, snippet), n in sorted(unused_baseline.items())
        ],
        "counts": counts,
    }
    stream.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
