"""``python -m repro.devtools`` — alias for ``python -m repro.devtools.lint``."""

import sys

from repro.devtools.lint import main

if __name__ == "__main__":
    sys.exit(main())
