"""Command-line front end of the experiment runner.

Examples::

    python -m repro.runner list
    python -m repro.runner run E01 E04 --jobs 8 --trials 500
    python -m repro.runner run E01 --grid "seed=1,2,3" --set "intensities=[5,10,20]"
    python -m repro.runner show E01

``run`` resolves each experiment through the registry, expands ``--grid``
axes into a parameter sweep, executes through the parallel executor and
persists every row to the JSON-lines store (``runner_cache/`` by default), so
a second invocation with the same parameters is a pure cache hit.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.analysis.tables import format_table
from repro.runner.executor import JobOutcome, load_builtin_experiments, make_jobs, run_jobs
from repro.runner.grid import grid
from repro.runner.registry import REGISTRY
from repro.runner.store import DEFAULT_STORE_DIR, ResultStore

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_assignment(text: str) -> Tuple[str, Any]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    key, value = text.split("=", 1)
    return key.strip(), _parse_value(value.strip())


def _parse_grid_assignment(text: str) -> Tuple[str, Any]:
    """Like :func:`_parse_assignment`, but a non-literal value splits on commas
    so string axes sweep too: ``mode=fast,slow`` → ``["fast", "slow"]``."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected KEY=V1,V2,..., got {text!r}")
    key, value = text.split("=", 1)
    key, value = key.strip(), value.strip()
    try:
        return key, ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return key, [_parse_value(part.strip()) for part in value.split(",")]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.runner",
        description="Registry-driven parallel experiment runner with an on-disk result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run experiments through the parallel executor")
    p_run.add_argument(
        "experiments", nargs="+", metavar="ID", help='experiment ids (e.g. E01 E04) or "all"'
    )
    p_run.add_argument("--jobs", type=int, default=1, help="worker processes (default: 1, inline)")
    p_run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the 'trials' parameter of experiments that have one",
    )
    p_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; per-job seeds are spawned from it via SeedSequence",
    )
    p_run.add_argument(
        "--set",
        dest="overrides",
        type=_parse_assignment,
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin one parameter (python literal), e.g. --set window_side=20.0",
    )
    p_run.add_argument(
        "--grid",
        dest="grid_axes",
        type=_parse_grid_assignment,
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help='sweep one parameter over several values, e.g. --grid "seed=1,2,3"',
    )
    p_run.add_argument("--store", default=DEFAULT_STORE_DIR, help="result-store directory")
    p_run.add_argument(
        "--force", action="store_true", help="ignore cached results and recompute every job"
    )
    p_run.add_argument(
        "--progress-log",
        dest="progress_log",
        default=None,
        metavar="DEST",
        help="append timestamped job-level progress lines to DEST ('-' for stderr); "
        "wall clock stays on this side channel, never in the store",
    )

    sub.add_parser("list", help="list registered experiments")

    p_show = sub.add_parser("show", help="print stored results")
    p_show.add_argument("experiments", nargs="*", metavar="ID", help="restrict to these ids")
    p_show.add_argument("--store", default=DEFAULT_STORE_DIR, help="result-store directory")
    return parser


def _resolve_ids(requested: List[str]) -> Tuple[List[str], List[str]]:
    if any(token.lower() == "all" for token in requested):
        return REGISTRY.ids(), []
    ids: List[str] = []
    for token in requested:
        if token not in ids:
            ids.append(token)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    return ids, unknown


def _cmd_list() -> int:
    rows = []
    for eid in REGISTRY.ids():
        experiment = REGISTRY.get(eid)
        rows.append(
            {
                "id": eid,
                "title": experiment.title,
                "parameters": ", ".join(experiment.field_names),
            }
        )
    print(format_table(rows))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    ids = args.experiments or sorted({r["experiment_id"] for r in store.records()})
    if not ids:
        print(f"store {args.store!r} is empty")
        return 0
    rows = []
    for eid in ids:
        for record in store.records(experiment_id=eid):
            result = record.get("result") or {}
            headline = result.get("headline", {}) if isinstance(result, dict) else {}
            rows.append(
                {
                    "id": eid,
                    "key": record["key"][:10],
                    "status": record["status"],
                    "headline": ", ".join(f"{k}={v}" for k, v in headline.items()) or "-",
                }
            )
    print(format_table(rows) if rows else "(no records)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids, unknown = _resolve_ids(args.experiments)
    if unknown:
        print(
            f"error: unknown experiment id(s) {', '.join(unknown)}; "
            f"registered: {', '.join(REGISTRY.ids())}"
        )
        return 2
    overrides = dict(args.overrides)
    axes = dict(args.grid_axes)
    store = ResultStore(args.store)

    def _report_progress(outcome: JobOutcome) -> None:
        line = f"  {outcome.job.experiment_id}[{outcome.job.key[:10]}] {outcome.status}"
        if outcome.status == "failed":
            error = outcome.record.get("error", "").strip().splitlines()
            line += f" — {error[-1] if error else 'unknown error'}"
        print(line, flush=True)

    exit_code = 0
    for eid in ids:
        experiment = REGISTRY.get(eid)
        known = set(experiment.field_names)
        effective = dict(overrides)
        if args.trials is not None:
            effective["trials"] = args.trials
        applicable = {k: v for k, v in effective.items() if k in known}
        for name in sorted(set(effective) - known):
            print(f"note: {eid} has no parameter {name!r}; override ignored")
        sweep_axes = {k: v for k, v in axes.items() if k in known}
        for name in sorted(set(axes) - known):
            print(f"note: {eid} has no parameter {name!r}; grid axis ignored")
        param_sets = [{**applicable, **point} for point in grid(sweep_axes)]

        jobs = make_jobs(eid, param_sets, base_seed=args.seed)
        print(f"{eid} — {experiment.title} ({len(jobs)} job(s), --jobs {args.jobs})")
        started = time.perf_counter()
        report = run_jobs(
            jobs,
            n_jobs=args.jobs,
            store=store,
            resume=not args.force,
            progress=_report_progress,
            progress_log=(
                sys.stderr if args.progress_log == "-" else args.progress_log
            ),
        )
        elapsed = time.perf_counter() - started
        print(
            f"{eid}: {report.n_ok} ran, {report.n_cached} cached, "
            f"{report.n_failed} failed in {elapsed:.1f}s "
            f"→ {store.path_for(eid)}"
        )
        if not report.all_ok:
            exit_code = 1
    return exit_code


def main(argv: List[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    load_builtin_experiments()
    if args.command == "list":
        return _cmd_list()
    if args.command == "show":
        return _cmd_show(args)
    return _cmd_run(args)
