"""Command-line front end of the experiment runner.

Examples::

    python -m repro.runner list
    python -m repro.runner run E01 E04 --jobs 8 --trials 500
    python -m repro.runner run E01 --grid "seed=1,2,3" --set "intensities=[5,10,20]"
    python -m repro.runner show E01
    python -m repro.runner sweep examples/sweep.toml
    python -m repro.runner sweep examples/sweep.toml --enqueue
    python -m repro.runner worker --store campaign.sqlite

``run`` resolves each experiment through the registry, expands ``--grid``
axes into a parameter sweep, executes through the parallel executor and
persists every row to the result store (``runner_cache/`` by default; a
``*.sqlite`` path selects the SQLite/WAL backend), so a second invocation
with the same parameters is a pure cache hit.  ``sweep`` does the same from
a reviewable TOML file; with ``--enqueue`` it only fills the SQLite job
queue, and any number of ``worker`` processes — on any machine sharing the
file — pull, lease, execute and store the open jobs.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time
from typing import Any, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.runner.executor import (
    Job,
    JobOutcome,
    load_builtin_experiments,
    make_jobs,
    run_jobs,
)
from repro.runner.grid import grid
from repro.runner.queue import JobQueue, run_worker
from repro.runner.registry import REGISTRY
from repro.runner.sqlite_store import SqliteStore
from repro.runner.store import DEFAULT_STORE_DIR, ResultStore
from repro.runner.sweep import load_sweep

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_assignment(text: str) -> Tuple[str, Any]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    key, value = text.split("=", 1)
    return key.strip(), _parse_value(value.strip())


def _parse_grid_assignment(text: str) -> Tuple[str, Any]:
    """Like :func:`_parse_assignment`, but a non-literal value splits on commas
    so string axes sweep too: ``mode=fast,slow`` → ``["fast", "slow"]``."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected KEY=V1,V2,..., got {text!r}")
    key, value = text.split("=", 1)
    key, value = key.strip(), value.strip()
    try:
        return key, ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return key, [_parse_value(part.strip()) for part in value.split(",")]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.runner",
        description="Registry-driven parallel experiment runner with an on-disk result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run experiments through the parallel executor")
    p_run.add_argument(
        "experiments", nargs="+", metavar="ID", help='experiment ids (e.g. E01 E04) or "all"'
    )
    p_run.add_argument("--jobs", type=int, default=1, help="worker processes (default: 1, inline)")
    p_run.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the 'trials' parameter of experiments that have one",
    )
    p_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed; per-job seeds are spawned from it via SeedSequence",
    )
    p_run.add_argument(
        "--set",
        dest="overrides",
        type=_parse_assignment,
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin one parameter (python literal), e.g. --set window_side=20.0",
    )
    p_run.add_argument(
        "--grid",
        dest="grid_axes",
        type=_parse_grid_assignment,
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help='sweep one parameter over several values, e.g. --grid "seed=1,2,3"',
    )
    p_run.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        help="result store: a directory (JSON lines) or a *.sqlite file (SQLite/WAL)",
    )
    p_run.add_argument(
        "--force", action="store_true", help="ignore cached results and recompute every job"
    )
    p_run.add_argument(
        "--progress-log",
        dest="progress_log",
        default=None,
        metavar="DEST",
        help="append timestamped job-level progress lines to DEST ('-' for stderr); "
        "wall clock stays on this side channel, never in the store",
    )

    sub.add_parser("list", help="list registered experiments")

    p_show = sub.add_parser("show", help="print stored results")
    p_show.add_argument("experiments", nargs="*", metavar="ID", help="restrict to these ids")
    p_show.add_argument(
        "--store", default=DEFAULT_STORE_DIR, help="result store (directory or *.sqlite file)"
    )
    p_show.add_argument(
        "--bench",
        action="store_true",
        help="read the benchmark store (benchmarks/results/store/) instead of --store",
    )

    p_sweep = sub.add_parser(
        "sweep", help="run (or enqueue) a campaign described by a TOML sweep file"
    )
    p_sweep.add_argument("config", metavar="SWEEP.toml", help="TOML sweep configuration file")
    p_sweep.add_argument(
        "--store",
        default=None,
        help="override the file's [runner] store (directory or *.sqlite file)",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=None, help="override the file's [runner] jobs"
    )
    p_sweep.add_argument(
        "--seed", type=int, default=None, help="override the file's [runner] seed"
    )
    p_sweep.add_argument(
        "--enqueue",
        action="store_true",
        help="fill the SQLite job queue instead of executing; drain with `worker`",
    )
    p_sweep.add_argument(
        "--force", action="store_true", help="ignore cached results and recompute every job"
    )
    p_sweep.add_argument(
        "--progress-log",
        dest="progress_log",
        default=None,
        metavar="DEST",
        help="append timestamped job-level progress lines to DEST ('-' for stderr)",
    )

    p_worker = sub.add_parser(
        "worker", help="pull-worker: claim, lease and execute open jobs from a SQLite queue"
    )
    p_worker.add_argument(
        "--store", required=True, help="SQLite store file carrying the job queue"
    )
    p_worker.add_argument(
        "--worker-id", default=None, help="worker identity (default: hostname:pid)"
    )
    p_worker.add_argument(
        "--lease",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="claim lease; a worker silent this long forfeits its job (default: 60)",
    )
    p_worker.add_argument(
        "--poll",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="idle re-poll interval while other workers hold claims (default: 1)",
    )
    p_worker.add_argument(
        "--max-jobs", type=int, default=None, help="stop after this many jobs (default: drain)"
    )
    p_worker.add_argument(
        "--wait",
        action="store_true",
        help="keep polling after the queue drains (a standing worker)",
    )
    p_worker.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        metavar="N",
        help="poison-job budget: quarantine a job after N attempts (default: 5; 0 disables)",
    )

    p_requeue = sub.add_parser(
        "requeue", help="re-open failed/quarantined jobs for another worker drain"
    )
    p_requeue.add_argument(
        "--store", required=True, help="SQLite store file carrying the job queue"
    )
    p_requeue.add_argument(
        "keys", nargs="*", metavar="KEY", help="restrict to these job keys (default: all)"
    )
    p_requeue.add_argument(
        "--keep-attempts",
        action="store_true",
        help="keep the attempt counters (default: reset to a fresh budget)",
    )
    return parser


def _resolve_ids(requested: List[str]) -> Tuple[List[str], List[str]]:
    if any(token.lower() == "all" for token in requested):
        return REGISTRY.ids(), []
    ids: List[str] = []
    for token in requested:
        if token not in ids:
            ids.append(token)
    unknown = [eid for eid in ids if eid not in REGISTRY]
    return ids, unknown


def _cmd_list() -> int:
    rows = []
    for eid in REGISTRY.ids():
        experiment = REGISTRY.get(eid)
        rows.append(
            {
                "id": eid,
                "title": experiment.title,
                "parameters": ", ".join(experiment.field_names),
            }
        )
    print(format_table(rows))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    store_path = args.store
    if getattr(args, "bench", False):
        from repro.analysis.tables import bench_store_dir

        try:
            store_path = bench_store_dir()
        except FileNotFoundError as exc:
            print(exc)
            return 1
    store = ResultStore(store_path)
    ids = args.experiments or sorted({r["experiment_id"] for r in store.records()})
    if not ids:
        print(f"store {str(store_path)!r} is empty")
        return 0
    rows = []
    for eid in ids:
        for record in store.records(experiment_id=eid):
            result = record.get("result") or {}
            headline = result.get("headline", {}) if isinstance(result, dict) else {}
            rows.append(
                {
                    "id": eid,
                    "key": record["key"][:10],
                    "status": record["status"],
                    "headline": ", ".join(f"{k}={v}" for k, v in headline.items()) or "-",
                }
            )
    print(format_table(rows) if rows else "(no records)")
    return 0


def _report_progress(outcome: JobOutcome) -> None:
    line = f"  {outcome.job.experiment_id}[{outcome.job.key[:10]}] {outcome.status}"
    if outcome.status == "failed":
        error = outcome.record.get("error", "").strip().splitlines()
        line += f" — {error[-1] if error else 'unknown error'}"
    print(line, flush=True)


def _run_batch(
    eid: str,
    jobs: List[Job],
    *,
    n_jobs: int,
    store: ResultStore,
    resume: bool,
    progress_log: Optional[str],
) -> bool:
    """Execute one experiment's jobs with the standard progress report."""
    experiment = REGISTRY.get(eid)
    print(f"{eid} — {experiment.title} ({len(jobs)} job(s), --jobs {n_jobs})")
    started = time.perf_counter()
    report = run_jobs(
        jobs,
        n_jobs=n_jobs,
        store=store,
        resume=resume,
        progress=_report_progress,
        progress_log=sys.stderr if progress_log == "-" else progress_log,
    )
    elapsed = time.perf_counter() - started
    print(
        f"{eid}: {report.n_ok} ran, {report.n_cached} cached, "
        f"{report.n_failed} failed in {elapsed:.1f}s "
        f"→ {store.path_for(eid)}"
    )
    return report.all_ok


def _cmd_run(args: argparse.Namespace) -> int:
    ids, unknown = _resolve_ids(args.experiments)
    if unknown:
        print(
            f"error: unknown experiment id(s) {', '.join(unknown)}; "
            f"registered: {', '.join(REGISTRY.ids())}"
        )
        return 2
    overrides = dict(args.overrides)
    axes = dict(args.grid_axes)
    store = ResultStore(args.store)

    exit_code = 0
    for eid in ids:
        experiment = REGISTRY.get(eid)
        known = set(experiment.field_names)
        effective = dict(overrides)
        if args.trials is not None:
            effective["trials"] = args.trials
        applicable = {k: v for k, v in effective.items() if k in known}
        for name in sorted(set(effective) - known):
            print(f"note: {eid} has no parameter {name!r}; override ignored")
        sweep_axes = {k: v for k, v in axes.items() if k in known}
        for name in sorted(set(axes) - known):
            print(f"note: {eid} has no parameter {name!r}; grid axis ignored")
        param_sets = [{**applicable, **point} for point in grid(sweep_axes)]

        jobs = make_jobs(eid, param_sets, base_seed=args.seed)
        if not _run_batch(
            eid,
            jobs,
            n_jobs=args.jobs,
            store=store,
            resume=not args.force,
            progress_log=args.progress_log,
        ):
            exit_code = 1
    return exit_code


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        config = load_sweep(args.config)
    except (OSError, ValueError, ImportError) as err:
        print(f"error: {err}")
        return 2
    store_root = args.store or config.store or DEFAULT_STORE_DIR
    base_seed = args.seed if args.seed is not None else config.seed
    n_jobs = args.jobs or config.jobs or 1

    unknown = [s.experiment_id for s in config.experiments if s.experiment_id not in REGISTRY]
    if unknown:
        print(
            f"error: unknown experiment id(s) {', '.join(unknown)} in {args.config}; "
            f"registered: {', '.join(REGISTRY.ids())}"
        )
        return 2

    if args.enqueue:
        if args.force:
            # Workers decide cached-vs-run against the store at claim time;
            # an enqueue cannot carry a recompute order, so reject loudly
            # rather than let --force silently do nothing.
            print(
                "error: --force only applies to the direct run mode; to recompute an "
                "enqueued sweep, point [runner] store (or --store) at a fresh file"
            )
            return 2
        store = ResultStore(store_root)
        if not isinstance(store, SqliteStore):
            print(
                f"error: --enqueue needs the SQLite backend; store {store_root!r} is a "
                "JSON-lines directory (name a *.sqlite file in [runner] store or --store)"
            )
            return 2
        try:
            jobs = config.make_all_jobs(base_seed=base_seed)
        except TypeError as err:
            print(f"error: {err}")
            return 2
        with JobQueue(store.path) as queue:
            new = queue.enqueue(jobs)
            counts = queue.counts()
        print(
            f"enqueued {new} new job(s) ({len(jobs) - new} already queued) → {store.path}; "
            f"queue: {counts['open']} open, {counts['claimed']} claimed, "
            f"{counts['done']} done, {counts['failed']} failed"
        )
        print(f"drain with: python -m repro.runner worker --store {store.path}")
        return 0

    store = ResultStore(store_root)
    exit_code = 0
    for sweep in config.experiments:
        try:
            jobs = make_jobs(sweep.experiment_id, sweep.param_sets(), base_seed=base_seed)
        except TypeError as err:
            print(f"error: {err}")
            return 2
        if not _run_batch(
            sweep.experiment_id,
            jobs,
            n_jobs=n_jobs,
            store=store,
            resume=not args.force,
            progress_log=args.progress_log,
        ):
            exit_code = 1
    return exit_code


def _cmd_worker(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not isinstance(store, SqliteStore):
        print(
            f"error: the worker queue lives in the SQLite backend; {args.store!r} is a "
            "JSON-lines directory (use the *.sqlite file the sweep was enqueued into)"
        )
        return 2

    def _progress(job: Job, status: str) -> None:
        print(f"  {job.experiment_id}[{job.key[:10]}] {status}", flush=True)

    report = run_worker(
        store,
        worker_id=args.worker_id,
        lease_seconds=args.lease,
        poll_seconds=args.poll,
        max_jobs=args.max_jobs,
        wait=args.wait,
        progress=_progress,
        max_attempts=args.max_attempts if args.max_attempts > 0 else None,
    )
    print(
        f"worker {report.worker}: {report.n_ok} ran, {report.n_cached} cached, "
        f"{report.n_failed} failed, {report.n_quarantined} quarantined → {store.path}"
    )
    return 0 if report.n_failed == 0 and report.n_quarantined == 0 else 1


def _cmd_requeue(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not isinstance(store, SqliteStore):
        print(
            f"error: the job queue lives in the SQLite backend; {args.store!r} is a "
            "JSON-lines directory (use the *.sqlite file the sweep was enqueued into)"
        )
        return 2
    with JobQueue(store.path) as queue:
        reopened = queue.requeue(
            args.keys or None, reset_attempts=not args.keep_attempts
        )
        counts = queue.counts()
    print(
        f"re-opened {reopened} job(s) → {store.path}; "
        f"queue: {counts['open']} open, {counts['claimed']} claimed, {counts['done']} done, "
        f"{counts['failed']} failed, {counts['quarantined']} quarantined"
    )
    print(f"drain with: python -m repro.runner worker --store {store.path}")
    return 0


def main(argv: List[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    load_builtin_experiments()
    if args.command == "list":
        return _cmd_list()
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "requeue":
        return _cmd_requeue(args)
    return _cmd_run(args)
