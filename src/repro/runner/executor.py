"""Parallel job execution: fan experiments out over a process pool.

A :class:`Job` is a fully-resolved ``(experiment_id, params)`` pair plus its
store key.  :func:`make_jobs` builds jobs from parameter overrides (typically
the output of :func:`repro.runner.grid.grid`) and derives per-job seeds from a
base seed via ``numpy.random.SeedSequence.spawn`` — at job-*creation* time, in
job order, so the realised seeds (and therefore every result) are independent
of worker count and scheduling.  :func:`run_jobs` skips jobs whose key already
has an ``ok`` record in the store (resume-on-rerun), executes the rest inline
or on a ``ProcessPoolExecutor``, and logs failures to the store instead of
aborting the batch.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
import hashlib
import pathlib
import time
import traceback
from typing import Any, Callable, Dict, IO, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.runner.registry import REGISTRY, ExperimentRegistry
from repro.runner.serialize import params_key, result_to_payload
from repro.runner.store import ResultStore

__all__ = [
    "Job",
    "JobOutcome",
    "RunReport",
    "load_builtin_experiments",
    "make_jobs",
    "run_jobs",
]


@dataclass(frozen=True)
class Job:
    """One schedulable unit: an experiment id, resolved params and store key."""

    experiment_id: str
    params: Mapping[str, Any]
    key: str


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one job: ``ok`` (ran), ``cached`` (store hit) or ``failed``."""

    job: Job
    status: str
    record: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class RunReport:
    """Outcomes of one :func:`run_jobs` batch, in job order."""

    outcomes: List[JobOutcome]

    @property
    def n_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def n_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def all_ok(self) -> bool:
        return self.n_failed == 0

    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def results(self) -> List[Dict[str, Any]]:
        """Stored result payloads of the ok/cached outcomes, in job order."""
        return [o.record["result"] for o in self.outcomes if o.ok]


def load_builtin_experiments() -> None:
    """Import the modules that register the library's own experiments.

    Idempotent; called by workers and the CLI so E01–E12 and the ablations
    are resolvable by id in any process.
    """
    import repro.analysis.experiments  # noqa: F401  (registers E01–E12)
    import repro.analysis.ablations  # noqa: F401  (registers A01)
    import repro.analysis.spatial_bench  # noqa: F401  (registers S01)
    import repro.dynamics.workloads  # noqa: F401  (registers M01/M02/F01/H01)
    import repro.dynamics.bench  # noqa: F401  (registers S02/S03)
    import repro.distributed.bench  # noqa: F401  (registers S04)
    import repro.serve.bench  # noqa: F401  (registers S05)
    import repro.kernels.bench  # noqa: F401  (registers S06)


def make_jobs(
    experiment_id: str,
    param_sets: Optional[Iterable[Mapping[str, Any]]] = None,
    *,
    base_seed: Optional[int] = None,
    registry: ExperimentRegistry = REGISTRY,
) -> List[Job]:
    """Resolve parameter overrides into :class:`Job` objects.

    ``param_sets`` defaults to one all-defaults job.  When ``base_seed`` is
    given and the experiment has a ``seed`` parameter, every param set that
    does not pin ``seed`` explicitly gets an independent seed spawned from
    ``SeedSequence(base_seed)`` in job order.
    """
    # Make ``from repro.runner import make_jobs; make_jobs("E01")`` work on a
    # cold import — E01–E12 register as a side effect of importing analysis.
    load_builtin_experiments()
    experiment = registry.get(experiment_id)
    sets = [dict(p) for p in param_sets] if param_sets is not None else [{}]
    if not sets:
        raise ValueError("param_sets must contain at least one parameter mapping")
    if base_seed is not None and "seed" in experiment.field_names:
        # Fold the experiment id into the entropy: E01 and E02 jobs of the
        # same sweep must draw from independent streams, not the same seeds.
        id_entropy = int.from_bytes(
            hashlib.sha256(experiment_id.encode("utf-8")).digest()[:8], "big"
        )
        children = np.random.SeedSequence([base_seed, id_entropy]).spawn(len(sets))
        for overrides, child in zip(sets, children):
            if "seed" not in overrides:
                overrides["seed"] = int(child.generate_state(1)[0])
    jobs = []
    for overrides in sets:
        params = experiment.resolve_params(overrides)
        jobs.append(Job(experiment_id, params, params_key(experiment_id, params)))
    return jobs


def _execute(payload: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Run one job and return its store record (module-level: pool-picklable)."""
    experiment_id, params = payload
    record: Dict[str, Any] = {
        "key": params_key(experiment_id, params),
        "experiment_id": experiment_id,
        "params": params,
    }
    try:
        load_builtin_experiments()
        experiment = REGISTRY.get(experiment_id)
        result = experiment.run(**params)
        record["status"] = "ok"
        record["result"] = result_to_payload(result)
    except Exception:
        record["status"] = "failed"
        record["error"] = traceback.format_exc()
    return record


class _ProgressLogger:
    """Job-level progress lines on a side channel (stderr or a file).

    The wall clock deliberately lives *here* and nowhere else: stored records
    must stay byte-identical across reruns and worker counts (the runner's
    determinism contract), so timings are logged out-of-band instead of being
    written into the store.
    """

    def __init__(self, destination: Union[IO[str], str, pathlib.Path], total: int) -> None:
        self._owns_stream = isinstance(destination, (str, pathlib.Path))
        self._stream: IO[str] = (
            # repro: allow[REPRO402] progress log: single-writer side channel, never record data
            open(destination, "a", encoding="utf-8") if self._owns_stream else destination
        )
        self._total = total
        self._done = 0
        self._started = time.perf_counter()

    def __call__(self, outcome: JobOutcome) -> None:
        self._done += 1
        elapsed = time.perf_counter() - self._started
        line = (
            # repro: allow[REPRO301] presentation-only timestamp in the progress side channel
            f"[{time.strftime('%H:%M:%S')}] {self._done}/{self._total} "
            f"{outcome.job.experiment_id}[{outcome.job.key[:10]}] "
            f"{outcome.status} t+{elapsed:.2f}s"
        )
        self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


def run_jobs(
    jobs: Iterable[Job],
    *,
    n_jobs: int = 1,
    store: Union[ResultStore, str, pathlib.Path, None] = None,
    resume: bool = True,
    progress: Optional[Callable[[JobOutcome], None]] = None,
    progress_log: Union[IO[str], str, pathlib.Path, None] = None,
) -> RunReport:
    """Execute ``jobs``, reusing and filling ``store`` when one is given.

    ``n_jobs <= 1`` runs inline in this process (which also makes experiments
    registered only in the current process runnable); larger values fan out
    over a ``ProcessPoolExecutor``.  Failures are captured per job — the batch
    always completes and the report carries the error text of each failure.

    ``progress_log`` is an optional *side channel* for job-level progress: a
    writable text stream (e.g. ``sys.stderr``) or a path opened in append
    mode.  One timestamped line is appended per outcome (including cache
    hits), with the batch-relative elapsed wall clock.  Stored records are
    unaffected — timings never enter the store, so resumed and parallel runs
    remain byte-identical.
    """
    ordered: List[Job] = []
    seen = set()
    for job in jobs:
        if job.key not in seen:
            seen.add(job.key)
            ordered.append(job)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    if store is not None and resume:
        # Another process (or another store instance on the same root) may
        # have appended records since this store's index was cached; resume
        # decisions must see them or completed jobs silently re-run.
        store.refresh()
    logger = _ProgressLogger(progress_log, len(ordered)) if progress_log is not None else None

    def _notify(outcome: JobOutcome) -> None:
        if logger is not None:
            logger(outcome)
        if progress is not None:
            progress(outcome)

    try:
        outcomes: Dict[str, JobOutcome] = {}
        pending: List[Job] = []
        for job in ordered:
            cached = store.get(job.key) if (store is not None and resume) else None
            if cached is not None and cached.get("status") == "ok":
                outcome = JobOutcome(job, "cached", cached)
                outcomes[job.key] = outcome
                _notify(outcome)
            else:
                pending.append(job)

        def _finish(job: Job, record: Dict[str, Any]) -> None:
            if store is not None:
                record = store.put(record)
            outcome = JobOutcome(job, record["status"], record)
            outcomes[job.key] = outcome
            _notify(outcome)

        payloads = [(job.experiment_id, dict(job.params)) for job in pending]
        if len(pending) <= 1 or n_jobs <= 1:
            for job, payload in zip(pending, payloads):
                _finish(job, _execute(payload))
        else:
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(pending))) as pool:
                # map() preserves submission order, so store rows are written in
                # job order no matter which worker finishes first.
                for job, record in zip(pending, pool.map(_execute, payloads, chunksize=1)):
                    _finish(job, record)
    finally:
        if logger is not None:
            logger.close()

    return RunReport([outcomes[job.key] for job in ordered])
