"""Experiment registry: id → runnable experiment with a derived params class.

Every experiment of the library (E01–E12, the A-series ablations and any
future workload) registers itself with the :func:`register` decorator.  The
decorator derives a frozen dataclass from the function signature — the single
"params object" that uniquely defines a run, following the py_experimenter
model where an experiment is a pure function of its parameter row — and wraps
the function so it can be called either with keyword overrides (the historic
calling convention, kept for the tests and benchmarks) or with one params
dataclass / mapping:

    result = experiment_e01_udg_threshold(trials=40)
    result = experiment_e01_udg_threshold(experiment_e01_udg_threshold.Params(trials=40))

After a run the wrapper stamps the fully-resolved, JSON-canonical parameters
onto ``result.params`` so the store can key the row without re-deriving them.
"""

from __future__ import annotations

import dataclasses
import functools
import inspect
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.runner.serialize import jsonify

__all__ = ["Experiment", "ExperimentRegistry", "REGISTRY", "register", "get_experiment"]

_MISSING = object()


def _params_dataclass(experiment_id: str, fn: Callable[..., Any]) -> type:
    """Frozen dataclass mirroring ``fn``'s signature (one field per argument)."""
    fields: List[Any] = []
    for name, param in inspect.signature(fn).parameters.items():
        if param.kind in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD):
            raise TypeError(
                f"experiment {experiment_id!r}: *args/**kwargs signatures cannot be registered"
            )
        annotation = param.annotation if param.annotation is not inspect.Parameter.empty else Any
        if param.default is inspect.Parameter.empty:
            fields.append((name, annotation))
        else:
            fields.append((name, annotation, dataclasses.field(default=param.default)))
    cls = dataclasses.make_dataclass(f"{experiment_id}Params", fields, frozen=True)
    cls.__doc__ = f"Parameters of experiment {experiment_id} ({fn.__name__})."
    return cls


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered experiment: the wrapper, its params class and metadata."""

    experiment_id: str
    run: Callable[..., Any]
    params_cls: type
    raw_fn: Callable[..., Any]
    title: str

    @property
    def field_names(self) -> List[str]:
        return [f.name for f in dataclasses.fields(self.params_cls)]

    def defaults(self) -> Dict[str, Any]:
        """Signature defaults (``_MISSING`` is never exposed: required args raise)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self.params_cls):
            if f.default is not dataclasses.MISSING:
                out[f.name] = f.default
        return out

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Full JSON-canonical parameter dict: defaults overlaid with ``overrides``.

        Raises ``TypeError`` on unknown or missing-required parameter names, so
        a bad job is rejected at job-creation time rather than inside a worker.
        """
        overrides = dict(overrides or {})
        names = self.field_names
        unknown = sorted(set(overrides) - set(names))
        if unknown:
            raise TypeError(
                f"experiment {self.experiment_id!r} has no parameter(s) {', '.join(unknown)}; "
                f"known parameters: {', '.join(names)}"
            )
        defaults = self.defaults()
        resolved: Dict[str, Any] = {}
        for name in names:
            if name in overrides:
                resolved[name] = overrides[name]
            elif name in defaults:
                resolved[name] = defaults[name]
            else:
                raise TypeError(
                    f"experiment {self.experiment_id!r} requires parameter {name!r}"
                )
        return jsonify(resolved)


class ExperimentRegistry:
    """Mutable id → :class:`Experiment` mapping with decorator-based insertion."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment_id: str, *, title: str | None = None) -> Callable:
        """Decorator registering a function as experiment ``experiment_id``."""
        if not experiment_id or not isinstance(experiment_id, str):
            raise ValueError("experiment_id must be a non-empty string")

        def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
            if experiment_id in self._experiments:
                raise ValueError(f"experiment id {experiment_id!r} is already registered")
            params_cls = _params_dataclass(experiment_id, fn)

            @functools.wraps(fn)
            def run(params=None, /, **kwargs):
                if params is not None:
                    if kwargs:
                        raise TypeError(
                            "pass either a params object or keyword overrides, not both"
                        )
                    if dataclasses.is_dataclass(params) and not isinstance(params, type):
                        kwargs = {
                            f.name: getattr(params, f.name)
                            for f in dataclasses.fields(params)
                        }
                    elif isinstance(params, Mapping):
                        kwargs = dict(params)
                    else:
                        raise TypeError(
                            f"experiment {experiment_id!r} takes keyword arguments or a "
                            f"single params dataclass/mapping, not a positional "
                            f"{type(params).__name__}"
                        )
                result = fn(**kwargs)
                if hasattr(result, "params"):
                    result.params = experiment.resolve_params(kwargs)
                return result

            run.experiment_id = experiment_id
            run.Params = params_cls
            experiment = Experiment(
                experiment_id=experiment_id,
                run=run,
                params_cls=params_cls,
                raw_fn=fn,
                title=title or _title_from(fn),
            )
            self._experiments[experiment_id] = experiment
            return run

        return decorator

    def get(self, experiment_id: str) -> Experiment:
        try:
            return self._experiments[experiment_id]
        except KeyError:
            known = ", ".join(self.ids()) or "(none)"
            raise KeyError(
                f"unknown experiment id {experiment_id!r}; registered: {known}"
            ) from None

    def unregister(self, experiment_id: str) -> None:
        self._experiments.pop(experiment_id, None)

    def ids(self) -> List[str]:
        return sorted(self._experiments)

    def as_mapping(self) -> Dict[str, Callable[..., Any]]:
        """Snapshot dict of id → runnable wrapper (insertion order preserved)."""
        return {eid: exp.run for eid, exp in self._experiments.items()}

    def __contains__(self, experiment_id: object) -> bool:
        return experiment_id in self._experiments

    def __iter__(self) -> Iterator[str]:
        return iter(self._experiments)

    def __len__(self) -> int:
        return len(self._experiments)


def _title_from(fn: Callable[..., Any]) -> str:
    doc = inspect.getdoc(fn)
    return doc.splitlines()[0].strip() if doc else fn.__name__


#: Process-wide default registry; experiment modules register into it on import.
REGISTRY = ExperimentRegistry()

register = REGISTRY.register
get_experiment = REGISTRY.get
