"""Parameter-grid expansion: axes → the cartesian list of parameter dicts.

``grid(trials=[100, 200], seed=range(3))`` yields the 6 parameter dicts of
the sweep, in deterministic (row-major, insertion-order) order.  Scalars are
broadcast, so ``grid(trials=[100, 200], window_side=20.0)`` pins
``window_side`` on every job.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = ["grid"]


def _as_axis(name: str, values: Any) -> List[Any]:
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        return [values]
    out = list(values)
    if not out:
        raise ValueError(f"grid axis {name!r} is empty")
    return out


def grid(axes: Optional[Mapping[str, Any]] = None, /, **kw_axes: Any) -> List[Dict[str, Any]]:
    """Expand axes (mapping and/or keywords) into the cartesian job list.

    Returns ``[{}]`` when no axes are given, so the result is always a valid
    ``param_sets`` argument for :func:`repro.runner.make_jobs`.
    """
    merged: Dict[str, Any] = {**(dict(axes) if axes else {}), **kw_axes}
    if not merged:
        return [{}]
    names = list(merged)
    values = [_as_axis(name, merged[name]) for name in names]
    return [dict(zip(names, combo)) for combo in product(*values)]
