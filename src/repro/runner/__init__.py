"""repro.runner — registry-driven parallel experiment runner.

The subsystem turns the E01–E12 entry points (and any future workload) into
uniquely-parameterised, cacheable, parallelisable jobs, following the
py_experimenter model: an experiment is a pure function of its parameter row.

* :mod:`repro.runner.registry` — ``@register("E01")`` decorator; derives a
  frozen params dataclass from the function signature.
* :mod:`repro.runner.grid` — ``grid(trials=[...], seed=range(...))`` →
  cartesian parameter sweep.
* :mod:`repro.runner.executor` — ``make_jobs`` (SeedSequence-spawned per-job
  seeds) and ``run_jobs`` (ProcessPoolExecutor fan-out, resume, failure log).
* :mod:`repro.runner.store` — append-only JSON-lines cache keyed by
  ``(experiment_id, params)``.
* :mod:`repro.runner.cli` — ``python -m repro.runner run E01 --jobs 8``.
"""

from repro.runner.executor import (
    Job,
    JobOutcome,
    RunReport,
    load_builtin_experiments,
    make_jobs,
    run_jobs,
)
from repro.runner.grid import grid
from repro.runner.registry import REGISTRY, Experiment, ExperimentRegistry, get_experiment, register
from repro.runner.serialize import canonical_json, jsonify, params_key
from repro.runner.store import DEFAULT_STORE_DIR, ResultStore

__all__ = [
    "DEFAULT_STORE_DIR",
    "Experiment",
    "ExperimentRegistry",
    "Job",
    "JobOutcome",
    "REGISTRY",
    "ResultStore",
    "RunReport",
    "canonical_json",
    "get_experiment",
    "grid",
    "jsonify",
    "load_builtin_experiments",
    "make_jobs",
    "params_key",
    "register",
    "run_jobs",
]
