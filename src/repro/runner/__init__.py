"""repro.runner — registry-driven parallel experiment runner.

The subsystem turns the E01–E12 entry points (and any future workload) into
uniquely-parameterised, cacheable, parallelisable jobs, following the
py_experimenter model: an experiment is a pure function of its parameter row.

* :mod:`repro.runner.registry` — ``@register("E01")`` decorator; derives a
  frozen params dataclass from the function signature.
* :mod:`repro.runner.grid` — ``grid(trials=[...], seed=range(...))`` →
  cartesian parameter sweep.
* :mod:`repro.runner.executor` — ``make_jobs`` (SeedSequence-spawned per-job
  seeds) and ``run_jobs`` (ProcessPoolExecutor fan-out, resume, failure log).
* :mod:`repro.runner.store` — the abstract latest-wins ``ResultStore``
  contract plus the append-only JSON-lines backend (``JsonlStore``), keyed by
  ``(experiment_id, params)``; ``ResultStore(path)`` dispatches on the path.
* :mod:`repro.runner.sqlite_store` — the SQLite/WAL backend
  (``SqliteStore``): one file, concurrent writers, same semantics.
* :mod:`repro.runner.queue` — pull-worker job queue on the SQLite backend
  (``JobQueue`` lease protocol + ``run_worker`` drain loop).
* :mod:`repro.runner.sweep` — TOML sweep configurations
  (``load_sweep("sweep.toml")`` → jobs).
* :mod:`repro.runner.cli` — ``python -m repro.runner run E01 --jobs 8``,
  ``... sweep sweep.toml [--enqueue]``, ``... worker --store x.sqlite``.
"""

from repro.runner.executor import (
    Job,
    JobOutcome,
    RunReport,
    load_builtin_experiments,
    make_jobs,
    run_jobs,
)
from repro.runner.grid import grid
from repro.runner.queue import JobQueue, QueuedJob, WorkerReport, run_worker
from repro.runner.registry import REGISTRY, Experiment, ExperimentRegistry, get_experiment, register
from repro.runner.serialize import canonical_json, jsonify, params_key
from repro.runner.sqlite_store import SqliteStore
from repro.runner.store import (
    DEFAULT_STORE_DIR,
    JsonlStore,
    ResultStore,
    StoreCorruptionWarning,
)
from repro.runner.sweep import ExperimentSweep, SweepConfig, load_sweep

__all__ = [
    "DEFAULT_STORE_DIR",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentSweep",
    "Job",
    "JobOutcome",
    "JobQueue",
    "JsonlStore",
    "QueuedJob",
    "REGISTRY",
    "ResultStore",
    "RunReport",
    "SqliteStore",
    "StoreCorruptionWarning",
    "SweepConfig",
    "WorkerReport",
    "canonical_json",
    "get_experiment",
    "grid",
    "jsonify",
    "load_builtin_experiments",
    "load_sweep",
    "make_jobs",
    "params_key",
    "register",
    "run_jobs",
    "run_worker",
]
