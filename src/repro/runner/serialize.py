"""Canonical JSON helpers shared by the runner registry, store and executor.

A job's cache key must be stable across processes, runs and worker counts, so
everything that feeds it is first reduced to plain JSON types (dict / list /
str / int / float / bool / None) and then dumped with sorted keys and fixed
separators.  :func:`jsonify` is also what makes :class:`ExperimentResult`
payloads (numpy scalars, arrays, tuples) storable as JSON lines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

import numpy as np

__all__ = ["jsonify", "canonical_json", "params_key", "result_to_payload"]


def jsonify(value: Any, *, strict: bool = True) -> Any:
    """Reduce ``value`` to plain JSON types, recursively.

    numpy scalars become Python scalars, arrays / tuples / ranges become
    lists, sets become sorted lists and dataclasses become dicts.  With
    ``strict=True`` (the default, used for cache keys) an unconvertible value
    raises ``TypeError``; with ``strict=False`` (used for result payloads) it
    degrades to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return jsonify(value.tolist(), strict=strict)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name), strict=strict)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): jsonify(v, strict=strict) for k, v in value.items()}
    if isinstance(value, (list, tuple, range)):
        return [jsonify(v, strict=strict) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonify(v, strict=strict) for v in value), key=repr)
    if strict:
        raise TypeError(
            f"cannot canonicalise {type(value).__name__} value {value!r} for the runner store"
        )
    return repr(value)


def canonical_json(value: Any, *, strict: bool = True) -> str:
    """One canonical JSON line for ``value`` (sorted keys, fixed separators)."""
    return json.dumps(jsonify(value, strict=strict), sort_keys=True, separators=(",", ":"))


def params_key(experiment_id: str, params: Mapping[str, Any]) -> str:
    """Stable cache key of an ``(experiment_id, params)`` pair."""
    payload = canonical_json({"experiment_id": experiment_id, "params": params})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_to_payload(result: Any) -> Any:
    """JSON-safe payload of an experiment's return value (lenient mode)."""
    return jsonify(result, strict=False)
