"""Pull-worker job queue on the SQLite backend (py_experimenter-style).

Instead of pushing payloads at a process pool, a sweep is *enqueued* into a
``jobs`` table living in the same SQLite file as the
:class:`~repro.runner.sqlite_store.SqliteStore` records, and any number of
workers — across processes or machines sharing the file — *pull* open jobs
from it:

* :meth:`JobQueue.claim` atomically (``BEGIN IMMEDIATE``) flips the oldest
  claimable job to ``claimed``, stamping the worker id and a lease deadline.
  A job is claimable when it is ``open``, or ``claimed`` but its lease has
  expired — a worker that died mid-job loses its lease and the job is
  re-opened for the next claimant, so a killed machine costs one lease
  period, never the sweep.
* While executing, the worker heartbeats (:meth:`JobQueue.heartbeat`) to
  extend its lease; a worker that discovers its lease was stolen stops
  touching the job's queue row.
* :meth:`JobQueue.complete` closes the job (``done`` / ``failed``), guarded
  by the worker id so a stale claimant cannot clobber the reclaimer's state.
* A job that keeps killing its claimants (a *poison job*) is **quarantined**
  once its attempt count reaches the worker's ``max_attempts`` budget —
  parked out of the claimable set with an explicit status instead of cycling
  through workers forever.  :meth:`JobQueue.requeue` (surfaced as
  ``python -m repro.runner requeue``) re-opens quarantined/failed rows after
  the operator fixes the cause.

Seeds are resolved at *enqueue* time (:func:`repro.runner.executor.make_jobs`
runs before the queue ever sees a job), so the records produced by any number
of workers in any interleaving are byte-identical to a serial run — at worst
an expired-lease job is executed twice, producing the same canonical record
twice, which latest-wins storage collapses.

:func:`run_worker` is the drain loop behind ``python -m repro.runner worker``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import os
import pathlib
import socket
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.runner.executor import Job, _execute
from repro.runner.serialize import canonical_json
from repro.runner.sqlite_store import SqliteStore, connect
from repro.runner.store import ResultStore

if TYPE_CHECKING:  # runtime import stays lazy: repro.faults.plan imports runner.serialize
    from repro.faults.plan import FaultInjector

__all__ = ["JobQueue", "QueuedJob", "WorkerReport", "run_worker", "default_worker_id"]

#: Queue-row lifecycle states.
OPEN, CLAIMED, DONE, FAILED = "open", "claimed", "done", "failed"
#: Poison jobs: over their attempt budget, parked until an explicit requeue.
QUARANTINED = "quarantined"

_ALL_STATES = (OPEN, CLAIMED, DONE, FAILED, QUARANTINED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_order     INTEGER PRIMARY KEY AUTOINCREMENT,
    key           TEXT NOT NULL UNIQUE,
    experiment_id TEXT NOT NULL,
    params        TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'open',
    worker        TEXT,
    lease_expires REAL,
    attempts      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status, job_order);
"""


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class QueuedJob:
    """One claimed queue row: the job plus its claim bookkeeping."""

    job: Job
    worker: str
    lease_expires: float
    attempts: int


class JobQueue:
    """Lease-based job queue in a SQLite/WAL file (shared with the store).

    All methods take an optional ``now`` (seconds, ``time.time`` scale) so
    lease arithmetic is testable without sleeping; production callers leave
    it to default to the wall clock.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._conn = connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._lock = threading.Lock()  # one connection per instance; serialise its use

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- filling ------------------------------------------------------------
    def enqueue(self, jobs: Iterable[Job], *, reopen_failed: bool = True) -> int:
        """Insert ``jobs`` (in order) as ``open``; returns how many were new.

        Keys already queued are left untouched — except ``failed`` ones,
        which are re-opened by default so re-enqueueing a sweep retries its
        failures (mirroring the executor's resume semantics, where only an
        ``ok`` record satisfies a job).
        """
        jobs = list(jobs)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                new = 0
                for job in jobs:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO jobs (key, experiment_id, params) "
                        "VALUES (?, ?, ?)",
                        (job.key, job.experiment_id, canonical_json(dict(job.params))),
                    )
                    new += cursor.rowcount
                    if cursor.rowcount == 0 and reopen_failed:
                        self._conn.execute(
                            "UPDATE jobs SET status = ?, worker = NULL, lease_expires = NULL "
                            "WHERE key = ? AND status = ?",
                            (OPEN, job.key, FAILED),
                        )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return new

    # -- claiming ------------------------------------------------------------
    def claim(
        self,
        worker: str,
        *,
        lease_seconds: float = 60.0,
        now: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> Optional[QueuedJob]:
        """Atomically claim the oldest claimable job, or return ``None``.

        Claimable: ``open``, or ``claimed`` with an expired lease (the
        previous claimant stopped heartbeating — crashed, killed, or
        partitioned — so the job is taken over).

        With ``max_attempts``, claimable rows already at the attempt budget
        are quarantined *inside the claim transaction* instead of handed
        out — the poison-job guard: a job that repeatedly kills its
        claimants (so no ``failed`` record is ever written) still leaves
        the claimable set after ``max_attempts`` leases.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if max_attempts is not None:
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, worker = NULL, lease_expires = NULL "
                        "WHERE attempts >= ? "
                        "AND (status = ? OR (status = ? AND lease_expires < ?))",
                        (QUARANTINED, max_attempts, OPEN, CLAIMED, now),
                    )
                row = self._conn.execute(
                    "SELECT job_order, key, experiment_id, params, attempts FROM jobs "
                    "WHERE status = ? OR (status = ? AND lease_expires < ?) "
                    "ORDER BY job_order LIMIT 1",
                    (OPEN, CLAIMED, now),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                job_order, key, experiment_id, params_json, attempts = row
                expires = now + lease_seconds
                self._conn.execute(
                    "UPDATE jobs SET status = ?, worker = ?, lease_expires = ?, "
                    "attempts = attempts + 1 WHERE job_order = ?",
                    (CLAIMED, worker, expires, job_order),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        job = Job(experiment_id, json.loads(params_json), key)
        return QueuedJob(job=job, worker=worker, lease_expires=expires, attempts=attempts + 1)

    def heartbeat(
        self, key: str, worker: str, *, lease_seconds: float = 60.0, now: Optional[float] = None
    ) -> bool:
        """Extend the lease on ``key`` if ``worker`` still holds it.

        Returns ``False`` when the lease was lost (expired and reclaimed, or
        the job was closed) — the caller must stop reporting on this job.
        """
        now = time.time() if now is None else now
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE key = ? AND worker = ? AND status = ?",
                (now + lease_seconds, key, worker, CLAIMED),
            )
        return cursor.rowcount == 1

    def complete(self, key: str, worker: str, *, status: str = DONE) -> bool:
        """Close ``key`` as ``done``/``failed``/``quarantined`` if ``worker`` holds it."""
        if status not in (DONE, FAILED, QUARANTINED):
            raise ValueError(
                f"complete() status must be {DONE!r}, {FAILED!r} or {QUARANTINED!r}, "
                f"got {status!r}"
            )
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status = ?, lease_expires = NULL WHERE key = ? "
                "AND worker = ? AND status = ?",
                (status, key, worker, CLAIMED),
            )
        return cursor.rowcount == 1

    def release(self, key: str, worker: str) -> bool:
        """Hand ``key`` back to the queue (``open``) if ``worker`` holds it."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status = ?, worker = NULL, lease_expires = NULL "
                "WHERE key = ? AND worker = ? AND status = ?",
                (OPEN, key, worker, CLAIMED),
            )
        return cursor.rowcount == 1

    def reopen_expired(self, *, now: Optional[float] = None) -> int:
        """Flip every expired ``claimed`` job back to ``open``; returns count.

        :meth:`claim` already treats expired leases as claimable, so this is
        not needed for progress — it exists so operators (and tests) can
        observe takeover explicitly, e.g. before reading :meth:`counts`.
        """
        now = time.time() if now is None else now
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status = ?, worker = NULL, lease_expires = NULL "
                "WHERE status = ? AND lease_expires < ?",
                (OPEN, CLAIMED, now),
            )
        return cursor.rowcount

    def requeue(
        self,
        keys: Optional[Iterable[str]] = None,
        *,
        statuses: Tuple[str, ...] = (FAILED, QUARANTINED),
        reset_attempts: bool = True,
    ) -> int:
        """Re-open failed/quarantined jobs for another drain; returns count.

        The operator-facing recovery path behind ``python -m repro.runner
        requeue``: after the cause of a poison job is fixed, its rows go
        back to ``open`` (attempt counters reset by default, so the fresh
        budget is a full one) and any worker drains them normally.  ``keys``
        restricts the requeue to specific jobs; the default touches every
        row in ``statuses``.
        """
        for status in statuses:
            if status not in (FAILED, QUARANTINED):
                raise ValueError(
                    f"requeue only reopens failed/quarantined jobs, got status {status!r}"
                )
        set_clause = "status = ?, worker = NULL, lease_expires = NULL"
        if reset_attempts:
            set_clause += ", attempts = 0"
        marks = ",".join("?" for _ in statuses)
        sql = f"UPDATE jobs SET {set_clause} WHERE status IN ({marks})"
        params: List[Any] = [OPEN, *statuses]
        if keys is not None:
            key_list = list(keys)
            if not key_list:
                return 0
            sql += f" AND key IN ({','.join('?' for _ in key_list)})"
            params.extend(key_list)
        with self._lock:
            cursor = self._conn.execute(sql, params)
        return cursor.rowcount

    # -- introspection --------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row count per status (always has all five states as keys)."""
        out = {status: 0 for status in _ALL_STATES}
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ).fetchall()
        out.update(dict(rows))
        return out

    def unfinished(self) -> int:
        """Jobs not yet ``done``/``failed`` (open or claimed by someone)."""
        counts = self.counts()
        return counts[OPEN] + counts[CLAIMED]

    def rows(self) -> List[Dict[str, Any]]:
        """Full queue dump in job order (for ``show``-style inspection)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, experiment_id, status, worker, lease_expires, attempts "
                "FROM jobs ORDER BY job_order"
            ).fetchall()
        names = ("key", "experiment_id", "status", "worker", "lease_expires", "attempts")
        return [dict(zip(names, row)) for row in rows]


class _LeaseHeartbeat(threading.Thread):
    """Extends a job's lease on its own connection while the job executes."""

    def __init__(self, path: pathlib.Path, key: str, worker: str, lease_seconds: float) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat[{key[:10]}]")
        self._path = path
        self._key = key
        self._worker = worker
        self._lease_seconds = lease_seconds
        # Not named _stop: threading.Thread has an internal _stop() method.
        self._halt = threading.Event()
        self.lost = False

    def run(self) -> None:
        interval = max(self._lease_seconds / 3.0, 0.05)
        queue = JobQueue(self._path)
        try:
            while not self._halt.wait(interval):
                if not queue.heartbeat(self._key, self._worker, lease_seconds=self._lease_seconds):
                    self.lost = True
                    return
        finally:
            queue.close()

    def stop(self) -> None:
        self._halt.set()
        self.join()


@dataclass
class WorkerReport:
    """What one :func:`run_worker` drain accomplished."""

    worker: str
    n_ok: int = 0
    n_cached: int = 0
    n_failed: int = 0
    n_quarantined: int = 0
    keys: List[str] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return self.n_ok + self.n_cached + self.n_failed + self.n_quarantined


def run_worker(
    store: Union[SqliteStore, str, pathlib.Path],
    *,
    worker_id: Optional[str] = None,
    lease_seconds: float = 60.0,
    poll_seconds: float = 1.0,
    max_jobs: Optional[int] = None,
    wait: bool = False,
    progress: Optional[Any] = None,
    max_attempts: Optional[int] = 5,
    sleep: Callable[[float], None] = time.sleep,
    injector: Optional["FaultInjector"] = None,
) -> WorkerReport:
    """Pull-worker drain loop: claim → execute → store → complete, repeat.

    Runs until the queue is drained (no ``open`` jobs and no outstanding
    claims — claims held by *other* live workers are waited out, since their
    death would re-open jobs), until ``max_jobs`` jobs were processed, or
    forever when ``wait=True`` (a standing worker that idles at
    ``poll_seconds`` cadence once the queue empties, picking up jobs enqueued
    later).

    Results go through the normal store path: a job whose key already has an
    ``ok`` record is completed as cached without re-running, every other
    claim executes in-process and appends its canonical record before the
    queue row closes.  Crash ordering is safe: the record is stored *before*
    ``complete``, so a worker dying in between re-runs one job (same bytes)
    rather than losing one.

    ``max_attempts`` is the poison-job budget: a job at the cap is
    quarantined (at claim time for jobs that killed their claimants, at
    completion time for jobs that failed this attempt) instead of retried
    forever; ``None`` disables the guard.  ``sleep`` is the injected idle
    sleeper (tests pass a stub so polling costs no wall time) and
    ``injector`` an optional seeded fault injector whose ``queue.execute``
    point fires once per executed claim — a *crash* fault raises
    :class:`~repro.faults.plan.InjectedWorkerCrash` out of the loop with the
    claim still held (a simulated worker death: recovery is the next
    claimant's lease takeover, exactly as for SIGKILL), a *stall* sleeps
    ``arg`` seconds before executing.  Any *other* unexpected error releases
    the claim back to ``open`` on the way out, so a crashing worker process
    never parks a job for a full lease period it isn't using.
    """
    if not isinstance(store, SqliteStore):
        resolved = ResultStore(store)
        if not isinstance(resolved, SqliteStore):
            raise ValueError(
                f"the pull-worker queue needs the SQLite store backend; {store!r} "
                "resolves to a JSON-lines directory store (use a *.sqlite path)"
            )
        store = resolved
    from repro.faults.plan import CRASH, STALL, InjectedWorkerCrash

    worker = worker_id or default_worker_id()
    report = WorkerReport(worker=worker)
    queue = JobQueue(store.path)
    try:
        while max_jobs is None or report.n_jobs < max_jobs:
            claim = queue.claim(worker, lease_seconds=lease_seconds, max_attempts=max_attempts)
            if claim is None:
                if not wait and queue.unfinished() == 0:
                    break
                sleep(poll_seconds)
                continue
            job = claim.job
            store.refresh()
            cached = store.get(job.key)
            if cached is not None and cached.get("status") == "ok":
                queue.complete(job.key, worker, status=DONE)
                report.n_cached += 1
                report.keys.append(job.key)
                if progress is not None:
                    progress(job, "cached")
                continue
            heartbeat = _LeaseHeartbeat(store.path, job.key, worker, lease_seconds)
            heartbeat.start()
            try:
                fault = injector.fire("queue.execute") if injector is not None else None
                if fault is not None:
                    if fault.kind == CRASH:
                        raise InjectedWorkerCrash(f"injected worker death on {job.key[:10]}")
                    if fault.kind == STALL:
                        sleep(float(fault.arg))
                record = _execute((job.experiment_id, dict(job.params)))
                store.put(record)
            except InjectedWorkerCrash:
                # A simulated SIGKILL: the dead worker cannot release its
                # claim, so leave it held — recovery is lease expiry.
                raise
            except BaseException:
                # A live worker dying of an unexpected error hands its claim
                # straight back instead of parking it for a lease period.
                if not heartbeat.lost:
                    queue.release(job.key, worker)
                raise
            finally:
                # One join for every exit path — success, crash, Ctrl-C —
                # so no heartbeat thread ever outlives its claim.
                heartbeat.stop()
            status = DONE if record["status"] == "ok" else FAILED
            if status == FAILED and max_attempts is not None and claim.attempts >= max_attempts:
                status = QUARANTINED
            if not heartbeat.lost:
                queue.complete(job.key, worker, status=status)
            if status == DONE:
                report.n_ok += 1
            elif status == QUARANTINED:
                report.n_quarantined += 1
            else:
                report.n_failed += 1
            report.keys.append(job.key)
            if progress is not None:
                progress(job, "quarantined" if status == QUARANTINED else record["status"])
    finally:
        queue.close()
    return report
