"""Append-only JSON-lines result store with resume-on-rerun semantics.

One ``<experiment_id>.jsonl`` file per experiment under the store root; each
line is one canonical-JSON record::

    {"key": ..., "experiment_id": ..., "params": {...},
     "status": "ok" | "failed", "result": {...} | "error": "..."}

Records are keyed by :func:`repro.runner.serialize.params_key` over
``(experiment_id, params)``.  The store is append-only — a rerun of a failed
or forced job appends a fresh record and the *latest* record for a key wins —
so the files double as a failure log.  Because records are canonical JSON and
contain no timestamps, identical runs produce byte-identical rows regardless
of worker count or scheduling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.runner.serialize import canonical_json

__all__ = ["ResultStore", "DEFAULT_STORE_DIR"]

#: Default cache directory of the CLI (git-ignored).
DEFAULT_STORE_DIR = "runner_cache"


class ResultStore:
    """JSON-lines store rooted at a directory, lazily indexed in memory."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self._index: Optional[Dict[str, Dict[str, Any]]] = None

    # -- loading ------------------------------------------------------------
    def _ensure_loaded(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            index: Dict[str, Dict[str, Any]] = {}
            if self.root.is_dir():
                for path in sorted(self.root.glob("*.jsonl")):
                    with path.open("r", encoding="utf-8") as fh:
                        for line in fh:
                            line = line.strip()
                            if not line:
                                continue
                            record = json.loads(line)
                            index[record["key"]] = record
            self._index = index
        return self._index

    def path_for(self, experiment_id: str) -> pathlib.Path:
        return self.root / f"{experiment_id}.jsonl"

    # -- queries ------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Latest record for ``key``, or ``None``."""
        return self._ensure_loaded().get(key)

    def records(
        self, experiment_id: Optional[str] = None, status: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Current (latest-wins) records, optionally filtered."""
        out = []
        for record in self._ensure_loaded().values():
            if experiment_id is not None and record.get("experiment_id") != experiment_id:
                continue
            if status is not None and record.get("status") != status:
                continue
            out.append(record)
        return out

    def failures(self, experiment_id: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.records(experiment_id=experiment_id, status="failed")

    def __len__(self) -> int:
        return len(self._ensure_loaded())

    def __contains__(self, key: object) -> bool:
        return key in self._ensure_loaded()

    # -- writes -------------------------------------------------------------
    def put(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Append ``record`` (must carry key / experiment_id / status).

        Returns the normalised (JSON round-tripped) record that the index now
        holds for the key.
        """
        for field in ("key", "experiment_id", "status"):
            if field not in record:
                raise ValueError(f"store record is missing the {field!r} field")
        line = canonical_json(record, strict=False)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record["experiment_id"])
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        normalised: Dict[str, Any] = json.loads(line)
        self._ensure_loaded()[normalised["key"]] = normalised
        return normalised
