"""Result-store contract and the append-only JSON-lines backend.

:class:`ResultStore` is the abstract store interface of the runner: a
latest-wins mapping from job key to record, shared by every backend.

    {"key": ..., "experiment_id": ..., "params": {...},
     "status": "ok" | "failed", "result": {...} | "error": "..."}

Records are keyed by :func:`repro.runner.serialize.params_key` over
``(experiment_id, params)``.  Stores are append-only — a rerun of a failed
or forced job appends a fresh record and the *latest* record for a key wins —
so the backing files double as a failure log.  Because records are canonical
JSON and contain no timestamps, identical runs produce byte-identical rows
regardless of worker count or scheduling.

Two backends implement the contract:

* :class:`JsonlStore` — one ``<experiment_id>.jsonl`` file per experiment
  under a store-root *directory*; zero dependencies, human-greppable, the
  default.  Appends are single ``O_APPEND`` writes so concurrent processes
  never interleave partial lines.
* :class:`repro.runner.sqlite_store.SqliteStore` — one SQLite file in WAL
  mode; safe concurrent writers, and the backend that carries the pull-worker
  job queue (:mod:`repro.runner.queue`).

Like :class:`pathlib.Path`, instantiating the abstract class dispatches on
the root: a directory (or a path without a SQLite suffix) gives a
:class:`JsonlStore`, a ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` path — or an
existing file bearing the SQLite magic header — gives a ``SqliteStore``.
``ResultStore("runner_cache")`` and ``ResultStore("sweep.sqlite")`` therefore
both do the right thing, and every consumer (executor, CLI, analysis tables)
selects the backend purely through the path it was handed.
"""

from __future__ import annotations

import abc
import json
import os
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union
import warnings

from repro.runner.serialize import canonical_json

__all__ = [
    "ResultStore",
    "JsonlStore",
    "StoreCorruptionWarning",
    "DEFAULT_STORE_DIR",
]

#: Default cache directory of the CLI (git-ignored).
DEFAULT_STORE_DIR = "runner_cache"

#: File suffixes that select the SQLite backend when dispatching on a path.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: First bytes of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"


class StoreCorruptionWarning(UserWarning):
    """A store file held an undecodable line (e.g. a torn, crash-interrupted
    append); the line was skipped and the rest of the file was loaded."""


def _is_sqlite_root(root: Union[str, pathlib.Path]) -> bool:
    path = pathlib.Path(root)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return True
    if path.is_file():
        with path.open("rb") as fh:
            return fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    return False


class ResultStore(abc.ABC):
    """Abstract latest-wins result store; instantiation dispatches by root.

    Subclasses implement the storage primitives (``_current_index``, ``put``,
    ``refresh``, ``path_for``); every query helper is shared so the two
    backends cannot drift apart semantically.
    """

    def __new__(
        cls, root: Union[str, pathlib.Path] = DEFAULT_STORE_DIR, *args: Any, **kwargs: Any
    ) -> "ResultStore":
        if cls is ResultStore:
            if _is_sqlite_root(root):
                from repro.runner.sqlite_store import SqliteStore

                cls = SqliteStore
            else:
                cls = JsonlStore
        return object.__new__(cls)

    def __init__(self, root: Union[str, pathlib.Path] = DEFAULT_STORE_DIR) -> None:
        self.root = pathlib.Path(root)

    # -- storage primitives (backend-specific) -------------------------------
    @abc.abstractmethod
    def _current_index(self) -> Dict[str, Dict[str, Any]]:
        """The latest-wins ``key -> record`` mapping, loading lazily."""

    @abc.abstractmethod
    def refresh(self) -> None:
        """Pick up records appended by *other* processes or store instances.

        The index is cached for query speed; ``refresh()`` revalidates it
        against the backing storage (mtime/size for JSON lines, the append
        log's sequence number for SQLite) so resume decisions never act on a
        stale view.
        """

    @abc.abstractmethod
    def put(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Append ``record`` (must carry key / experiment_id / status).

        Returns the normalised (JSON round-tripped) record that the index now
        holds for the key.
        """

    @abc.abstractmethod
    def path_for(self, experiment_id: str) -> pathlib.Path:
        """Where records of ``experiment_id`` live (file path, for messages)."""

    def close(self) -> None:
        """Release backend resources (connections, fds).  Idempotent."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- shared record validation/normalisation ------------------------------
    @staticmethod
    def _encode_record(record: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        for field in ("key", "experiment_id", "status"):
            if field not in record:
                raise ValueError(f"store record is missing the {field!r} field")
        line = canonical_json(record, strict=False)
        return line, json.loads(line)

    # -- queries -------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Latest record for ``key``, or ``None``."""
        return self._current_index().get(key)

    def records(
        self, experiment_id: Optional[str] = None, status: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Current (latest-wins) records, optionally filtered."""
        out = []
        for record in self._current_index().values():
            if experiment_id is not None and record.get("experiment_id") != experiment_id:
                continue
            if status is not None and record.get("status") != status:
                continue
            out.append(record)
        return out

    def failures(self, experiment_id: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.records(experiment_id=experiment_id, status="failed")

    def result_rows(
        self, experiment_id: Optional[str] = None, status: Optional[str] = "ok"
    ) -> List[Dict[str, Any]]:
        """Flat export rows: one dict per stored *result-table* row.

        Each row of each record's ``result.rows`` is merged with the record's
        parameters (prefixed ``param_``) plus ``experiment_id`` and ``key``,
        so sweeps become one flat table.  Records whose results carry no rows
        contribute their headline instead (prefixed ``headline_``).  This is
        the zero-dependency backing of :meth:`to_dataframe` and of the table
        renderers in :mod:`repro.analysis.tables`.
        """
        out: List[Dict[str, Any]] = []
        for record in self.records(experiment_id=experiment_id, status=status):
            base: Dict[str, Any] = {
                "experiment_id": record.get("experiment_id"),
                "key": record.get("key"),
            }
            for name, value in (record.get("params") or {}).items():
                base[f"param_{name}"] = value
            result = record.get("result") or {}
            rows = result.get("rows") if isinstance(result, dict) else None
            if rows:
                for row in rows:
                    out.append({**base, **row})
            else:
                headline = result.get("headline", {}) if isinstance(result, dict) else {}
                out.append({**base, **{f"headline_{k}": v for k, v in headline.items()}})
        return out

    def to_dataframe(
        self, experiment_id: Optional[str] = None, status: Optional[str] = "ok"
    ) -> "Any":
        """The :meth:`result_rows` export as a :class:`pandas.DataFrame`.

        pandas is an *optional* dependency: the library never imports it at
        module scope, and this method raises a helpful ``ImportError`` when
        it is missing (``result_rows`` plus
        :func:`repro.analysis.tables.format_table` are the zero-dependency
        alternative).
        """
        try:
            import pandas as pd
        except ImportError as err:
            raise ImportError(
                "ResultStore.to_dataframe() needs the optional pandas dependency; "
                "install pandas, or use ResultStore.result_rows() with "
                "repro.analysis.tables.format_table for a plain-text table"
            ) from err
        return pd.DataFrame(self.result_rows(experiment_id=experiment_id, status=status))

    def __len__(self) -> int:
        return len(self._current_index())

    def __contains__(self, key: object) -> bool:
        return key in self._current_index()


class JsonlStore(ResultStore):
    """JSON-lines store rooted at a directory, lazily indexed in memory.

    The in-memory index is kept per file together with the ``(mtime_ns,
    size)`` of the file it was read from, so :meth:`refresh` re-reads only
    files another writer actually changed.  Appends go through a single
    ``os.write`` on an ``O_APPEND`` descriptor: the kernel serialises
    concurrent appends at the file offset, so parallel writers never
    interleave partial lines and a record is either fully on disk or absent.
    """

    def __init__(self, root: Union[str, pathlib.Path] = DEFAULT_STORE_DIR) -> None:
        super().__init__(root)
        self._file_indexes: Dict[pathlib.Path, Dict[str, Dict[str, Any]]] = {}
        self._file_stats: Dict[pathlib.Path, Tuple[int, int]] = {}
        self._index: Optional[Dict[str, Dict[str, Any]]] = None

    # -- loading ------------------------------------------------------------
    @staticmethod
    def _read_file(path: pathlib.Path) -> Dict[str, Dict[str, Any]]:
        """Latest-wins index of one ``.jsonl`` file, skipping corrupt lines.

        A crash between the ``O_APPEND`` write being issued and completing can
        leave a torn trailing line; such a line must cost at most its own
        record, not brick the whole store, so undecodable lines are skipped
        with a :class:`StoreCorruptionWarning` naming the file and line.
        """
        index: Dict[str, Dict[str, Any]] = {}
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}:{lineno}: skipping corrupt store line "
                        f"(torn append from a crashed writer?)",
                        StoreCorruptionWarning,
                        stacklevel=3,
                    )
                    continue
                index[record["key"]] = record
        return index

    def _merge_index(self) -> None:
        merged: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self._file_indexes):
            merged.update(self._file_indexes[path])
        self._index = merged

    def _current_index(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            self._file_indexes = {}
            self._file_stats = {}
            if self.root.is_dir():
                for path in sorted(self.root.glob("*.jsonl")):
                    stat = path.stat()
                    self._file_indexes[path] = self._read_file(path)
                    self._file_stats[path] = (stat.st_mtime_ns, stat.st_size)
            self._merge_index()
        return self._index

    def refresh(self) -> None:
        if self._index is None:
            return  # nothing cached yet; the next query loads from scratch
        on_disk: Dict[pathlib.Path, Tuple[int, int]] = {}
        if self.root.is_dir():
            for path in self.root.glob("*.jsonl"):
                stat = path.stat()
                on_disk[path] = (stat.st_mtime_ns, stat.st_size)
        if on_disk == self._file_stats:
            return
        for path in set(self._file_indexes) - set(on_disk):
            del self._file_indexes[path]
            del self._file_stats[path]
        for path, stat in on_disk.items():
            if self._file_stats.get(path) != stat:
                self._file_indexes[path] = self._read_file(path)
                self._file_stats[path] = stat
        self._merge_index()

    def path_for(self, experiment_id: str) -> pathlib.Path:
        return self.root / f"{experiment_id}.jsonl"

    # -- writes -------------------------------------------------------------
    def put(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        line, normalised = self._encode_record(record)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(normalised["experiment_id"])
        payload = (line + "\n").encode("utf-8")
        # One O_APPEND write per record: appends from concurrent processes are
        # serialised by the kernel at the (atomically advanced) end offset, so
        # lines never interleave, and a killed writer loses at most its own
        # in-flight record instead of corrupting a shared buffer.
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            # A crashed writer can leave the file without a trailing newline
            # (a torn line); start on a fresh line so this record does not get
            # glued onto the corrupt fragment.  Another process appending in
            # between is harmless — its line is terminated, so the extra
            # newline only creates a blank line, which the loader skips.
            if hasattr(os, "pread"):
                size = os.fstat(fd).st_size
                if size and os.pread(fd, 1, size - 1) != b"\n":
                    payload = b"\n" + payload
            written = os.write(fd, payload)
            while written < len(payload):  # practically unreachable on regular files
                written += os.write(fd, payload[written:])
        finally:
            os.close(fd)
        self._current_index()[normalised["key"]] = normalised
        self._file_indexes.setdefault(path, {})[normalised["key"]] = normalised
        # Do NOT cache a post-write stat: it could cover a concurrent writer's
        # append that is absent from the local index, and refresh() would then
        # skip the file forever.  Dropping the stat makes the next refresh()
        # re-read this file — the safe direction.
        self._file_stats.pop(path, None)
        return normalised
