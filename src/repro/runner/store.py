"""Append-only JSON-lines result store with resume-on-rerun semantics.

One ``<experiment_id>.jsonl`` file per experiment under the store root; each
line is one canonical-JSON record::

    {"key": ..., "experiment_id": ..., "params": {...},
     "status": "ok" | "failed", "result": {...} | "error": "..."}

Records are keyed by :func:`repro.runner.serialize.params_key` over
``(experiment_id, params)``.  The store is append-only — a rerun of a failed
or forced job appends a fresh record and the *latest* record for a key wins —
so the files double as a failure log.  Because records are canonical JSON and
contain no timestamps, identical runs produce byte-identical rows regardless
of worker count or scheduling.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.runner.serialize import canonical_json

__all__ = ["ResultStore", "DEFAULT_STORE_DIR"]

#: Default cache directory of the CLI (git-ignored).
DEFAULT_STORE_DIR = "runner_cache"


class ResultStore:
    """JSON-lines store rooted at a directory, lazily indexed in memory."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self._index: Optional[Dict[str, Dict[str, Any]]] = None

    # -- loading ------------------------------------------------------------
    def _ensure_loaded(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            index: Dict[str, Dict[str, Any]] = {}
            if self.root.is_dir():
                for path in sorted(self.root.glob("*.jsonl")):
                    with path.open("r", encoding="utf-8") as fh:
                        for line in fh:
                            line = line.strip()
                            if not line:
                                continue
                            record = json.loads(line)
                            index[record["key"]] = record
            self._index = index
        return self._index

    def path_for(self, experiment_id: str) -> pathlib.Path:
        return self.root / f"{experiment_id}.jsonl"

    # -- queries ------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Latest record for ``key``, or ``None``."""
        return self._ensure_loaded().get(key)

    def records(
        self, experiment_id: Optional[str] = None, status: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Current (latest-wins) records, optionally filtered."""
        out = []
        for record in self._ensure_loaded().values():
            if experiment_id is not None and record.get("experiment_id") != experiment_id:
                continue
            if status is not None and record.get("status") != status:
                continue
            out.append(record)
        return out

    def failures(self, experiment_id: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.records(experiment_id=experiment_id, status="failed")

    def result_rows(
        self, experiment_id: Optional[str] = None, status: Optional[str] = "ok"
    ) -> List[Dict[str, Any]]:
        """Flat export rows: one dict per stored *result-table* row.

        Each row of each record's ``result.rows`` is merged with the record's
        parameters (prefixed ``param_``) plus ``experiment_id`` and ``key``,
        so sweeps become one flat table.  Records whose results carry no rows
        contribute their headline instead (prefixed ``headline_``).  This is
        the zero-dependency backing of :meth:`to_dataframe` and of the table
        renderers in :mod:`repro.analysis.tables`.
        """
        out: List[Dict[str, Any]] = []
        for record in self.records(experiment_id=experiment_id, status=status):
            base: Dict[str, Any] = {
                "experiment_id": record.get("experiment_id"),
                "key": record.get("key"),
            }
            for name, value in (record.get("params") or {}).items():
                base[f"param_{name}"] = value
            result = record.get("result") or {}
            rows = result.get("rows") if isinstance(result, dict) else None
            if rows:
                for row in rows:
                    out.append({**base, **row})
            else:
                headline = result.get("headline", {}) if isinstance(result, dict) else {}
                out.append({**base, **{f"headline_{k}": v for k, v in headline.items()}})
        return out

    def to_dataframe(
        self, experiment_id: Optional[str] = None, status: Optional[str] = "ok"
    ) -> "Any":
        """The :meth:`result_rows` export as a :class:`pandas.DataFrame`.

        pandas is an *optional* dependency: the library never imports it at
        module scope, and this method raises a helpful ``ImportError`` when
        it is missing (``result_rows`` plus
        :func:`repro.analysis.tables.format_table` are the zero-dependency
        alternative).
        """
        try:
            import pandas as pd
        except ImportError as err:
            raise ImportError(
                "ResultStore.to_dataframe() needs the optional pandas dependency; "
                "install pandas, or use ResultStore.result_rows() with "
                "repro.analysis.tables.format_table for a plain-text table"
            ) from err
        return pd.DataFrame(self.result_rows(experiment_id=experiment_id, status=status))

    def __len__(self) -> int:
        return len(self._ensure_loaded())

    def __contains__(self, key: object) -> bool:
        return key in self._ensure_loaded()

    # -- writes -------------------------------------------------------------
    def put(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        """Append ``record`` (must carry key / experiment_id / status).

        Returns the normalised (JSON round-tripped) record that the index now
        holds for the key.
        """
        for field in ("key", "experiment_id", "status"):
            if field not in record:
                raise ValueError(f"store record is missing the {field!r} field")
        line = canonical_json(record, strict=False)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record["experiment_id"])
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        normalised: Dict[str, Any] = json.loads(line)
        self._ensure_loaded()[normalised["key"]] = normalised
        return normalised
