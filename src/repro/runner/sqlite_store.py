"""SQLite result-store backend: one WAL-mode file, safe concurrent writers.

:class:`SqliteStore` implements the :class:`repro.runner.store.ResultStore`
contract on a single SQLite database file.  Records land in an append-only
``records`` log table (monotonic ``seq``, canonical-JSON payload), mirroring
the JSON-lines semantics exactly: a rerun appends a fresh row and the latest
row per key wins.  WAL journal mode lets many processes append concurrently —
readers never block writers — which is what the pull-worker protocol in
:mod:`repro.runner.queue` builds on (its ``jobs`` table lives in the same
file, so one path names a whole campaign: queue plus results).

Determinism: record payloads are canonical JSON with no timestamps, and the
latest-wins index is materialised in *key* order — independent of which
worker committed first — so ``result_rows()`` of a queue drained by N
concurrent workers is byte-identical to the single-process run of the same
sweep.

The in-memory index refreshes incrementally: the log is append-only, so
``refresh()`` only fetches rows with ``seq`` beyond the last one seen.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from typing import Any, Dict, Mapping, Union

from repro.runner.store import ResultStore

__all__ = ["SqliteStore", "connect"]

#: SQLite busy timeout — how long a writer waits for a competing writer's
#: transaction before giving up (milliseconds).
BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq           INTEGER PRIMARY KEY AUTOINCREMENT,
    key           TEXT NOT NULL,
    experiment_id TEXT NOT NULL,
    status        TEXT NOT NULL,
    record        TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_key ON records(key, seq);
"""


def connect(path: Union[str, pathlib.Path]) -> sqlite3.Connection:
    """Open ``path`` with the store's concurrency settings applied.

    WAL journal mode (concurrent readers + one serialised writer without
    blocking), ``synchronous=NORMAL`` (WAL-safe durability) and a generous
    busy timeout so competing writers queue instead of raising.  Used by both
    the record store and the job queue so every connection to a campaign file
    behaves identically.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path), timeout=BUSY_TIMEOUT_MS / 1000, isolation_level=None)
    conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    return conn


class SqliteStore(ResultStore):
    """Append-only latest-wins record store on one SQLite/WAL file."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        super().__init__(root)
        self._conn: sqlite3.Connection | None = None
        self._index: Dict[str, Dict[str, Any]] | None = None
        self._last_seq = 0
        self._needs_sort = False

    @property
    def path(self) -> pathlib.Path:
        """The database file (``root`` is a file for this backend)."""
        return self.root

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = connect(self.root)
            self._conn.executescript(_SCHEMA)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- loading ------------------------------------------------------------
    def _ingest_new_rows(self) -> None:
        """Merge rows appended since ``_last_seq`` into the cached index."""
        assert self._index is not None
        rows = self._connection().execute(
            "SELECT seq, record FROM records WHERE seq > ? ORDER BY seq", (self._last_seq,)
        ).fetchall()
        if not rows:
            return
        for seq, payload in rows:
            record = json.loads(payload)
            self._index[record["key"]] = record
            self._last_seq = seq
        self._needs_sort = True

    def _current_index(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            self._index = {}
            self._last_seq = 0
            self._ingest_new_rows()
        if self._needs_sort:
            # Key order, not commit order: N concurrent writers and one serial
            # writer must expose identical iteration order (the byte-identity
            # contract of result_rows()).  Sorted lazily at read time so a
            # worker draining a large queue doesn't re-sort on every put.
            self._index = dict(sorted(self._index.items()))
            self._needs_sort = False
        return self._index

    def refresh(self) -> None:
        if self._index is None:
            return  # nothing cached yet; the next query loads from scratch
        self._ingest_new_rows()

    def path_for(self, experiment_id: str) -> pathlib.Path:
        return self.root

    # -- writes -------------------------------------------------------------
    def put(self, record: Mapping[str, Any]) -> Dict[str, Any]:
        line, normalised = self._encode_record(record)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT INTO records (key, experiment_id, status, record) VALUES (?, ?, ?, ?)",
                (normalised["key"], normalised["experiment_id"], normalised["status"], line),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if self._index is not None:
            self._ingest_new_rows()
            return self._index.get(normalised["key"], normalised)
        return normalised
