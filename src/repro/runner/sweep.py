"""TOML sweep configurations: a campaign as a reviewable artifact.

A sweep file replaces shell history as the record of a large campaign: it
names the store (and thereby the backend), the base seed, and per experiment
the pinned parameters and grid axes.  Format::

    [runner]
    store = "campaign.sqlite"   # directory -> JSON lines, *.sqlite -> SQLite
    seed = 42                   # base seed; per-job seeds spawn from it
    jobs = 4                    # default worker-process count for `sweep`

    [experiments.E01]
    trials = 200                # top-level value  -> pinned parameter
    [experiments.E01.grid]
    intensity = [5.0, 10.0]     # grid.* value     -> sweep axis (a list)

    [experiments.M01]
    n_steps = 5
    [experiments.M01.grid]
    seed = [1, 2, 3]            # an explicit seed axis overrides base-seed
                                # spawning for those jobs

The pin/axis split is positional, so a *list-valued* parameter can still be
pinned (write it at the top level) and axes are always explicit (write them
under ``grid``); there is no guessing from value shapes.  Experiments expand
in file order, axes in key order — byte-stable job lists for a given file.

Parsed with :mod:`tomllib` (Python >= 3.11) or the ``tomli`` backport when
present; :func:`load_sweep` raises a helpful ``ImportError`` otherwise —
TOML support never becomes an import-time dependency of the runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Union

try:
    import tomllib as _toml
except ModuleNotFoundError:  # Python < 3.11
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

from repro.runner.executor import Job, make_jobs
from repro.runner.grid import grid

__all__ = ["ExperimentSweep", "SweepConfig", "load_sweep"]

#: Reserved key inside an ``[experiments.<id>]`` table.
_GRID_KEY = "grid"

#: Keys understood in the ``[runner]`` table.
_RUNNER_KEYS = frozenset({"store", "seed", "jobs"})


@dataclass(frozen=True)
class ExperimentSweep:
    """One experiment's slice of a sweep: pins + axes, expandable to jobs."""

    experiment_id: str
    pinned: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def param_sets(self) -> List[Dict[str, Any]]:
        return [{**self.pinned, **point} for point in grid(self.axes)]


@dataclass(frozen=True)
class SweepConfig:
    """A parsed sweep file: runner settings plus per-experiment sweeps."""

    experiments: List[ExperimentSweep]
    store: Optional[str] = None
    seed: Optional[int] = None
    jobs: Optional[int] = None
    source: Optional[pathlib.Path] = None

    def make_all_jobs(self, *, base_seed: Optional[int] = None) -> List[Job]:
        """Expand every experiment into :class:`Job` objects, in file order.

        Parameters are validated against each experiment's registered
        signature here — a typo in the file fails before anything is run or
        enqueued.  ``base_seed`` overrides the file's ``seed``.
        """
        base_seed = self.seed if base_seed is None else base_seed
        jobs: List[Job] = []
        for sweep in self.experiments:
            jobs.extend(
                make_jobs(sweep.experiment_id, sweep.param_sets(), base_seed=base_seed)
            )
        return jobs


def _parse_experiment(experiment_id: str, table: Any, source: str) -> ExperimentSweep:
    if not isinstance(table, Mapping):
        raise ValueError(
            f"{source}: [experiments.{experiment_id}] must be a table, "
            f"got {type(table).__name__}"
        )
    pinned: Dict[str, Any] = {}
    axes: Dict[str, List[Any]] = {}
    for name, value in table.items():
        if name == _GRID_KEY:
            if not isinstance(value, Mapping):
                raise ValueError(
                    f"{source}: [experiments.{experiment_id}.grid] must be a "
                    f"table of axes, got {type(value).__name__}"
                )
            for axis, values in value.items():
                if not isinstance(values, list) or not values:
                    raise ValueError(
                        f"{source}: grid axis {axis!r} of experiment "
                        f"{experiment_id!r} must be a non-empty array "
                        f"(to pin a single value, set it outside [*.grid])"
                    )
                axes[axis] = list(values)
        else:
            pinned[name] = value
    return ExperimentSweep(experiment_id=experiment_id, pinned=pinned, axes=axes)


def load_sweep(path: Union[str, pathlib.Path]) -> SweepConfig:
    """Parse a TOML sweep file into a :class:`SweepConfig`."""
    if _toml is None:
        raise ImportError(
            "TOML sweep files need Python >= 3.11 (tomllib) or the tomli "
            "backport; neither is available in this interpreter"
        )
    path = pathlib.Path(path)
    with path.open("rb") as fh:
        data = _toml.load(fh)

    unknown_top = sorted(set(data) - {"runner", "experiments"})
    if unknown_top:
        raise ValueError(
            f"{path}: unknown top-level table(s) {', '.join(unknown_top)}; "
            "expected [runner] and [experiments.<id>]"
        )
    runner = data.get("runner", {})
    if not isinstance(runner, Mapping):
        raise ValueError(f"{path}: [runner] must be a table")
    unknown_runner = sorted(set(runner) - _RUNNER_KEYS)
    if unknown_runner:
        raise ValueError(
            f"{path}: unknown [runner] key(s) {', '.join(unknown_runner)}; "
            f"known: {', '.join(sorted(_RUNNER_KEYS))}"
        )
    experiments_table = data.get("experiments", {})
    if not isinstance(experiments_table, Mapping) or not experiments_table:
        raise ValueError(f"{path}: a sweep needs at least one [experiments.<id>] table")

    experiments = [
        _parse_experiment(experiment_id, table, str(path))
        for experiment_id, table in experiments_table.items()
    ]
    seed = runner.get("seed")
    jobs = runner.get("jobs")
    if seed is not None and not isinstance(seed, int):
        raise ValueError(f"{path}: [runner] seed must be an integer")
    if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
        raise ValueError(f"{path}: [runner] jobs must be a positive integer")
    return SweepConfig(
        experiments=experiments,
        store=runner.get("store"),
        seed=seed,
        jobs=jobs,
        source=path,
    )
