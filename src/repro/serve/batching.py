"""Event batching: the bounded pending queue and the per-tick coalescer.

The daemon never applies events one by one — it buffers them in a
:class:`TickBatcher` and, once per tick, coalesces the buffered events into
one bulk update (:func:`coalesce_events`) that the
:class:`~repro.serve.world.LiveWorld` applies through a single consumed
dirty-id stream.  Two contracts make that safe and fast:

**Backpressure is explicit.**  The pending queue is bounded: past the
high-water mark :meth:`TickBatcher.offer` refuses the event and the
transport replies ``{"ok": false, "error": "overloaded", "retry_after": s}``
instead of queueing unboundedly.  ``retry_after`` is sized from the backlog
(how many ticks the current buffer needs to drain), so well-behaved clients
back off proportionally.

**Coalescing preserves sequential semantics.**  The coalesced batch is, by
construction, equivalent to applying the *accepted* events one at a time in
arrival order:

* the last ``move`` per node wins (earlier moves of the same node are
  shadowed — mobility streams routinely re-report positions);
* a ``delete`` cancels pending moves of that node and rejects later events
  referencing it (the sequential path would reject them too: the node is
  dead by then);
* ``insert`` events keep arrival order, so the ids the index allocates at
  apply time equal the ids a sequential application would have allocated
  (ids are never reused, and only inserts advance the id high-water mark).

Within one tick a client cannot reference a node inserted in the same tick —
its id is only announced in the post-tick reply — which is what keeps the
reorder (moves, then deletes, then inserts) exact rather than approximate.
The served-vs-batch equivalence certificate property-tests exactly this
contract over random interleavings, duplicates and empty ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.serve.protocol import Request

__all__ = ["PendingEvent", "CoalescedBatch", "TickBatcher", "coalesce_events"]

_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_POINTS = np.zeros((0, 2), dtype=np.float64)


@dataclass(frozen=True)
class PendingEvent:
    """One accepted update event awaiting its tick: the request plus its seq."""

    seq: int
    request: Request


@dataclass
class CoalescedBatch:
    """One tick's worth of events, coalesced into bulk index operations.

    ``move_ids`` / ``move_positions`` carry the surviving (latest-wins,
    not-deleted) moves in ascending id order; ``insert_positions`` keeps
    arrival order with ``insert_seqs`` naming the event each allocated id
    must be reported to.  ``accepted`` / ``rejected`` list the per-event
    dispositions the transport turns into replies — a rejected event (a
    ``move`` or ``delete`` of a node that is dead or deleted earlier in the
    same tick) is *not* applied, exactly as a sequential application would
    have refused it.
    """

    move_ids: np.ndarray
    move_positions: np.ndarray
    delete_ids: np.ndarray
    insert_positions: np.ndarray
    insert_seqs: List[int]
    accepted: List[PendingEvent] = field(default_factory=list)
    rejected: List[Tuple[PendingEvent, str]] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        """Raw accepted events (before coalescing)."""
        return len(self.accepted)

    @property
    def n_operations(self) -> int:
        """Bulk operations actually applied (after coalescing)."""
        return int(len(self.move_ids) + len(self.delete_ids) + len(self.insert_positions))

    @property
    def is_empty(self) -> bool:
        """True when the tick coalesced away entirely (a true no-op apply)."""
        return self.n_operations == 0


def coalesce_events(
    events: Sequence[PendingEvent],
    is_alive: Callable[[int], bool],
) -> CoalescedBatch:
    """Fold one tick's accepted events into a :class:`CoalescedBatch`.

    ``is_alive`` answers against the world state *before* the tick; nodes
    deleted earlier in the same tick are tracked locally so later events
    referencing them are rejected just as a sequential application would.
    """
    moves: Dict[int, Tuple[float, float]] = {}
    deletes: List[int] = []
    dead: set = set()
    insert_positions: List[Tuple[float, float]] = []
    insert_seqs: List[int] = []
    accepted: List[PendingEvent] = []
    rejected: List[Tuple[PendingEvent, str]] = []

    for event in events:
        request = event.request
        if request.op == "insert":
            assert request.position is not None
            insert_positions.append(request.position)
            insert_seqs.append(event.seq)
            accepted.append(event)
            continue
        node = request.node
        assert node is not None
        if node in dead or not is_alive(node):
            rejected.append((event, f"node {node} is not alive"))
            continue
        if request.op == "move":
            assert request.position is not None
            moves[node] = request.position
        else:  # delete
            dead.add(node)
            deletes.append(node)
            moves.pop(node, None)
        accepted.append(event)

    if moves:
        move_ids = np.fromiter(sorted(moves), dtype=np.int64, count=len(moves))
        move_positions = np.asarray([moves[int(i)] for i in move_ids], dtype=np.float64)
    else:
        move_ids, move_positions = _EMPTY_IDS.copy(), _EMPTY_POINTS.copy()
    delete_ids = (
        np.sort(np.asarray(deletes, dtype=np.int64)) if deletes else _EMPTY_IDS.copy()
    )
    inserts = (
        np.asarray(insert_positions, dtype=np.float64)
        if insert_positions
        else _EMPTY_POINTS.copy()
    )
    return CoalescedBatch(
        move_ids=move_ids,
        move_positions=move_positions,
        delete_ids=delete_ids,
        insert_positions=inserts,
        insert_seqs=insert_seqs,
        accepted=accepted,
        rejected=rejected,
    )


class TickBatcher:
    """Bounded buffer of pending update events with explicit backpressure.

    Parameters
    ----------
    high_water:
        Maximum number of buffered events.  :meth:`offer` refuses events
        past it; the refusal carries a ``retry_after`` hint derived from
        ``tick_interval`` and the backlog depth.
    tick_interval:
        The scheduler's nominal tick period, used only to size the
        ``retry_after`` hint (the batcher itself never reads a clock).
    start_seq:
        First event sequence number to hand out.  A daemon restored from a
        snapshot resumes at the snapshot's ``applied_seq + 1``, so replayed
        tail events carry the same seqs the uninterrupted run gave them.
    """

    def __init__(
        self, high_water: int = 50_000, tick_interval: float = 0.05, start_seq: int = 1
    ) -> None:
        if high_water < 1:
            raise ValueError("high_water must be positive")
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if start_seq < 1:
            raise ValueError("start_seq must be positive")
        self.high_water = int(high_water)
        self.tick_interval = float(tick_interval)
        self._pending: List[PendingEvent] = []
        self._next_seq = int(start_seq)
        #: Backpressure accounting: events refused at the high-water mark.
        self.rejected_overload = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def retry_after(self) -> float:
        """Seconds a refused client should wait: the backlog's drain time."""
        backlog_ticks = max(1, len(self._pending) // max(1, self.high_water))
        return round(backlog_ticks * self.tick_interval, 6)

    def offer(self, request: Request) -> Tuple[PendingEvent, bool]:
        """Buffer one update event; ``(event, accepted)``.

        A refused event still gets a :class:`PendingEvent` (carrying the seq
        it *would* have had — seqs are only consumed on acceptance, so the
        accepted stream stays gapless) for the transport's error reply.
        """
        if not request.is_update:
            raise ValueError(f"only update ops are batched, got {request.op!r}")
        event = PendingEvent(seq=self._next_seq, request=request)
        if len(self._pending) >= self.high_water:
            self.rejected_overload += 1
            return event, False
        self._next_seq += 1
        self._pending.append(event)
        return event, True

    def drain(self) -> List[PendingEvent]:
        """Remove and return the buffered events (one tick's input)."""
        pending, self._pending = self._pending, []
        return pending
