"""Sanctioned clock access for the serving daemon.

Simulation output must be a pure function of (inputs, seed) — the REPRO301
lint rule bans ambient wall-clock reads from simulation paths for exactly
that reason.  A *serving* daemon, however, legitimately needs real time at
its production boundary: tick scheduling, lease-style retry-after hints and
latency measurement all reference the host clock.

This module is the one place that boundary lives.  Everything above it
follows the injected-now pattern of ``runner/queue.py``: components take a
``clock`` callable (any ``() -> float``) that *defaults* to one of the
helpers here, so tests drive a :class:`ManualClock` and never sleep.  The
REPRO301 rule allowlists exactly this file — serve code must route clock
reads through these helpers instead of sprinkling inline suppressions.

:func:`monotonic_now` is the default almost everywhere (latency spans and
tick deadlines must survive wall-clock steps); :func:`wall_now` exists for
human-facing provenance stamps only and must never feed simulation state.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_now", "wall_now", "ManualClock"]


def monotonic_now() -> float:
    """Monotonic seconds; the default clock of every serve component."""
    return time.monotonic()


def wall_now() -> float:
    """Wall-clock seconds (``time.time`` scale); provenance stamps only."""
    return time.time()


class ManualClock:
    """An injectable test clock: ``now`` only moves when told to.

    Instances are callables interchangeable with :func:`monotonic_now`::

        clock = ManualClock()
        recorder = LatencyRecorder(clock=clock)
        clock.advance(0.25)
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds; returns the new now."""
        if dt < 0:
            raise ValueError("a clock cannot move backwards")
        self._now += float(dt)
        return self._now
