"""Topology-as-a-service: a long-lived daemon over the incremental machinery.

``python -m repro.serve`` owns a live deployment and turns the batch
machinery — :class:`~repro.dynamics.incremental.DynamicSpatialIndex`,
:class:`~repro.dynamics.topology.TopologyTracker`,
:class:`~repro.distributed.repair.DistributedRepairEngine` — into a service:
an asyncio front-end (TCP or stdio, newline-delimited canonical JSON) ingests
streaming position/churn events (``move`` / ``insert`` / ``delete``),
coalesces them per tick into one bulk update, applies the tick through the
shared dirty-id stream, and answers queries (neighbours, overlay routes,
coverage, digests) from the maintained overlay without rebuilds.

The module split mirrors the daemon's data path:

* :mod:`repro.serve.protocol` — the wire format: request parsing and
  canonical-JSON responses.
* :mod:`repro.serve.batching` — bounded pending queue (explicit
  backpressure past the high-water mark) and the per-tick coalescer whose
  output is provably equivalent to applying the accepted events one by one.
* :mod:`repro.serve.world` — :class:`~repro.serve.world.LiveWorld`, the
  served state: index + UDG tracker + repair engine behind one apply/query
  surface, plus the canonical state/digest used by every certificate.
* :mod:`repro.serve.snapshot` — snapshot/restore of a live world through the
  :class:`~repro.runner.store.ResultStore` canonical-JSON machinery, so a
  killed daemon resumes byte-identically.
* :mod:`repro.serve.metrics` — injected-clock latency recorder
  (ingest→applied p50/p99, sustained events/s) behind the S05 benchmark.
* :mod:`repro.serve.server` — the tick scheduler and the two transports.
* :mod:`repro.serve.clock` — the sanctioned clock access (REPRO301's
  allowlisted module; everything else injects ``now``).

The safety story is the equivalence certificate: a served event stream leaves
the world byte-identical to applying the same events through the batch
``TopologyTracker``/repair path (property-tested over random interleavings,
asserted by the S05 benchmark and the CI serve-smoke).
"""

from repro.serve.batching import CoalescedBatch, TickBatcher, coalesce_events
from repro.serve.metrics import LatencyRecorder
from repro.serve.protocol import ProtocolError, Request, parse_line
from repro.serve.server import ServeSession
from repro.serve.snapshot import latest_snapshot, restore_world, save_snapshot
from repro.serve.world import LiveWorld, WorldConfig

__all__ = [
    "CoalescedBatch",
    "TickBatcher",
    "coalesce_events",
    "LatencyRecorder",
    "ProtocolError",
    "Request",
    "parse_line",
    "ServeSession",
    "latest_snapshot",
    "restore_world",
    "save_snapshot",
    "LiveWorld",
    "WorldConfig",
]
