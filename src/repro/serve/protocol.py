"""The serve wire format: newline-delimited canonical JSON.

One request per line, one JSON object per request; responses are canonical
JSON lines (:func:`repro.runner.serialize.canonical_json`: sorted keys,
fixed separators) so byte-identical world states produce byte-identical
reply streams — the property the resume and equivalence certificates lean
on.

Operations
----------
Update events (coalesced per tick, replied to *after* their tick applies):

* ``{"op": "move", "node": 3, "position": [x, y]}``
* ``{"op": "insert", "position": [x, y]}`` — the reply carries the
  allocated node id.
* ``{"op": "delete", "node": 3}``

Control and query operations (answered immediately):

* ``{"op": "query", "kind": "neighbours", "node": 3}`` (optional
  ``"radius"``), ``{"op": "query", "kind": "route", "source": 3,
  "target": 9}``, ``{"op": "query", "kind": "coverage", "events": [[x,
  y], ...], "radius": r}``, ``{"op": "query", "kind": "digest"}``
* ``{"op": "snapshot"}`` — persist the live world through the result
  store.
* ``{"op": "tick"}`` — force the pending batch to apply now (the stdio
  transport's deterministic scheduler).
* ``{"op": "stats"}`` / ``{"op": "ping"}`` / ``{"op": "shutdown"}``
* ``{"op": "resume"}`` — reconnect handshake: reports ``applied_seq`` and
  the next seq the batcher will assign, *without* flushing the pending
  tick, so a client that lost replies (or the daemon that died and was
  restored from a snapshot) can work out exactly which events to resend.

Every request may carry a client-chosen ``"id"`` echoed verbatim in the
response.  Malformed requests raise :class:`ProtocolError`, which transports
turn into ``{"ok": false, "error": ...}`` replies instead of dropping the
connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import math
from typing import Any, Dict, Optional, Tuple

from repro.runner.serialize import canonical_json

__all__ = [
    "UPDATE_OPS",
    "CONTROL_OPS",
    "QUERY_KINDS",
    "ProtocolError",
    "Request",
    "parse_line",
    "encode_response",
    "ok_response",
    "error_response",
]

#: Operations that mutate the world (batched and coalesced per tick).
UPDATE_OPS = ("move", "insert", "delete")
#: Operations answered outside the batching path.
CONTROL_OPS = ("query", "snapshot", "tick", "stats", "ping", "shutdown", "resume")
#: Recognised query kinds.
QUERY_KINDS = ("neighbours", "route", "coverage", "digest")


class ProtocolError(ValueError):
    """A request line that cannot be parsed into a valid :class:`Request`."""


@dataclass(frozen=True)
class Request:
    """One parsed request line.

    ``node`` / ``position`` are populated for update events, ``kind`` /
    ``args`` for queries; ``client_id`` is the caller's correlation id,
    echoed in the reply.
    """

    op: str
    node: Optional[int] = None
    position: Optional[Tuple[float, float]] = None
    kind: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)
    client_id: Any = None

    @property
    def is_update(self) -> bool:
        return self.op in UPDATE_OPS


def _require_node(payload: Dict[str, Any], op: str) -> int:
    node = payload.get("node")
    if not isinstance(node, int) or isinstance(node, bool) or node < 0:
        raise ProtocolError(f"{op!r} needs a non-negative integer 'node'")
    return node


def _require_position(payload: Dict[str, Any], op: str) -> Tuple[float, float]:
    position = payload.get("position")
    if (
        not isinstance(position, (list, tuple))
        or len(position) != 2
        or not all(isinstance(c, (int, float)) and not isinstance(c, bool) for c in position)
    ):
        raise ProtocolError(f"{op!r} needs a 'position' of two finite numbers")
    x, y = float(position[0]), float(position[1])
    if not (math.isfinite(x) and math.isfinite(y)):
        raise ProtocolError(f"{op!r} needs a 'position' of two finite numbers")
    return (x, y)


def parse_line(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on any defect."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as err:
        raise ProtocolError(f"request is not valid JSON: {err}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in UPDATE_OPS and op not in CONTROL_OPS:
        known = ", ".join(UPDATE_OPS + CONTROL_OPS)
        raise ProtocolError(f"unknown op {op!r}; known: {known}")
    client_id = payload.get("id")

    if op == "move":
        return Request(
            op=op,
            node=_require_node(payload, op),
            position=_require_position(payload, op),
            client_id=client_id,
        )
    if op == "insert":
        return Request(op=op, position=_require_position(payload, op), client_id=client_id)
    if op == "delete":
        return Request(op=op, node=_require_node(payload, op), client_id=client_id)
    if op == "query":
        kind = payload.get("kind")
        if kind not in QUERY_KINDS:
            raise ProtocolError(
                f"unknown query kind {kind!r}; known: {', '.join(QUERY_KINDS)}"
            )
        args = {
            k: v for k, v in payload.items() if k not in ("op", "kind", "id")
        }
        return Request(op=op, kind=kind, args=args, client_id=client_id)
    return Request(op=op, client_id=client_id)


def encode_response(payload: Dict[str, Any]) -> str:
    """One canonical-JSON response line (no trailing newline)."""
    return canonical_json(payload, strict=False)


def ok_response(client_id: Any = None, **fields: Any) -> str:
    payload: Dict[str, Any] = {"ok": True, **fields}
    if client_id is not None:
        payload["id"] = client_id
    return encode_response(payload)


def error_response(message: str, client_id: Any = None, **fields: Any) -> str:
    payload: Dict[str, Any] = {"ok": False, "error": message, **fields}
    if client_id is not None:
        payload["id"] = client_id
    return encode_response(payload)
