"""CLI entry point: ``python -m repro.serve``.

Starts a serving daemon over a fresh random deployment (``--n``/``--seed``)
or a restored snapshot (``--restore``).  Two transports:

* default: asyncio TCP on ``--host``/``--port`` (port 0 picks an ephemeral
  port; the chosen one is announced on stdout as
  ``serve: listening on HOST:PORT``);
* ``--stdio``: read requests from stdin, write replies to stdout,
  deterministically (ticks fire only on explicit ``{"op": "tick"}`` lines
  and before reads) — the transport the CI smoke and replay tooling use.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

import numpy as np

from repro.serve.server import ServeDaemon, ServeSession, run_stdio
from repro.serve.snapshot import restore_world
from repro.serve.world import LiveWorld, WorldConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived topology-serving daemon (streamed updates, "
        "maintained overlay, latency SLOs).",
    )
    transport = parser.add_argument_group("transport")
    transport.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin->stdout deterministically instead of TCP",
    )
    transport.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    transport.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral, announced on stdout)"
    )
    world = parser.add_argument_group("initial deployment")
    world.add_argument("--n", type=int, default=400, help="initial node count")
    world.add_argument("--seed", type=int, default=0, help="deployment RNG seed")
    world.add_argument(
        "--window",
        type=float,
        nargs=4,
        default=(0.0, 0.0, 15.0, 15.0),
        metavar=("XMIN", "YMIN", "XMAX", "YMAX"),
        help="deployment window bounds",
    )
    world.add_argument(
        "--radius", type=float, default=None, help="UDG connection radius (default: tile spec)"
    )
    world.add_argument(
        "--backend",
        choices=("grid", "kdtree"),
        default="grid",
        help="dynamic spatial index backend",
    )
    daemon = parser.add_argument_group("daemon")
    daemon.add_argument(
        "--tick-interval", type=float, default=0.05, help="seconds between applied ticks"
    )
    daemon.add_argument(
        "--high-water",
        type=int,
        default=50_000,
        help="pending-event bound before backpressure rejections",
    )
    daemon.add_argument(
        "--snapshot-store",
        default=None,
        help="result-store path (JSONL dir or .sqlite) for the 'snapshot' op",
    )
    daemon.add_argument(
        "--restore",
        action="store_true",
        help="start from the newest snapshot in --snapshot-store instead of a fresh deployment",
    )
    return parser


def build_world(args: argparse.Namespace) -> LiveWorld:
    if args.restore:
        if not args.snapshot_store:
            raise SystemExit("--restore requires --snapshot-store")
        return restore_world(args.snapshot_store)
    xmin, ymin, xmax, ymax = args.window
    config = WorldConfig(
        window_xmin=xmin,
        window_ymin=ymin,
        window_xmax=xmax,
        window_ymax=ymax,
        radius=args.radius,
        backend=args.backend,
    )
    rng = np.random.default_rng(args.seed)
    positions = np.column_stack(
        [
            rng.uniform(xmin, xmax, size=args.n),
            rng.uniform(ymin, ymax, size=args.n),
        ]
    )
    return LiveWorld(positions, config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    world = build_world(args)
    session = ServeSession(
        world,
        tick_interval=args.tick_interval,
        high_water=args.high_water,
        snapshot_store=args.snapshot_store,
    )
    if args.stdio:
        run_stdio(session, sys.stdin, sys.stdout)
        return 0

    async def serve() -> None:
        daemon = ServeDaemon(session, host=args.host, port=args.port)
        await daemon.start()
        print(f"serve: listening on {args.host}:{daemon.port}", flush=True)
        await daemon.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
