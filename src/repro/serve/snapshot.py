"""Snapshot/restore of a live world through the result-store machinery.

Snapshots ride the existing :class:`~repro.runner.store.ResultStore`
contract instead of inventing a file format: each snapshot is one canonical
JSON record (``experiment_id="SERVE"``, keyed by the applied event sequence
number) appended to a JSONL directory or SQLite store — so snapshots are
latest-wins, append-only, crash-tolerant (a torn append costs one record,
never the store) and inspectable with the same tooling as experiment
results.

The record carries the world's canonical state *and* its digest.
:func:`restore_world` rebuilds the world from the state and verifies the
rebuilt digest equals the stored one — the byte-identical-resume
certificate: a daemon killed and restarted from its last snapshot continues
from exactly the world it had applied, and replaying the event tail (seqs
past the snapshot's) reproduces the uninterrupted run byte for byte (the
kill/restore test asserts this end to end).
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, Optional, Union

from repro.runner.store import ResultStore
from repro.serve.world import LiveWorld

__all__ = ["SNAPSHOT_EXPERIMENT_ID", "save_snapshot", "latest_snapshot", "restore_world"]

#: The experiment id snapshot records file under in the store.
SNAPSHOT_EXPERIMENT_ID = "SERVE"


def _open(store: Union[str, pathlib.Path, ResultStore]) -> ResultStore:
    return store if isinstance(store, ResultStore) else ResultStore(store)


def save_snapshot(
    store: Union[str, pathlib.Path, ResultStore], world: LiveWorld
) -> Dict[str, Any]:
    """Persist the world's canonical state; returns the stored record.

    Keyed by the applied sequence number, so re-snapshotting an unchanged
    world overwrites (latest-wins) its own record rather than growing the
    index, and the newest snapshot is simply the max-seq record.
    """
    opened = _open(store)
    try:
        state = world.state()
        record = {
            "key": f"snapshot-{int(state['seq']):012d}",
            "experiment_id": SNAPSHOT_EXPERIMENT_ID,
            "status": "ok",
            "params": {"seq": int(state["seq"])},
            "result": {"state": state, "digest": world.digest()},
        }
        return opened.put(record)
    finally:
        if opened is not store:
            opened.close()


def latest_snapshot(
    store: Union[str, pathlib.Path, ResultStore]
) -> Optional[Dict[str, Any]]:
    """The highest-seq snapshot record, or ``None`` when the store has none."""
    opened = _open(store)
    try:
        opened.refresh()
        records = opened.records(experiment_id=SNAPSHOT_EXPERIMENT_ID, status="ok")
    finally:
        if opened is not store:
            opened.close()
    if not records:
        return None
    return max(records, key=lambda record: record.get("params", {}).get("seq", -1))


def restore_world(store: Union[str, pathlib.Path, ResultStore]) -> LiveWorld:
    """Rebuild the newest snapshot's world, verifying byte-identity.

    Raises ``ValueError`` when the store holds no snapshot or when the
    restored world's digest does not match the one stored with it (a
    corrupted or version-skewed snapshot must fail loudly, not serve a
    silently different world).
    """
    record = latest_snapshot(store)
    if record is None:
        raise ValueError(f"no snapshot records in store {store!r}")
    result = record.get("result") or {}
    world = LiveWorld.from_state(result["state"])
    expected = result.get("digest")
    got = world.digest()
    if expected is not None and got != expected:
        raise ValueError(
            f"restored world digest {got[:12]}… does not match the snapshot's "
            f"{str(expected)[:12]}…; refusing to serve a diverged world"
        )
    return world
