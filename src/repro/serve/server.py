"""The daemon: tick scheduling plus the TCP and stdio transports.

:class:`ServeSession` is the transport-agnostic core — one per daemon.  It
owns the :class:`~repro.serve.world.LiveWorld`, the bounded
:class:`~repro.serve.batching.TickBatcher` and the
:class:`~repro.serve.metrics.LatencyRecorder`, and exposes exactly two
entry points: :meth:`ServeSession.handle_request` (classify + buffer or
answer one request) and :meth:`ServeSession.flush` (apply the pending tick,
returning the deferred per-event replies).  Everything in the session is
synchronous and clock-injected, so the whole serving pipeline is testable
without sockets, sleeps or wall time.

Two transports drive the session:

* :class:`ServeDaemon` — the production asyncio TCP front-end.  A timer
  task flushes every ``tick_interval`` seconds and routes each deferred
  reply back to the connection that sent the event; queries answer
  immediately against the last applied tick.  Updates past the batcher's
  high-water mark are refused with ``retry_after`` (explicit backpressure,
  never an unbounded queue).
* :func:`run_stdio` — the deterministic replay transport behind
  ``python -m repro.serve --stdio``.  Ticks fire only on explicit
  ``{"op": "tick"}`` lines (and before reads / at EOF), so a recorded
  trace produces byte-identical replies on every run — which is what the
  CI serve-smoke and the equivalence certificates pipe through.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
import pathlib
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.faults.plan import KILL, FaultInjector, ServeKilled
from repro.runner.store import ResultStore
from repro.serve.batching import PendingEvent, TickBatcher, coalesce_events
from repro.serve.clock import monotonic_now
from repro.serve.metrics import LatencyRecorder
from repro.serve.protocol import (
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_line,
)
from repro.serve.snapshot import save_snapshot
from repro.serve.world import ApplyResult, LiveWorld

__all__ = ["HandleResult", "ServeSession", "ServeDaemon", "run_stdio"]

#: Ops the stdio transport flushes the pending tick before answering, so a
#: recorded trace reads deterministically regardless of tick timing.
READ_OPS = ("query", "snapshot", "stats")


@dataclass
class HandleResult:
    """Outcome of one handled request.

    ``immediate`` is the reply to write now (``None`` for accepted update
    events — their reply arrives with the tick); ``event`` names the
    buffered event for transports that route deferred replies;
    ``flush_requested`` marks an explicit ``tick`` op; ``shutdown`` asks the
    transport to stop after replying.
    """

    immediate: Optional[str]
    event: Optional[PendingEvent] = None
    flush_requested: bool = False
    shutdown: bool = False
    client_id: Any = None


class ServeSession:
    """Transport-agnostic daemon core: world + batcher + metrics.

    Parameters
    ----------
    world:
        The served :class:`LiveWorld`.
    tick_interval:
        Nominal tick period; sizes ``retry_after`` hints and the TCP timer.
    high_water:
        Pending-queue bound (events) before backpressure kicks in.
    snapshot_store:
        Store root (JSONL directory or SQLite path) for the ``snapshot``
        op; ``None`` rejects snapshot requests.
    clock:
        Injected monotonic clock for the latency recorder.
    injector:
        Optional seeded fault injector; its ``serve.tick`` point fires once
        per :meth:`flush`, and a *kill* fault raises
        :class:`~repro.faults.plan.ServeKilled` *before* anything applies —
        a simulated daemon death mid-tick.  Recovery is the operator's
        restore-from-snapshot path; clients learn where to resume from the
        ``resume`` op.
    """

    def __init__(
        self,
        world: LiveWorld,
        tick_interval: float = 0.05,
        high_water: int = 50_000,
        snapshot_store: Union[str, pathlib.Path, ResultStore, None] = None,
        clock: Callable[[], float] = monotonic_now,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.world = world
        # Seqs resume past what the world already applied, so a restored
        # daemon numbers replayed tail events like the uninterrupted run.
        self.batcher = TickBatcher(
            high_water=high_water,
            tick_interval=tick_interval,
            start_seq=world.applied_seq + 1,
        )
        self.metrics = LatencyRecorder(clock=clock)
        self.snapshot_store = snapshot_store
        self.injector = injector
        self.running = True
        #: The most recent tick's ApplyResult (coalescing/repair accounting).
        self.last_apply: Optional[ApplyResult] = None

    # -- request handling ---------------------------------------------------
    def handle_line(self, line: str) -> HandleResult:
        """Parse + handle one request line (parse errors become replies)."""
        try:
            request = parse_line(line)
        except ProtocolError as err:
            return HandleResult(immediate=error_response(str(err)))
        return self.handle_request(request)

    def handle_request(self, request: Request) -> HandleResult:
        if request.is_update:
            event, accepted = self.batcher.offer(request)
            if not accepted:
                retry_after = self.batcher.retry_after()
                self.metrics.rejected(retry_after)
                return HandleResult(
                    immediate=error_response(
                        "overloaded",
                        request.client_id,
                        retry_after=retry_after,
                        pending=len(self.batcher),
                    )
                )
            self.metrics.ingest(event.seq)
            return HandleResult(immediate=None, event=event)
        if request.op == "tick":
            return HandleResult(
                immediate=None, flush_requested=True, client_id=request.client_id
            )
        if request.op == "ping":
            return HandleResult(
                immediate=ok_response(
                    request.client_id,
                    pong=True,
                    applied_seq=self.world.applied_seq,
                    n_alive=self.world.n_alive,
                )
            )
        if request.op == "resume":
            # The reconnect handshake: report where the world and the seq
            # counter stand *without* flushing, so a client can compute which
            # of its unacknowledged events to resend (they get the same seqs
            # the lost originals would have carried).
            return HandleResult(
                immediate=ok_response(
                    request.client_id,
                    applied_seq=self.world.applied_seq,
                    next_seq=self.batcher.next_seq,
                    pending=len(self.batcher),
                    n_alive=self.world.n_alive,
                )
            )
        if request.op == "stats":
            return HandleResult(immediate=self._stats_response(request.client_id))
        if request.op == "snapshot":
            return HandleResult(immediate=self._snapshot_response(request.client_id))
        if request.op == "shutdown":
            self.running = False
            return HandleResult(
                immediate=ok_response(request.client_id, stopping=True), shutdown=True
            )
        return HandleResult(immediate=self._query_response(request))

    def tick_ack(self, client_id: Any = None) -> str:
        """The post-flush acknowledgement of an explicit ``tick`` op."""
        return ok_response(
            client_id,
            ticked=True,
            applied_seq=self.world.applied_seq,
            n_alive=self.world.n_alive,
        )

    # -- the tick -----------------------------------------------------------
    def flush(self) -> List[Tuple[PendingEvent, str]]:
        """Apply the pending events as one coalesced tick.

        Returns the deferred ``(event, reply)`` pairs in seq order —
        accepted events report their applied seq (inserts also their
        allocated node id), events invalidated within the tick (moves or
        deletes of dead nodes) report the rejection a sequential
        application would have produced.

        With a fault injector attached, each flush is one occurrence of the
        ``serve.tick`` point; a *kill* fault raises
        :class:`~repro.faults.plan.ServeKilled` before the batch drains —
        the tick never applied, exactly like a daemon SIGKILL between
        accepting events and committing them.
        """
        if self.injector is not None:
            fault = self.injector.fire("serve.tick")
            if fault is not None and fault.kind == KILL:
                raise ServeKilled("injected daemon death mid-tick")
        events = self.batcher.drain()
        batch = coalesce_events(events, self.world.is_alive)
        result = self.world.apply(batch)
        self.last_apply = result
        self.metrics.applied([event.seq for event in events])
        rejected = {event.seq: reason for event, reason in batch.rejected}
        replies: List[Tuple[PendingEvent, str]] = []
        for event in events:
            client_id = event.request.client_id
            if event.seq in rejected:
                replies.append(
                    (event, error_response(rejected[event.seq], client_id, seq=event.seq))
                )
                continue
            fields: Dict[str, Any] = {
                "seq": event.seq,
                "applied_seq": result.applied_seq,
            }
            if event.seq in result.inserted_ids:
                fields["node"] = result.inserted_ids[event.seq]
            replies.append((event, ok_response(client_id, **fields)))
        return replies

    # -- immediate answers --------------------------------------------------
    def _stats_response(self, client_id: Any) -> str:
        return ok_response(
            client_id,
            applied_seq=self.world.applied_seq,
            n_alive=self.world.n_alive,
            pending=len(self.batcher),
            rejected_overload=self.batcher.rejected_overload,
            latency=self.metrics.report(),
        )

    def _snapshot_response(self, client_id: Any) -> str:
        if self.snapshot_store is None:
            return error_response("no snapshot store configured", client_id)
        record = save_snapshot(self.snapshot_store, self.world)
        return ok_response(
            client_id,
            snapshot_seq=record["params"]["seq"],
            digest=record["result"]["digest"],
        )

    def _query_response(self, request: Request) -> str:
        world, args, client_id = self.world, request.args, request.client_id
        try:
            if request.kind == "neighbours":
                node = int(args["node"])
                radius = args.get("radius")
                return ok_response(
                    client_id,
                    node=node,
                    neighbours=world.neighbours(
                        node, float(radius) if radius is not None else None
                    ),
                    applied_seq=world.applied_seq,
                )
            if request.kind == "route":
                route = world.route(int(args["source"]), int(args["target"]))
                return ok_response(client_id, applied_seq=world.applied_seq, **route)
            if request.kind == "coverage":
                events = np.asarray(args["events"], dtype=np.float64).reshape(-1, 2)
                fraction = world.coverage(events, float(args["radius"]))
                return ok_response(
                    client_id, coverage=round(fraction, 9), applied_seq=world.applied_seq
                )
            # digest
            return ok_response(
                client_id,
                digest=world.digest(),
                applied_seq=world.applied_seq,
                n_alive=world.n_alive,
            )
        except (KeyError, TypeError, ValueError) as err:
            return error_response(f"bad query: {err}", client_id)


# ---------------------------------------------------------------------------
# stdio transport — deterministic replay
# ---------------------------------------------------------------------------
def run_stdio(
    session: ServeSession, lines: Iterable[str], out: IO[str]
) -> None:
    """Drive the session from an NDJSON line stream, replies to ``out``.

    Deterministic by construction: the pending tick applies only on explicit
    ``{"op": "tick"}`` lines, before any read op (query/snapshot/stats) and
    at end of stream — never on a timer — so identical input streams yield
    byte-identical reply streams.
    """

    def emit_flush() -> None:
        for _, reply in session.flush():
            out.write(reply + "\n")

    for line in lines:
        if not line.strip():
            continue
        try:
            request: Optional[Request] = parse_line(line)
        except ProtocolError as err:
            out.write(error_response(str(err)) + "\n")
            continue
        assert request is not None
        if request.op in READ_OPS and len(session.batcher):
            emit_flush()
        result = session.handle_request(request)
        if result.flush_requested:
            emit_flush()
            out.write(session.tick_ack(result.client_id) + "\n")
        elif result.immediate is not None:
            out.write(result.immediate + "\n")
        if result.shutdown:
            break
    if len(session.batcher):
        emit_flush()
    out.flush()


# ---------------------------------------------------------------------------
# TCP transport — the production asyncio front-end
# ---------------------------------------------------------------------------
class ServeDaemon:
    """Asyncio TCP daemon: timer-driven ticks, per-connection reply routing."""

    def __init__(
        self,
        session: ServeSession,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None

    async def start(self) -> None:
        """Bind the listener (resolving port 0 to the chosen ephemeral port)."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(self._on_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run listener + tick loop until a ``shutdown`` op arrives."""
        if self._server is None:
            await self.start()
        assert self._server is not None and self._stopping is not None
        tick_task = asyncio.ensure_future(self._tick_loop())
        try:
            await self._stopping.wait()
        finally:
            tick_task.cancel()
            self._server.close()
            await self._server.wait_closed()
            await self._flush_replies()  # drain what the last tick owes

    async def _tick_loop(self) -> None:
        while self.session.running:
            await asyncio.sleep(self.session.batcher.tick_interval)
            await self._flush_replies()

    async def _flush_replies(self) -> None:
        if not len(self.session.batcher):
            return
        for event, reply in self.session.flush():
            writer = self._writers.pop(event.seq, None)
            if writer is None or writer.is_closing():
                continue
            writer.write(reply.encode("utf-8") + b"\n")
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                result = self.session.handle_line(raw.decode("utf-8", errors="replace"))
                if result.event is not None:
                    self._writers[result.event.seq] = writer
                if result.flush_requested:
                    await self._flush_replies()
                    writer.write(self.session.tick_ack(result.client_id).encode() + b"\n")
                    await writer.drain()
                elif result.immediate is not None:
                    writer.write(result.immediate.encode("utf-8") + b"\n")
                    await writer.drain()
                if result.shutdown:
                    assert self._stopping is not None
                    self._stopping.set()
                    break
        except ConnectionError:
            pass
        finally:
            stale = [seq for seq, w in self._writers.items() if w is writer]
            for seq in stale:
                del self._writers[seq]
            if not writer.is_closing():
                writer.close()
