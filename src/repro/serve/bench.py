"""S05 — serving-daemon latency/throughput under a mobility storm.

Drives a :class:`~repro.serve.server.ServeSession` (the transport-agnostic
daemon core: bounded batcher, coalescer, live world, latency recorder)
through a seeded mobility storm — per tick a burst of moves with duplicate
re-reports, light insert/delete churn, same-tick move-after-delete
conflicts and periodic empty ticks — and measures the serving pipeline
end to end: request-line parse → ingest stamp → coalesce → bulk apply
through the shared dirty-id stream → reply.

Two certificates ride along:

* **serve-matches-batch** — the storm is replayed *sequentially* (one
  event per tick, no coalescing) into a reference world; the maintained
  structures (:func:`~repro.serve.world.world_digest_parts`: alive ids,
  positions, UDG edges, spliced overlay) must be byte-identical.
  Coalescing is an optimisation, never a semantic.
* **query serving** — neighbours/route/digest queries answer from the
  maintained overlay between ticks; the query arm times them and the
  route answers must agree with the reference world's.

Headlines: sustained ``events_per_s`` (ingest→applied over the whole
storm, idle time counted), ``p50_ms``/``p99_ms`` ingest→applied latency,
``coalesce_ratio`` (bulk operations per raw event), ``queries_per_s`` and
the two booleans.  ``BENCH_S05.json`` tracks the trajectory.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.dynamics.mobility import reflect_into
from repro.geometry.primitives import Rect
from repro.rng import spawn_rngs
from repro.runner.registry import register
from repro.runner.serialize import canonical_json
from repro.serve.batching import TickBatcher, coalesce_events
from repro.serve.clock import monotonic_now
from repro.serve.protocol import Request
from repro.serve.server import ServeSession
from repro.serve.world import LiveWorld, WorldConfig, world_digest_parts

__all__ = ["experiment_s05_serve", "generate_storm", "replay_sequential"]


def generate_storm(
    n_nodes: int,
    n_ticks: int,
    events_per_tick: int,
    rng: np.random.Generator,
    side: float = 15.0,
    move_fraction: float = 0.8,
    duplicate_fraction: float = 0.15,
    empty_tick_every: int = 7,
    step: float = 0.6,
) -> List[List[Dict[str, Any]]]:
    """A seeded mobility-storm trace: one list of request payloads per tick.

    The generator tracks id allocation itself (ids are never reused and only
    inserts advance the high-water mark, so the ids it predicts for inserts
    equal the ones the index will allocate).  Each non-empty tick mixes:
    latest-wins duplicate moves of the same node, deletes followed by a move
    of the now-dead node (rejected identically by the coalesced and the
    sequential paths) and fresh inserts — exactly the interleavings the
    equivalence certificate must survive.
    """
    alive: List[int] = list(range(n_nodes))
    positions: Dict[int, Tuple[float, float]] = {}
    next_id = n_nodes
    ticks: List[List[Dict[str, Any]]] = []
    for tick in range(n_ticks):
        if empty_tick_every and tick % empty_tick_every == empty_tick_every - 1:
            ticks.append([])
            continue
        events: List[Dict[str, Any]] = []
        # Ids allocated this tick join `alive` only at tick end: a client
        # cannot reference a node before the post-tick reply announces its
        # id, so a well-formed trace never moves a same-tick insert.
        inserted_this_tick: List[int] = []
        for _ in range(events_per_tick):
            roll = rng.random()
            if roll < move_fraction and alive:
                node = int(alive[rng.integers(len(alive))])
                old = positions.get(node, (side / 2, side / 2))
                target = reflect_into(
                    np.asarray(old, dtype=np.float64)
                    + rng.uniform(-step, step, size=2),
                    _window(side),
                ).reshape(2)
                position = [float(target[0]), float(target[1])]
                positions[node] = (position[0], position[1])
                events.append({"op": "move", "node": node, "position": position})
                if rng.random() < duplicate_fraction:
                    events.append({"op": "move", "node": node, "position": position})
            elif roll < (1 + move_fraction) / 2 and len(alive) > 2:
                node = int(alive.pop(int(rng.integers(len(alive)))))
                events.append({"op": "delete", "node": node})
                if rng.random() < duplicate_fraction:
                    # A same-tick reference to the dead node: both paths must
                    # reject it without applying anything.
                    events.append(
                        {"op": "move", "node": node, "position": [side / 2, side / 2]}
                    )
            else:
                position = [float(rng.uniform(0, side)), float(rng.uniform(0, side))]
                events.append({"op": "insert", "position": position})
                inserted_this_tick.append(next_id)
                positions[next_id] = (position[0], position[1])
                next_id += 1
        alive.extend(inserted_this_tick)
        ticks.append(events)
    return ticks


def replay_sequential(
    positions: np.ndarray, config: WorldConfig, ticks: Sequence[Sequence[Dict[str, Any]]]
) -> LiveWorld:
    """The reference path: apply every event alone, in order, no coalescing.

    Each event becomes its own single-event batch (so every apply walks the
    full tracker/engine repair pipeline) — the semantics the coalesced
    serving path must reproduce byte-for-byte.
    """
    world = LiveWorld(positions, config)
    batcher = TickBatcher()
    for tick in ticks:
        for payload in tick:
            request = Request(
                op=payload["op"],
                node=payload.get("node"),
                position=(
                    tuple(payload["position"]) if "position" in payload else None
                ),
            )
            event, accepted = batcher.offer(request)
            assert accepted
            world.apply(coalesce_events([event], world.is_alive))
    return world


def _window(side: float) -> Rect:
    return Rect(0.0, 0.0, float(side), float(side))


def _null_headline() -> Dict:
    return {
        "events_per_s": None,
        "p50_ms": None,
        "p99_ms": None,
        "coalesce_ratio": None,
        "queries_per_s": None,
        "serve_matches_batch": None,
        "routes_match_batch": None,
    }


@register("S05")
def experiment_s05_serve(
    n_nodes: int = 400,
    n_ticks: int = 40,
    events_per_tick: int = 60,
    side: float = 15.0,
    backend: str = "grid",
    move_fraction: float = 0.8,
    duplicate_fraction: float = 0.15,
    empty_tick_every: int = 7,
    queries_per_tick: int = 5,
    seed: int = 405,
) -> ExperimentResult:
    """Serving-daemon SLOs: latency, throughput, served-vs-batch equivalence.

    Parameters
    ----------
    n_nodes:
        Initial deployment size (uniform in the ``side``-sided window).
    n_ticks, events_per_tick:
        Storm shape; every ``empty_tick_every``-th tick is empty (the no-op
        path must stay a no-op under measurement too).
    backend:
        Dynamic index backend for the *served* world; the sequential
        reference always runs the same backend.
    queries_per_tick:
        Neighbours/route/digest queries issued between ticks (the query
        arm).
    seed:
        Storm + deployment RNG seed.
    """
    if n_nodes < 4:
        raise ValueError("n_nodes must be at least 4")
    if n_ticks < 1 or events_per_tick < 1:
        raise ValueError("n_ticks and events_per_tick must be positive")
    rng = np.random.default_rng(seed)
    initial = rng.uniform(0.0, side, size=(n_nodes, 2))
    config = WorldConfig(window_xmax=float(side), window_ymax=float(side), backend=backend)
    ticks = generate_storm(
        n_nodes,
        n_ticks,
        events_per_tick,
        rng,
        side=side,
        move_fraction=move_fraction,
        duplicate_fraction=duplicate_fraction,
        empty_tick_every=empty_tick_every,
    )

    # -- served arm: the real pipeline, wire format included -------------------
    session = ServeSession(LiveWorld(initial.copy(), config))
    rows: List[Dict] = []
    rejected_semantic = 0
    total_operations = 0
    query_spans: List[float] = []
    for tick_no, tick in enumerate(ticks):
        for payload in tick:
            line = json.dumps(payload)
            result = session.handle_line(line)
            assert result.immediate is None, "storm must never trip backpressure here"
        replies = session.flush()
        rejected_semantic += sum(1 for _, reply in replies if '"ok":false' in reply)
        if session.last_apply is not None:
            total_operations += session.last_apply.n_operations
        world = session.world
        alive = world.index.ids()
        started = monotonic_now()
        for _ in range(queries_per_tick):
            a = int(alive[rng.integers(len(alive))])
            b = int(alive[rng.integers(len(alive))])
            world.neighbours(a)
            world.route(a, b)
        query_spans.append(monotonic_now() - started)
        rows.append(
            {
                "tick": tick_no,
                "n_events": len(tick),
                "n_alive": world.n_alive,
                "applied_seq": world.applied_seq,
            }
        )

    report = session.metrics.report()
    served = session.world

    # -- reference arm: sequential, uncoalesced, same storm ---------------------
    reference = replay_sequential(initial.copy(), config, ticks)
    served_parts = canonical_json(
        world_digest_parts(served.index, served.tracker, served.engine)
    )
    reference_parts = canonical_json(
        world_digest_parts(reference.index, reference.tracker, reference.engine)
    )
    matches = served_parts == reference_parts

    # Equal worlds must route identically: re-ask both sides the same pairs
    # against the final state (answers come from the maintained overlay, no
    # rebuild on either side).
    routes_match: Optional[bool] = None
    if matches:
        rng_check = spawn_rngs(seed, 1)[0]
        alive = reference.index.ids()
        n_pairs = min(20, len(alive))
        routes_match = all(
            served.route(int(a), int(b)) == reference.route(int(a), int(b))
            for a, b in zip(
                rng_check.choice(alive, size=n_pairs),
                rng_check.choice(alive, size=n_pairs),
            )
        )

    n_events = sum(len(t) for t in ticks)
    applied_events = n_events - rejected_semantic
    query_time = sum(query_spans)
    n_queries = queries_per_tick * len(ticks) * 2  # neighbours + route per draw
    headline = _null_headline()
    headline.update(
        {
            "events_per_s": report["events_per_s"],
            "p50_ms": report["p50_ms"],
            "p99_ms": report["p99_ms"],
            "coalesce_ratio": (
                round(total_operations / applied_events, 4) if applied_events else None
            ),
            "queries_per_s": round(n_queries / query_time, 1) if query_time > 0 else None,
            "serve_matches_batch": bool(matches),
            "routes_match_batch": routes_match,
        }
    )
    return ExperimentResult(
        experiment_id="S05",
        title="Serving-daemon latency/throughput under a mobility storm",
        paper_reference="Sec. 6 maintenance under mobility, served online (PR 9)",
        rows=rows,
        headline=headline,
        notes=[
            "Latency/throughput headlines are wall-clock and vary between "
            "reruns; the serve_matches_batch / routes_match_batch certificates "
            "are deterministic.  The storm deliberately mixes duplicate moves, "
            "same-tick move-after-delete conflicts and empty ticks — the "
            "coalescer's whole contract — and the certificate compares the "
            "maintained structures (alive/positions/UDG/overlay) byte-for-byte "
            "against an uncoalesced sequential replay.",
            f"storm: {n_events} events over {n_ticks} ticks, "
            f"{rejected_semantic} semantically rejected on both paths.",
        ],
    )
