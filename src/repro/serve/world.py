"""The served state: one apply/query surface over the incremental machinery.

:class:`LiveWorld` is what the daemon owns: a
:class:`~repro.dynamics.incremental.DynamicSpatialIndex` holding the live
deployment, a :class:`~repro.dynamics.topology.TopologyTracker` maintaining
its UDG edge set and a
:class:`~repro.distributed.repair.DistributedRepairEngine` maintaining the
Figure-7 overlay — all three fed from *one* consumed dirty-id stream per
applied tick, exactly the sharing pattern the M02 workload pioneered.
Queries (neighbours, overlay routes, coverage, digests) answer from the
maintained structures; nothing is ever rebuilt on the serving path.

Two serialisation surfaces make the daemon safe to kill:

* :meth:`LiveWorld.state` — the canonical-JSON-ready description of the
  world (alive ids, exact positions, id high-water mark, config, applied
  seq).  Positions round-trip exactly through JSON (``repr`` shortest
  round-trip floats), so :meth:`from_state` reconstructs a world whose
  every query answers byte-identically.
* :meth:`LiveWorld.digest` — a SHA-256 over the canonical state *plus* the
  maintained edge sets and overlay.  Equal digests mean equal worlds down
  to the last edge; this is the certificate the equivalence property tests,
  the S05 benchmark and the kill/restore smoke all compare.
"""

from __future__ import annotations

from dataclasses import dataclass
import hashlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.repair import DistributedRepairEngine, RepairReport
from repro.dynamics.incremental import DynamicSpatialIndex
from repro.dynamics.topology import EdgeDiff, TopologyTracker
from repro.geometry.primitives import Rect, as_points
from repro.runner.serialize import canonical_json
from repro.serve.batching import CoalescedBatch
from repro.simulation.sensing import coverage_fraction

__all__ = ["WorldConfig", "ApplyResult", "LiveWorld", "world_digest_parts"]

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class WorldConfig:
    """The served deployment's fixed parameters.

    ``radius`` is the UDG connection radius (default: the tile spec's);
    ``backend`` selects the dynamic index implementation; the window bounds
    define the overlay tiling.  The config travels inside snapshots so a
    restore cannot silently change the world's geometry.
    """

    window_xmin: float = 0.0
    window_ymin: float = 0.0
    window_xmax: float = 15.0
    window_ymax: float = 15.0
    radius: Optional[float] = None
    backend: str = "grid"

    @property
    def window(self) -> Rect:
        return Rect(self.window_xmin, self.window_ymin, self.window_xmax, self.window_ymax)

    @property
    def udg_radius(self) -> float:
        return float(self.radius) if self.radius is not None else UDGTileSpec.default().connection_radius

    def to_payload(self) -> Dict[str, Any]:
        return {
            "window": [self.window_xmin, self.window_ymin, self.window_xmax, self.window_ymax],
            "radius": self.radius,
            "backend": self.backend,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WorldConfig":
        xmin, ymin, xmax, ymax = (float(v) for v in payload["window"])
        radius = payload.get("radius")
        return cls(
            window_xmin=xmin,
            window_ymin=ymin,
            window_xmax=xmax,
            window_ymax=ymax,
            radius=float(radius) if radius is not None else None,
            backend=str(payload.get("backend", "grid")),
        )


@dataclass(frozen=True)
class ApplyResult:
    """What one applied tick did: allocated ids, edge diff, repair report."""

    applied_seq: int
    inserted_ids: Dict[int, int]  # event seq -> allocated node id
    edge_diff: EdgeDiff
    repair: RepairReport
    n_events: int
    n_operations: int


def world_digest_parts(
    index: DynamicSpatialIndex,
    tracker: TopologyTracker,
    engine: DistributedRepairEngine,
) -> Dict[str, Any]:
    """The canonical byte-identity payload shared by every certificate.

    Both sides of the served-vs-batch equivalence test (and the snapshot
    restore check) hash exactly this — alive ids, exact positions, the
    maintained UDG edge set and the spliced overlay — so "byte-identical"
    has one definition in the whole repo.
    """
    ids = index.ids()
    overlay = engine.result()
    return {
        "alive": ids.tolist(),
        "positions": index.id_positions()[ids].tolist(),
        "udg_edges": tracker.edges().tolist(),
        "overlay_edges": overlay.edges.tolist(),
        "good_tiles": [list(tile) for tile in overlay.good_tiles],
        "representatives": {str(tile): rep for tile, rep in overlay.representatives.items()},
    }


class LiveWorld:
    """A live deployment behind one apply/query surface.

    Parameters
    ----------
    positions:
        Initial ``(n, 2)`` deployment; node ids are the row indices.
    config:
        Window, radius and backend (see :class:`WorldConfig`).
    applied_seq:
        The event sequence number already reflected in ``positions`` (used
        by :meth:`from_state`; fresh worlds start at 0).
    """

    def __init__(
        self,
        positions: np.ndarray,
        config: WorldConfig = WorldConfig(),
        applied_seq: int = 0,
    ) -> None:
        pts = as_points(positions)
        self.config = config
        self.spec = UDGTileSpec.default()
        self.applied_seq = int(applied_seq)
        self.index = DynamicSpatialIndex(
            pts, radius=config.udg_radius, backend=config.backend
        )
        self.tracker = TopologyTracker(self.index, config.udg_radius)
        self.engine = DistributedRepairEngine(self.index, self.spec, config.window)
        self._route_cache_seq = -1
        self._route_adjacency: Dict[int, List[int]] = {}

    # -- applying ticks -----------------------------------------------------
    @property
    def n_alive(self) -> int:
        return len(self.index)

    def is_alive(self, node: int) -> bool:
        return self.index.is_alive(node)

    def apply(self, batch: CoalescedBatch) -> ApplyResult:
        """Apply one coalesced tick through the shared dirty-id stream.

        An empty batch (everything coalesced away, or an empty tick) is a
        true no-op: the index, tracker and engine are never touched, no
        dirty set is allocated and no protocol messages are billed.
        """
        # Every drained event — applied or same-tick-rejected — is resolved by
        # this tick, so applied_seq tracks the batcher's seq high-water mark
        # exactly (what snapshot/restore resumes event numbering from).
        resolved = [e.seq for e in batch.accepted] + [e.seq for e, _ in batch.rejected]
        last_seq = max(resolved, default=self.applied_seq)
        if batch.is_empty:
            self.applied_seq = max(self.applied_seq, last_seq)
            return ApplyResult(
                applied_seq=self.applied_seq,
                inserted_ids={},
                edge_diff=EdgeDiff(
                    np.zeros((0, 2), dtype=np.int64), np.zeros((0, 2), dtype=np.int64)
                ),
                repair=RepairReport(0, 0, 0, 0, 0),
                n_events=batch.n_events,
                n_operations=0,
            )
        if len(batch.move_ids):
            self.index.move(batch.move_ids, batch.move_positions)
        if len(batch.delete_ids):
            self.index.delete(batch.delete_ids)
        inserted: Dict[int, int] = {}
        if len(batch.insert_positions):
            new_ids = self.index.insert(batch.insert_positions)
            inserted = {
                seq: int(node) for seq, node in zip(batch.insert_seqs, new_ids.tolist())
            }
        # One consumed stream feeds both incremental consumers (M02 pattern).
        dirty, deleted = self.index.consume_dirty()
        diff = self.tracker.update(dirty=dirty, deleted=deleted)
        report = self.engine.update(dirty=dirty, deleted=deleted)
        self.applied_seq = max(self.applied_seq, last_seq)
        return ApplyResult(
            applied_seq=self.applied_seq,
            inserted_ids=inserted,
            edge_diff=diff,
            repair=report,
            n_events=batch.n_events,
            n_operations=batch.n_operations,
        )

    # -- queries (always from the maintained structures) --------------------
    def neighbours(self, node: int, radius: Optional[float] = None) -> List[int]:
        """Ids within ``radius`` (default: the UDG radius) of an alive node."""
        r = self.config.udg_radius if radius is None else float(radius)
        return [int(i) for i in self.index.neighbours_of(node, r)]

    def _overlay_adjacency(self) -> Dict[int, List[int]]:
        if self._route_cache_seq != self.applied_seq:
            adjacency: Dict[int, List[int]] = {}
            for a, b in self.engine.result().edges.tolist():
                adjacency.setdefault(int(a), []).append(int(b))
                adjacency.setdefault(int(b), []).append(int(a))
            self._route_adjacency = adjacency
            self._route_cache_seq = self.applied_seq
        return self._route_adjacency

    def _tile_of(self, node: int) -> Tuple[int, int]:
        position = self.index.position_of(node).reshape(1, 2)
        tile = self.engine.tiling.tile_of_points(position)
        return (int(tile[0, 0]), int(tile[0, 1]))

    def route(self, source: int, target: int) -> Dict[str, Any]:
        """Shortest-hop route between two nodes over the maintained overlay.

        The endpoints are mapped to their tiles' representatives (the
        paper's §4.2 plug-in-routing observation: good-tile representatives
        are the routable sites, relays realise the hops); the path is a BFS
        over the *spliced* overlay edge set the repair engine maintains —
        no rebuild, no mesh re-derivation.  Fails cleanly when either tile
        is not good or the overlay is partitioned between them.
        """
        for name, node in (("source", source), ("target", target)):
            if not self.index.is_alive(int(node)):
                raise ValueError(f"{name} node {node} is not alive")
        overlay = self.engine.result()
        reps = overlay.representatives
        src_tile, tgt_tile = self._tile_of(int(source)), self._tile_of(int(target))
        if src_tile not in reps or tgt_tile not in reps:
            bad = src_tile if src_tile not in reps else tgt_tile
            return {"success": False, "reason": f"tile {list(bad)} is not good"}
        src_rep, tgt_rep = reps[src_tile], reps[tgt_tile]
        adjacency = self._overlay_adjacency()
        parents: Dict[int, int] = {src_rep: src_rep}
        frontier = [src_rep]
        while frontier and tgt_rep not in parents:
            next_frontier: List[int] = []
            for node in frontier:
                for nbr in adjacency.get(node, ()):
                    if nbr not in parents:
                        parents[nbr] = node
                        next_frontier.append(nbr)
            frontier = next_frontier
        if tgt_rep not in parents:
            return {"success": False, "reason": "overlay is partitioned between the tiles"}
        path = [tgt_rep]
        while path[-1] != src_rep:
            path.append(parents[path[-1]])
        path.reverse()
        pts = self.index.id_positions()[np.asarray(path, dtype=np.int64)]
        segments = np.diff(pts, axis=0)
        length = float(np.sqrt(np.einsum("ij,ij->i", segments, segments)).sum()) if len(path) > 1 else 0.0
        return {
            "success": True,
            "node_path": [int(n) for n in path],
            "hops": len(path) - 1,
            "euclidean_length": round(length, 9),
        }

    def coverage(self, events: np.ndarray, sensing_radius: float) -> float:
        """Fraction of event positions covered by the alive deployment."""
        if self.n_alive == 0:
            return 0.0
        return float(
            coverage_fraction(
                self.index.positions(), events, sensing_radius, backend=self.config.backend
            )
        )

    # -- canonical state / byte-identity ------------------------------------
    def state(self) -> Dict[str, Any]:
        """The canonical snapshot payload (exact-round-trip floats)."""
        ids = self.index.ids()
        return {
            "version": 1,
            "seq": self.applied_seq,
            "n_rows": int(len(self.index.id_positions())),
            "alive": ids.tolist(),
            "positions": self.index.id_positions()[ids].tolist(),
            "config": self.config.to_payload(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LiveWorld":
        """Reconstruct a world that answers byte-identically to the saved one.

        Dead id rows are re-allocated and deleted again so the id high-water
        mark (hence every future allocation) matches the original daemon's.
        """
        if state.get("version") != 1:
            raise ValueError(f"unknown snapshot version {state.get('version')!r}")
        config = WorldConfig.from_payload(state["config"])
        n_rows = int(state["n_rows"])
        alive = np.asarray(state["alive"], dtype=np.int64)
        positions = np.asarray(state["positions"], dtype=np.float64).reshape(len(alive), 2)
        pts = np.zeros((n_rows, 2), dtype=np.float64)
        if len(alive):
            pts[alive] = positions
        world = cls.__new__(cls)
        world.config = config
        world.spec = UDGTileSpec.default()
        world.applied_seq = int(state["seq"])
        world.index = DynamicSpatialIndex(
            pts, radius=config.udg_radius, backend=config.backend
        )
        dead = np.setdiff1d(np.arange(n_rows, dtype=np.int64), alive, assume_unique=True)
        if len(dead):
            world.index.delete(dead)
        world.index.consume_dirty()
        world.tracker = TopologyTracker(world.index, config.udg_radius)
        world.engine = DistributedRepairEngine(world.index, world.spec, config.window)
        world._route_cache_seq = -1
        world._route_adjacency = {}
        return world

    def digest(self) -> str:
        """SHA-256 over the canonical state + maintained edge sets."""
        payload = {
            "seq": self.applied_seq,
            "config": self.config.to_payload(),
            **world_digest_parts(self.index, self.tracker, self.engine),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
