"""Injected-clock latency accounting: ingest→applied spans, p50/p99, events/s.

The recorder is deliberately clock-agnostic: it calls whatever ``clock``
callable it was given (defaulting to
:func:`repro.serve.clock.monotonic_now`), so the unit tests drive a
:class:`~repro.serve.clock.ManualClock` and assert exact percentiles while
the daemon and the S05 benchmark measure real time.  A transport stamps each
accepted event at ingest (:meth:`LatencyRecorder.ingest`) and the tick loop
closes the spans in bulk when the batch lands
(:meth:`LatencyRecorder.applied`); rejected or coalesced-away events close
with their batch too — coalescing is an *optimisation* of the apply, not a
dropped obligation, so a shadowed move still has a well-defined
ingest→applied latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.serve.clock import monotonic_now

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Per-event ingest→applied latency plus sustained-throughput accounting."""

    def __init__(self, clock: Callable[[], float] = monotonic_now) -> None:
        self._clock = clock
        self._ingest: Dict[int, float] = {}
        self._latencies: List[float] = []
        self._first_ingest: Optional[float] = None
        self._last_applied: Optional[float] = None
        self._ticks = 0
        self._rejected = 0
        self._last_retry_after: Optional[float] = None

    def rejected(self, retry_after: Optional[float] = None) -> None:
        """Count one refused (backpressured) event and its ``retry_after`` hint.

        Refusals previously lived only in the refusal replies themselves, so
        an operator polling ``stats`` could not tell a healthy daemon from
        one bouncing every update; the counter makes backpressure visible.
        """
        self._rejected += 1
        if retry_after is not None:
            self._last_retry_after = float(retry_after)

    def ingest(self, seq: int, now: Optional[float] = None) -> float:
        """Stamp event ``seq`` as ingested; returns the stamp."""
        stamp = self._clock() if now is None else float(now)
        self._ingest[seq] = stamp
        if self._first_ingest is None or stamp < self._first_ingest:
            self._first_ingest = stamp
        return stamp

    def applied(self, seqs: Iterable[int], now: Optional[float] = None) -> int:
        """Close the spans of ``seqs`` at one shared applied stamp.

        Returns how many of them had a matching ingest stamp (unknown seqs
        are ignored so transports can re-apply defensively).
        """
        stamp = self._clock() if now is None else float(now)
        closed = 0
        for seq in seqs:
            started = self._ingest.pop(seq, None)
            if started is None:
                continue
            self._latencies.append(stamp - started)
            closed += 1
        if closed:
            self._last_applied = stamp
        self._ticks += 1
        return closed

    @property
    def n_applied(self) -> int:
        return len(self._latencies)

    @property
    def n_pending(self) -> int:
        return len(self._ingest)

    def report(self) -> Dict[str, object]:
        """The latency/throughput summary the ``stats`` op and S05 publish.

        ``events_per_s`` is *sustained* throughput: applied events over the
        first-ingest→last-applied span (idle time between bursts counts
        against it, as it would in production).
        """
        if not self._latencies:
            return {
                "events_applied": 0,
                "events_pending": self.n_pending,
                "events_rejected": self._rejected,
                "last_retry_after": self._last_retry_after,
                "ticks": self._ticks,
                "p50_ms": None,
                "p99_ms": None,
                "max_ms": None,
                "events_per_s": None,
            }
        spans = np.asarray(self._latencies, dtype=np.float64)
        elapsed = None
        if self._first_ingest is not None and self._last_applied is not None:
            elapsed = self._last_applied - self._first_ingest
        return {
            "events_applied": int(len(spans)),
            "events_pending": self.n_pending,
            "events_rejected": self._rejected,
            "last_retry_after": self._last_retry_after,
            "ticks": self._ticks,
            "p50_ms": round(float(np.percentile(spans, 50)) * 1e3, 4),
            "p99_ms": round(float(np.percentile(spans, 99)) * 1e3, 4),
            "max_ms": round(float(spans.max()) * 1e3, 4),
            "events_per_s": (
                round(len(spans) / elapsed, 2) if elapsed and elapsed > 0 else None
            ),
        }
