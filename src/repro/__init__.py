"""repro — reproduction of *Sparse power-efficient topologies for wireless ad
hoc sensor networks* (Amitabha Bagchi, IPPS 2010).

The library builds the paper's two overlay constructions — ``UDG-SENS(2, λ)``
on unit-disk graphs and ``NN-SENS(2, k)`` on k-nearest-neighbour graphs — on
top of from-scratch substrates for geometric random graphs, site percolation
on Z², distributed (local-information) construction, percolated-mesh routing
and a sensor-network usage simulator.

Quick start::

    import numpy as np
    from repro import build_udg_sens, Rect

    net = build_udg_sens(intensity=20.0, window=Rect(0, 0, 40, 40), seed=7)
    print(net.summary())

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.core import (
    NNTileSpec,
    SensNetwork,
    UDGTileSpec,
    build_nn_sens,
    build_udg_sens,
    find_nn_k_threshold,
    find_udg_lambda_threshold,
    measure_coverage,
    measure_stretch,
    power_stretch,
)
from repro.geometry.poisson import PoissonProcess, poisson_points
from repro.geometry.primitives import Rect, Disc
from repro.graphs import build_udg, build_knn

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "Disc",
    "PoissonProcess",
    "poisson_points",
    "build_udg",
    "build_knn",
    "UDGTileSpec",
    "NNTileSpec",
    "SensNetwork",
    "build_udg_sens",
    "build_nn_sens",
    "find_udg_lambda_threshold",
    "find_nn_k_threshold",
    "measure_stretch",
    "measure_coverage",
    "power_stretch",
    "__version__",
]
