"""Dynamic-scenario workloads: mobility (M01), failure (F01), heterogeneity (H01).

Every experiment of the static index (E01–E12) freezes a Poisson deployment
and measures it once; these workloads evolve the deployment over time and
measure the *trajectory*.  All three register with :mod:`repro.runner` like
any other workload — parallel sweeps, the JSON-lines store, resume and the
CLI come for free — and all three drive their timeline through
:class:`repro.simulation.events.EventQueue`, the same engine the usage
simulator uses.

* **M01** — nodes move (random waypoint / billiard walk / drift field); the
  :class:`~repro.dynamics.incremental.DynamicSpatialIndex` absorbs every step
  as in-place moves and the :class:`~repro.dynamics.topology.TopologyTracker`
  repairs the UDG edge set incrementally.  Reported per step: edge churn,
  largest-component fraction, mean Euclidean stretch over sampled pairs.
* **M02** — a *distributed overlay under sparse motion*: a fraction of the
  nodes moves each step (plus light churn) and the
  :class:`~repro.distributed.repair.DistributedRepairEngine` keeps the
  Figure-7 construction current by re-electing only the tiles the diff
  touched, sharing one dirty-id stream with the UDG tracker.  Reported per
  step: dirty/changed tiles, re-spliced pairs, overlay churn and repair
  messages; the headline certifies the spliced result equals a from-scratch
  ``distributed_build`` and compares the repair message bill against one
  full build.
* **F01** — nodes fail (i.i.d. exponential lifetimes, optionally spatially
  correlated outage discs); reported per observation: survivor count, event
  coverage by the surviving sensors, connectivity.
* **H01** — per-node heterogeneous radio radii (uniform or lognormal spread)
  decaying at heterogeneous rates; reported per step: mean radius and the
  connectivity of the *bidirectional* (``d ≤ min(rᵢ, rⱼ)``) vs *union*
  (``d ≤ max(rᵢ, rⱼ)``) link graphs — the price of asymmetric links.

Rows contain no wall-clock values, so identical parameters give
byte-identical store records regardless of worker count (the runner's
determinism contract).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.construct import distributed_build
from repro.distributed.repair import DistributedRepairEngine
from repro.dynamics.churn import CorrelatedOutage, LifetimeChurn, heterogeneous_radii
from repro.dynamics.incremental import DynamicSpatialIndex
from repro.dynamics.mobility import Drift, MobilityModel, RandomWalk, RandomWaypoint, reflect_into
from repro.dynamics.topology import TopologyTracker
from repro.geometry.index import build_index, within_ball
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.graphs.base import GeometricGraph
from repro.graphs.metrics import largest_component_fraction, shortest_path_euclidean
from repro.runner.registry import register
from repro.simulation.events import EventQueue
from repro.simulation.sensing import coverage_fraction

__all__ = [
    "experiment_m01_mobility",
    "experiment_m02_mobile_distributed_build",
    "experiment_f01_failure",
    "experiment_h01_heterogeneous",
]

MOBILITY_MODELS = ("waypoint", "walk", "drift")


def _spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Independent child generators so sub-processes cannot perturb each other."""
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(count)]


def _make_model(
    name: str, pts: np.ndarray, window: Rect, speed: float, rng: np.random.Generator
) -> MobilityModel:
    if name == "waypoint":
        return RandomWaypoint(pts, window, speed_range=(0.5 * speed, 1.5 * speed), rng=rng)
    if name == "walk":
        return RandomWalk(pts, window, speed=speed, turn_std=0.2, rng=rng)
    if name == "drift":
        return Drift(pts, window, drift=(0.8 * speed, 0.3 * speed), jitter_std=0.4 * speed, rng=rng)
    raise ValueError(f"unknown mobility model {name!r}; known: {', '.join(MOBILITY_MODELS)}")


def _mean_stretch(
    graph: GeometricGraph,
    n_pairs: int,
    min_euclidean: float,
    rng: np.random.Generator,
) -> float | None:
    """Mean Euclidean stretch over sampled largest-component pairs (None if none).

    A handful of Dijkstra sources serve several targets each, as in
    :func:`repro.core.stretch.measure_stretch`.
    """
    from repro.graphs.metrics import largest_component_nodes

    nodes = largest_component_nodes(graph)
    if len(nodes) < 2:
        return None
    n_sources = max(1, min(len(nodes), int(np.ceil(n_pairs / 4))))
    sources = rng.choice(nodes, size=n_sources, replace=False)
    dist = shortest_path_euclidean(graph, sources=sources)
    stretches: List[float] = []
    budget = n_pairs
    for row in range(n_sources):
        if budget <= 0:
            break
        targets = rng.choice(nodes, size=min(4, budget, len(nodes)), replace=False)
        for target in targets:
            if target == sources[row]:
                continue
            euclid = float(np.linalg.norm(graph.points[sources[row]] - graph.points[target]))
            if euclid < min_euclidean:
                continue
            graph_dist = float(dist[row, target])
            if not np.isfinite(graph_dist):
                continue
            stretches.append(graph_dist / euclid)
            budget -= 1
    if not stretches:
        return None
    return float(np.mean(stretches))


# ---------------------------------------------------------------------------
# M01 — mobility: churn and stretch over time
# ---------------------------------------------------------------------------
@register("M01")
def experiment_m01_mobility(
    intensity: float = 3.0,
    window_side: float = 15.0,
    radius: float = 1.0,
    model: str = "waypoint",
    speed: float = 0.15,
    n_steps: int = 30,
    dt: float = 1.0,
    n_pairs: int = 24,
    backend: str = "grid",
    seed: int = 301,
) -> ExperimentResult:
    """Mobility: incremental topology churn and stretch over time.

    Parameters
    ----------
    intensity:
        Poisson deployment intensity (nodes per unit area).
    window_side:
        Side of the square deployment/movement window.
    radius:
        UDG connection radius (the radio range).
    model:
        Mobility model: ``waypoint``, ``walk`` or ``drift``.
    speed:
        Characteristic node speed (distance per unit time).
    n_steps, dt:
        Number of timeline steps and the step length.
    n_pairs:
        Stretch sample pairs per step.
    backend:
        Spatial-index backend of the dynamic index.
    seed:
        Seed; deployment, mobility and pair sampling draw from independent
        child streams.
    """
    if intensity < 0 or window_side <= 0:
        raise ValueError("intensity must be >= 0 and window_side positive")
    if radius <= 0 or speed < 0:
        raise ValueError("radius must be positive and speed non-negative")
    if n_steps < 1 or dt <= 0:
        raise ValueError("n_steps must be >= 1 and dt positive")
    if model not in MOBILITY_MODELS:
        raise ValueError(f"unknown mobility model {model!r}; known: {', '.join(MOBILITY_MODELS)}")
    rng_deploy, rng_model, rng_sample = _spawn_rngs(seed, 3)
    window = Rect(0, 0, window_side, window_side)
    pts = poisson_points(window, intensity, rng_deploy)
    if len(pts) < 5:
        return ExperimentResult(
            experiment_id="M01",
            title="Mobility: topology churn and stretch over time",
            paper_reference="scenario extension (P2 stretch under mobility)",
            rows=[],
            headline={
                "mean_stretch": None,
                "total_edge_churn": None,
                "mean_lcc_fraction": None,
                "maintenance_consistent": None,
            },
            notes=[f"degenerate deployment ({len(pts)} nodes); nothing to measure"],
        )

    mobility = _make_model(model, pts, window, speed, rng_model)
    index = DynamicSpatialIndex(pts, radius=radius, backend=backend)
    tracker = TopologyTracker(index, radius)
    rows: List[Dict] = []
    stretch_means: List[float] = []
    lcc_values: List[float] = []
    total_churn = 0

    def handle(event, queue) -> None:
        nonlocal total_churn
        index.move(index.ids(), mobility.step(dt))
        diff = tracker.update()
        total_churn += diff.churn
        graph = tracker.graph()
        lcc = largest_component_fraction(graph)
        lcc_values.append(lcc)
        stretch = _mean_stretch(graph, n_pairs, min_euclidean=2 * radius, rng=rng_sample)
        if stretch is not None:
            stretch_means.append(stretch)
        rows.append(
            {
                "step": len(rows) + 1,
                "time": round(queue.now, 6),
                "n_edges": tracker.n_edges,
                "edges_added": diff.n_added,
                "edges_removed": diff.n_removed,
                "lcc_fraction": round(lcc, 4),
                "mean_stretch": round(stretch, 4) if stretch is not None else None,
            }
        )

    queue = EventQueue()
    queue.schedule_at_many(np.arange(1, n_steps + 1, dtype=np.float64) * dt, "step")
    queue.run(handle)

    return ExperimentResult(
        experiment_id="M01",
        title="Mobility: topology churn and stretch over time",
        paper_reference="scenario extension (P2 stretch under mobility)",
        rows=rows,
        headline={
            "mean_stretch": round(float(np.mean(stretch_means)), 4) if stretch_means else None,
            "total_edge_churn": int(total_churn),
            "mean_lcc_fraction": round(float(np.mean(lcc_values)), 4),
            "maintenance_consistent": bool(tracker.matches_recompute()),
        },
        notes=[
            f"{len(pts)} nodes, model={model}, incremental UDG maintenance on the "
            f"{backend!r} backend; stretch sampled over pairs at Euclidean "
            f"distance >= 2*radius inside the largest component.",
        ],
    )


# ---------------------------------------------------------------------------
# M02 — mobile distributed build: overlay repair under sparse motion
# ---------------------------------------------------------------------------
@register("M02")
def experiment_m02_mobile_distributed_build(
    intensity: float = 3.0,
    window_side: float = 15.0,
    move_fraction: float = 0.02,
    move_scale: float = 0.2,
    churn_count: int = 1,
    n_steps: int = 20,
    dt: float = 1.0,
    backend: str = "grid",
    seed: int = 306,
) -> ExperimentResult:
    """Mobile distributed build: diff-driven overlay repair over time.

    A sparse fraction of the deployment moves each step (plus light churn);
    the :class:`~repro.distributed.repair.DistributedRepairEngine` keeps the
    Figure-7 overlay current from the same consumed dirty-id stream the UDG
    :class:`~repro.dynamics.topology.TopologyTracker` repairs edges from.

    Parameters
    ----------
    intensity, window_side:
        Poisson deployment on a square window.
    move_fraction:
        Fraction of alive nodes displaced per step (the sparse-motion regime).
    move_scale:
        Per-axis displacement rms of one move, as a fraction of the UDG
        connection radius.
    churn_count:
        Nodes failing + arriving per step (0 disables churn).
    n_steps, dt:
        Number of timeline steps and the step length.
    backend:
        Spatial-index backend of the dynamic index.
    seed:
        Seed; deployment and motion/churn draw from independent child streams.
    """
    if intensity < 0 or window_side <= 0:
        raise ValueError("intensity must be >= 0 and window_side positive")
    if not 0 < move_fraction <= 1 or move_scale <= 0:
        raise ValueError("move_fraction must lie in (0, 1] and move_scale be positive")
    if churn_count < 0:
        raise ValueError("churn_count must be non-negative")
    if n_steps < 1 or dt <= 0:
        raise ValueError("n_steps must be >= 1 and dt positive")
    spec = UDGTileSpec.default()
    radius = spec.connection_radius
    rng_deploy, rng_motion = _spawn_rngs(seed, 2)
    window = Rect(0, 0, window_side, window_side)
    pts = poisson_points(window, intensity, rng_deploy)
    if len(pts) < 5:
        return ExperimentResult(
            experiment_id="M02",
            title="Mobile distributed build: diff-driven overlay repair",
            paper_reference="Figure 7 construction under mobility (repair engine)",
            rows=[],
            headline={
                "repair_consistent": None,
                "total_overlay_churn": None,
                "repair_messages_total": None,
                "rebuild_messages_per_step": None,
                "mean_good_fraction": None,
            },
            notes=[f"degenerate deployment ({len(pts)} nodes); nothing to measure"],
        )

    index = DynamicSpatialIndex(pts, radius=radius, backend=backend)
    tracker = TopologyTracker(index, radius)
    engine = DistributedRepairEngine(index, spec, window)
    initial_messages = engine.stats.messages_sent

    rows: List[Dict] = []
    good_fractions: List[float] = []
    total_overlay_churn = 0
    n_tiles = max(1, engine.tiling.n_tiles)
    previous_edges = {(int(a), int(b)) for a, b in engine.result().edges}

    def handle(event, queue) -> None:
        nonlocal previous_edges, total_overlay_churn
        n_alive = len(index)
        n_move = max(1, int(round(move_fraction * n_alive)))
        movers = np.sort(rng_motion.choice(index.ids(), size=n_move, replace=False))
        displaced = index.id_positions()[movers] + rng_motion.normal(
            0, move_scale * radius, size=(n_move, 2)
        )
        index.move(movers, reflect_into(displaced, window))
        if churn_count and n_alive > churn_count + 2:
            index.delete(np.sort(rng_motion.choice(index.ids(), size=churn_count, replace=False)))
            index.insert(window.sample_uniform(churn_count, rng_motion))
        # One consumed stream feeds both incremental consumers.
        dirty, deleted = index.consume_dirty()
        diff = tracker.update(dirty=dirty, deleted=deleted)
        report = engine.update(dirty=dirty, deleted=deleted)
        result = engine.result()
        edges = {(int(a), int(b)) for a, b in result.edges}
        overlay_churn = len(edges ^ previous_edges)
        previous_edges = edges
        total_overlay_churn += overlay_churn
        good_fractions.append(len(result.good_tiles) / n_tiles)
        rows.append(
            {
                "step": len(rows) + 1,
                "time": round(queue.now, 6),
                "n_alive": len(index),
                "dirty_tiles": report.dirty_tiles,
                "changed_tiles": report.changed_tiles,
                "respliced_pairs": report.respliced_pairs,
                "repair_messages": report.messages,
                "n_good_tiles": len(result.good_tiles),
                "n_overlay_edges": len(edges),
                "overlay_churn": overlay_churn,
                "udg_edge_churn": diff.churn,
            }
        )

    queue = EventQueue()
    queue.schedule_at_many(np.arange(1, n_steps + 1, dtype=np.float64) * dt, "step")
    queue.run(handle)

    # Deterministic consistency certificate: the spliced overlay equals a
    # from-scratch distributed build over the final surviving positions
    # (precomputed here because its message bill feeds the headline too).
    scratch = distributed_build(index.positions(), spec, window)
    repair_consistent = engine.matches_rebuild(scratch)

    return ExperimentResult(
        experiment_id="M02",
        title="Mobile distributed build: diff-driven overlay repair",
        paper_reference="Figure 7 construction under mobility (repair engine)",
        rows=rows,
        headline={
            "repair_consistent": bool(repair_consistent),
            "total_overlay_churn": int(total_overlay_churn),
            "repair_messages_total": int(engine.stats.messages_sent - initial_messages),
            "rebuild_messages_per_step": int(scratch.stats.messages_sent),
            "mean_good_fraction": round(float(np.mean(good_fractions)), 4),
        },
        notes=[
            f"{len(pts)} nodes, {move_fraction:.0%} moving per step "
            f"(rms {move_scale:g}·radius), churn {churn_count}/step; the repair "
            "engine and the UDG tracker share one consumed dirty-id stream.  "
            "repair_messages_total counts the whole timeline; a rebuild would pay "
            "rebuild_messages_per_step on every one of the "
            f"{n_steps} steps.",
        ],
    )


# ---------------------------------------------------------------------------
# F01 — failure: coverage and connectivity decay
# ---------------------------------------------------------------------------
@register("F01")
def experiment_f01_failure(
    intensity: float = 6.0,
    window_side: float = 12.0,
    radius: float = 1.0,
    sensing_radius: float = 1.0,
    mean_lifetime: float = 20.0,
    outage_rate: float = 0.0,
    outage_radius: float = 2.0,
    horizon: float = 30.0,
    observe_every: float = 3.0,
    n_events: int = 400,
    coverage_target: float = 0.9,
    backend: str = "grid",
    seed: int = 302,
) -> ExperimentResult:
    """Node failure: coverage and connectivity decay over time.

    Parameters
    ----------
    intensity, window_side:
        Poisson deployment on a square window.
    radius:
        UDG connection radius for the connectivity track.
    sensing_radius:
        Event-detection radius for the coverage track.
    mean_lifetime:
        Mean exponential node lifetime.
    outage_rate, outage_radius:
        Rate and radius of spatially correlated outage discs (0 disables).
    horizon, observe_every:
        Simulated time span and observation cadence.
    n_events:
        Monte-Carlo event positions for the coverage estimate (drawn once, so
        successive observations measure decay on the same event set).
    coverage_target:
        Threshold for the time-to-coverage-loss headline.
    backend:
        Spatial-index backend of the dynamic index.
    seed:
        Seed; deployment, churn and events draw from independent streams.
    """
    if intensity < 0 or window_side <= 0:
        raise ValueError("intensity must be >= 0 and window_side positive")
    if radius <= 0 or sensing_radius <= 0:
        raise ValueError("radius and sensing_radius must be positive")
    if horizon <= 0 or observe_every <= 0:
        raise ValueError("horizon and observe_every must be positive")
    if not 0.0 < coverage_target <= 1.0:
        raise ValueError("coverage_target must lie in (0, 1]")
    if n_events < 1:
        raise ValueError("n_events must be positive")
    rng_deploy, rng_churn, rng_events = _spawn_rngs(seed, 3)
    window = Rect(0, 0, window_side, window_side)
    pts = poisson_points(window, intensity, rng_deploy)
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="F01",
            title="Node failure: coverage and connectivity decay",
            paper_reference="scenario extension (P3 coverage under churn)",
            rows=[],
            headline={
                "final_coverage": None,
                "final_lcc_fraction": None,
                "time_to_coverage_loss": None,
                "n_failed": None,
            },
            notes=[f"degenerate deployment ({len(pts)} nodes); nothing to measure"],
        )

    churn = LifetimeChurn(mean_lifetime)
    lifetimes = churn.failure_times(len(pts), rng_churn)
    events = window.sample_uniform(n_events, rng_events)
    index = DynamicSpatialIndex(pts, radius=radius, backend=backend)
    tracker = TopologyTracker(index, radius)

    rows: List[Dict] = []
    time_to_loss: List[float] = []
    n_failed = 0

    def handle(event, queue) -> None:
        nonlocal n_failed
        if event.kind == "fail":
            node = int(event.payload)
            if index.is_alive(node):
                index.delete([node])
                n_failed += 1
            return
        if event.kind == "outage":
            center = np.asarray(event.payload, dtype=np.float64)
            alive = index.ids()
            hit = alive[within_ball(index.positions(), center, outage_radius)]
            if hit.size:
                index.delete(hit)
                n_failed += len(hit)
            return
        # observation
        tracker.update()
        coverage = (
            coverage_fraction(index.positions(), events, sensing_radius)
            if len(index)
            else 0.0
        )
        lcc = largest_component_fraction(tracker.graph()) if len(index) else 0.0
        if coverage < coverage_target and not time_to_loss:
            time_to_loss.append(queue.now)
        rows.append(
            {
                "time": round(queue.now, 6),
                "n_alive": len(index),
                "n_failed": n_failed,
                "coverage": round(coverage, 4),
                "lcc_fraction": round(lcc, 4),
                "n_edges": tracker.n_edges,
            }
        )

    queue = EventQueue()
    for node, lifetime in enumerate(lifetimes):
        if lifetime <= horizon:
            queue.schedule_at(float(lifetime), "fail", node)
    if outage_rate > 0:
        outage = CorrelatedOutage(outage_rate, outage_radius)
        times, centers = outage.outages(horizon, window, rng_churn)
        for t, center in zip(times, centers):
            queue.schedule_at(float(t), "outage", (float(center[0]), float(center[1])))
    n_obs = int(np.floor(horizon / observe_every))
    queue.schedule_at_many(
        np.arange(1, n_obs + 1, dtype=np.float64) * observe_every, "observe"
    )
    queue.run(handle)

    final = rows[-1] if rows else {}
    return ExperimentResult(
        experiment_id="F01",
        title="Node failure: coverage and connectivity decay",
        paper_reference="scenario extension (P3 coverage under churn)",
        rows=rows,
        headline={
            "final_coverage": final.get("coverage"),
            "final_lcc_fraction": final.get("lcc_fraction"),
            "time_to_coverage_loss": round(time_to_loss[0], 6) if time_to_loss else None,
            "n_failed": n_failed,
        },
        notes=[
            f"{len(pts)} nodes, mean lifetime {mean_lifetime:g}, "
            + (
                f"correlated outages at rate {outage_rate:g} (radius {outage_radius:g}); "
                if outage_rate > 0
                else "no correlated outages; "
            )
            + "coverage is measured against one fixed Monte-Carlo event set.",
        ],
    )


# ---------------------------------------------------------------------------
# H01 — heterogeneous radio ranges under decay
# ---------------------------------------------------------------------------
@register("H01")
def experiment_h01_heterogeneous(
    intensity: float = 6.0,
    window_side: float = 12.0,
    base_radius: float = 1.0,
    spread: float = 0.4,
    distribution: str = "uniform",
    decay_rate: float = 0.02,
    decay_spread: float = 0.5,
    n_steps: int = 20,
    dt: float = 1.0,
    backend: str = "grid",
    seed: int = 303,
) -> ExperimentResult:
    """Heterogeneous radio ranges: bidirectional vs union connectivity under decay.

    Parameters
    ----------
    intensity, window_side:
        Poisson deployment on a square window.
    base_radius, spread, distribution:
        Initial per-node radii via :func:`repro.dynamics.churn.heterogeneous_radii`.
    decay_rate, decay_spread:
        Mean exponential radius decay per unit time and its per-node
        heterogeneity (each node decays at ``decay_rate · U(1−s, 1+s)``).
    n_steps, dt:
        Timeline length and step size.
    backend:
        Spatial-index backend for the one-off candidate-pair enumeration.
    seed:
        Seed; deployment and radio draws use independent streams.
    """
    if intensity < 0 or window_side <= 0:
        raise ValueError("intensity must be >= 0 and window_side positive")
    if decay_rate < 0 or not 0.0 <= decay_spread < 1.0:
        raise ValueError("decay_rate must be >= 0 and decay_spread in [0, 1)")
    if n_steps < 1 or dt <= 0:
        raise ValueError("n_steps must be >= 1 and dt positive")
    rng_deploy, rng_radio = _spawn_rngs(seed, 2)
    window = Rect(0, 0, window_side, window_side)
    pts = poisson_points(window, intensity, rng_deploy)
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="H01",
            title="Heterogeneous radio ranges: connectivity under decay",
            paper_reference="scenario extension (heterogeneous UDG(2, λ))",
            rows=[],
            headline={
                "initial_lcc_bidirectional": None,
                "final_lcc_bidirectional": None,
                "mean_asymmetry_gap": None,
                "time_to_partition": None,
            },
            notes=[f"degenerate deployment ({len(pts)} nodes); nothing to measure"],
        )

    radii = heterogeneous_radii(len(pts), base_radius, spread, rng_radio, distribution)
    rates = decay_rate * rng_radio.uniform(1.0 - decay_spread, 1.0 + decay_spread, size=len(pts))
    # Radii only shrink, so the initial maximum bounds every later link:
    # enumerate candidate pairs once and re-filter per step.
    r_max = float(radii.max())
    pairs = build_index(pts, radius=r_max, backend=backend).query_pairs(r_max)
    diffs = pts[pairs[:, 0]] - pts[pairs[:, 1]] if len(pairs) else np.zeros((0, 2))
    dists = np.hypot(diffs[:, 0], diffs[:, 1])

    rows: List[Dict] = []
    gaps: List[float] = []
    partition_time: List[float] = []

    def observe(now: float, step: int) -> None:
        r_i, r_j = radii[pairs[:, 0]], radii[pairs[:, 1]]
        sym_edges = pairs[dists <= np.minimum(r_i, r_j)] if len(pairs) else pairs
        union_edges = pairs[dists <= np.maximum(r_i, r_j)] if len(pairs) else pairs
        lcc_sym = largest_component_fraction(GeometricGraph(pts, sym_edges))
        lcc_union = largest_component_fraction(GeometricGraph(pts, union_edges))
        gaps.append(lcc_union - lcc_sym)
        if lcc_sym < 0.5 and not partition_time:
            partition_time.append(now)
        rows.append(
            {
                "step": step,
                "time": round(now, 6),
                "mean_radius": round(float(radii.mean()), 4),
                "n_edges_bidirectional": len(sym_edges),
                "n_edges_union": len(union_edges),
                "lcc_bidirectional": round(lcc_sym, 4),
                "lcc_union": round(lcc_union, 4),
            }
        )

    observe(0.0, 0)
    initial_lcc = rows[0]["lcc_bidirectional"]

    def handle(event, queue) -> None:
        nonlocal radii
        radii = radii * np.exp(-rates * dt)
        observe(queue.now, len(rows))

    queue = EventQueue()
    queue.schedule_at_many(np.arange(1, n_steps + 1, dtype=np.float64) * dt, "decay")
    queue.run(handle)

    return ExperimentResult(
        experiment_id="H01",
        title="Heterogeneous radio ranges: connectivity under decay",
        paper_reference="scenario extension (heterogeneous UDG(2, λ))",
        rows=rows,
        headline={
            "initial_lcc_bidirectional": initial_lcc,
            "final_lcc_bidirectional": rows[-1]["lcc_bidirectional"],
            "mean_asymmetry_gap": round(float(np.mean(gaps)), 4),
            "time_to_partition": round(partition_time[0], 6) if partition_time else None,
        },
        notes=[
            f"{len(pts)} nodes, {distribution} radius spread {spread:g} around "
            f"{base_radius:g}, heterogeneous exponential decay (mean rate {decay_rate:g}); "
            "bidirectional links need d <= min(r_i, r_j), union links d <= max.",
        ],
    )
