"""Node churn processes: failures, arrivals, correlated outages, radio spread.

The churn layer produces *event schedules* — arrays of times (plus positions
or regions) — that the workloads feed into
:class:`repro.simulation.events.EventQueue`.  Keeping the sampling separate
from the simulation loop means every schedule is drawn up front from one
seeded generator, so a run is deterministic no matter how the event handlers
interleave.

* :class:`LifetimeChurn` — i.i.d. exponential node lifetimes plus a Poisson
  arrival stream of fresh nodes (uniform positions), the standard birth–death
  deployment model.
* :class:`CorrelatedOutage` — a Poisson stream of disc-shaped outage regions
  that knock out every node inside at once (weather cell, jammer, power
  domain), the spatially *correlated* failure mode that i.i.d. lifetimes
  cannot express.
* :func:`heterogeneous_radii` — per-node radio ranges drawn around a base
  radius (uniform or lognormal spread), for the H-series heterogeneous-radio
  workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.primitives import Rect

__all__ = ["LifetimeChurn", "CorrelatedOutage", "heterogeneous_radii"]


@dataclass(frozen=True)
class LifetimeChurn:
    """Independent exponential lifetimes plus a Poisson arrival stream.

    Attributes
    ----------
    mean_lifetime:
        Mean of the exponential lifetime of every node (time units).
    arrival_rate:
        Expected number of fresh-node arrivals per unit time (0 disables
        arrivals).
    """

    mean_lifetime: float
    arrival_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")

    def failure_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """I.i.d. exponential failure times for ``n`` nodes alive at time 0."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return rng.exponential(self.mean_lifetime, size=n)

    def arrivals(
        self, horizon: float, window: Rect, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Arrival schedule on ``[0, horizon]``: sorted times and uniform positions.

        An arriving node's own lifetime is the caller's to sample (via
        :meth:`failure_times`) so the draw order stays deterministic.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        count = int(rng.poisson(self.arrival_rate * horizon)) if self.arrival_rate else 0
        times = np.sort(rng.uniform(0.0, horizon, size=count))
        return times, window.sample_uniform(count, rng)


@dataclass(frozen=True)
class CorrelatedOutage:
    """Poisson stream of disc-shaped regions that fail all nodes inside.

    Attributes
    ----------
    rate:
        Expected number of outage events per unit time.
    radius:
        Radius of the outage disc (every alive node within it fails).
    """

    rate: float
    radius: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.radius <= 0:
            raise ValueError("radius must be positive")

    def outages(
        self, horizon: float, window: Rect, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Outage schedule on ``[0, horizon]``: sorted times and disc centers."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        count = int(rng.poisson(self.rate * horizon)) if self.rate else 0
        times = np.sort(rng.uniform(0.0, horizon, size=count))
        return times, window.sample_uniform(count, rng)


def heterogeneous_radii(
    n: int,
    base_radius: float,
    spread: float,
    rng: np.random.Generator,
    distribution: str = "uniform",
) -> np.ndarray:
    """Per-node radio radii around ``base_radius``.

    Parameters
    ----------
    n:
        Number of nodes.
    base_radius:
        Nominal radio range.
    spread:
        Heterogeneity knob in ``[0, 1)``.  ``uniform`` draws radii uniformly
        from ``[base·(1−spread), base·(1+spread)]``; ``lognormal`` multiplies
        the base by ``exp(N(0, spread))`` clipped to the same interval (heavy
        mid, no degenerate zero-range radios either way).  ``spread == 0``
        returns the homogeneous deployment.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if base_radius <= 0:
        raise ValueError("base_radius must be positive")
    if not 0.0 <= spread < 1.0:
        raise ValueError("spread must lie in [0, 1)")
    if spread == 0.0:  # repro: allow[REPRO201] exact sentinel: caller-passed homogeneous knob
        return np.full(n, float(base_radius))
    lo, hi = base_radius * (1.0 - spread), base_radius * (1.0 + spread)
    if distribution == "uniform":
        return rng.uniform(lo, hi, size=n)
    if distribution == "lognormal":
        return np.clip(base_radius * np.exp(rng.normal(0.0, spread, size=n)), lo, hi)
    raise ValueError(f"unknown radius distribution {distribution!r}; known: uniform, lognormal")
