"""Incremental spatial-index maintenance: moves, inserts and deletes.

:class:`DynamicSpatialIndex` keeps neighbour queries answerable while a
deployment evolves, *without* rebuilding a :func:`repro.geometry.index.build_index`
structure from scratch on every change.  Nodes get stable integer ids (the
row index at construction, then sequentially for arrivals), every query
answers in id space, and the contract is exact equivalence: after any
interleaving of :meth:`move` / :meth:`insert` / :meth:`delete`, every query
returns byte-identically what a from-scratch rebuild over the surviving
positions would return (property-tested over random update sequences on both
backends).

Backends mirror the static layer:

* ``grid`` — **dirty-cell patching.**  Cell membership lives in a hash map of
  sorted id arrays.  A move only touches the structure when the node actually
  crosses a cell boundary, and then only the affected cells are re-grouped
  (one vectorised pass over their pooled members); the untouched cells —
  almost all of them for small per-step displacements — are never visited.
  Queries reuse the static :class:`~repro.geometry.index.GridIndex` cell
  geometry (exact keys, rational reach, boundary-slack guard rings) so the
  candidate superset, and therefore the exact result, is identical.
* ``kdtree`` — **rebuild-threshold fallback.**  cKDTrees cannot be patched,
  so updates accumulate in a divergence buffer: moved/deleted ids are masked
  out of base-tree answers and moved/inserted ids are checked exactly against
  the shared closed-ball predicate.  When the buffer outgrows
  ``rebuild_threshold`` × (alive nodes) the base tree is rebuilt and the
  buffer resets.

Bulk queries are vectorised on both backends (and :meth:`query_pairs` /
:meth:`~DynamicSpatialIndex.neighbour_lists` ride them): the grid adopts its
*patched* cell table into a :meth:`~repro.geometry.index.GridIndex.from_cell_table`
view, so the static backend's one-gather ``_matches`` scheme answers every
center at once straight off the incrementally maintained structure; the
KD-tree backend answers the base tree in one parallel bulk pass and merges
the divergence buffer through a second (tiny) index over just the diverged
points.  Both are byte-identical to looping the scalar query per center —
the S03 benchmark measures the gap (~an order of magnitude at large center
counts).

Both backends decide membership with the one shared
:func:`~repro.geometry.index.within_ball` predicate, which is what makes the
byte-identical contract possible at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.distributed.network import invalidate_neighbour_cache
from repro.geometry.index import (
    BACKENDS,
    GridIndex,
    KDTreeIndex,
    _pairs_from_lists,
    within_ball,
)
from repro.geometry.primitives import as_points
from repro.kernels import ops as kernel_ops

__all__ = ["DynamicIndexStats", "DynamicSpatialIndex"]

_EMPTY_IDS = np.zeros(0, dtype=np.int64)


@dataclass
class DynamicIndexStats:
    """Maintenance accounting: what the incremental layer actually did.

    ``cell_transfers`` counts grid nodes that crossed a cell boundary (the
    only moves that touch the grid structure); ``rebuilds`` counts kd-tree
    base rebuilds (the fallback the threshold is supposed to keep rare).
    """

    moves: int = 0
    inserts: int = 0
    deletes: int = 0
    cell_transfers: int = 0
    rebuilds: int = 0


def _check_radius(radius: float) -> None:
    if radius < 0:
        raise ValueError("radius must be non-negative")


class DynamicSpatialIndex:
    """A spatial index over a mutating point set, queried in stable-id space.

    Parameters
    ----------
    points:
        ``(n, 2)`` initial positions; node ids are the row indices.
    radius:
        The query radius the index will mostly serve (grid cell size, as in
        :func:`~repro.geometry.index.build_index`).
    backend:
        ``"grid"`` (dirty-cell patching) or ``"kdtree"`` (rebuild threshold).
    cell_size:
        Grid-only override of the cell size derived from ``radius``.
    rebuild_threshold:
        kd-tree-only: rebuild the base tree once the divergence buffer
        exceeds this fraction of the alive population.

    :meth:`positions` / :meth:`ids` return cached arrays that keep their
    identity until the active set changes, so identity-keyed caches above
    (e.g. the :class:`~repro.distributed.network.MessageNetwork` neighbour
    table) stay valid between updates and are invalidated through
    :func:`~repro.distributed.network.invalidate_neighbour_cache` when a move
    rewrites the cached coordinates in place.  Treat both as read-only.
    """

    def __init__(
        self,
        points: np.ndarray,
        radius: float | None = None,
        backend: str = "grid",
        cell_size: float | None = None,
        rebuild_threshold: float = 0.25,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown spatial-index backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        if rebuild_threshold <= 0:
            raise ValueError("rebuild_threshold must be positive")
        pts = as_points(points)
        if len(pts) and not np.isfinite(pts).all():
            raise ValueError("positions must be finite")
        self.backend = backend
        self.rebuild_threshold = float(rebuild_threshold)
        self.stats = DynamicIndexStats()

        n = len(pts)
        capacity = max(8, n)
        self._points = np.zeros((capacity, 2), dtype=np.float64)
        self._points[:n] = pts
        self._alive = np.zeros(capacity, dtype=bool)
        self._alive[:n] = True
        self._dirty = np.zeros(capacity, dtype=bool)
        self._size = n  # next fresh id
        self._n_alive = n
        self._deleted_buffer: List[int] = []
        self._active_ids: np.ndarray | None = None
        self._compact: np.ndarray | None = None

        if backend == "grid":
            size = cell_size if cell_size is not None else radius
            if size is None or size <= 0:
                size = 1.0  # any cell size answers radius-0 queries
            self.cell_size = float(size)
            # Geometry-only helper: reuses the static backend's exact cell
            # keys, rational reach and boundary-slack logic verbatim, so the
            # candidate supersets (hence the exact results) cannot drift.
            self._geom = GridIndex(np.zeros((0, 2)), cell_size=self.cell_size)
            self._keys = np.zeros((capacity, 2), dtype=np.int64)
            # Float mirror of the exact integer keys (exact below 2**53):
            # lets a move detect "same cell, nothing to do" with one float
            # comparison instead of re-running the exact-key repair.
            self._keys_f = np.zeros((capacity, 2), dtype=np.float64)
            self._mirror_exact = True
            self._cells: Dict[Tuple[int, int], np.ndarray] = {}
            # Lazily built GridIndex view over the patched cell table (the
            # bulk-query engine); None = stale, False = key span overflowed
            # the packed table and bulk queries fall back to the scalar loop.
            self._bulk_view: GridIndex | None | bool = None
            if n:
                keys = self._checked_keys(pts)
                self._keys[:n] = keys
                self._keys_f[:n] = keys
                if np.abs(keys).max() >= 2**53:
                    self._mirror_exact = False
                self._regroup_cells(drop=_EMPTY_IDS, add=np.arange(n, dtype=np.int64))
        else:
            self._exclude = np.zeros(capacity, dtype=bool)
            self._delta = np.zeros(capacity, dtype=bool)
            self._rebuild_base()

    # -- id / position accessors ------------------------------------------------
    def __len__(self) -> int:
        return self._n_alive

    def ids(self) -> np.ndarray:
        """Alive node ids, ascending (cached; do not mutate)."""
        if self._active_ids is None:
            self._active_ids = np.nonzero(self._alive[: self._size])[0].astype(np.int64)
        return self._active_ids

    def positions(self) -> np.ndarray:
        """Positions of the alive nodes in :meth:`ids` order (cached; do not mutate).

        The array object is reused across :meth:`move` calls (rows are
        rewritten in place) and replaced whenever the active set changes, so
        its identity keys "same deployment" for caches layered above.
        """
        if self._compact is None:
            self._compact = self._points[self.ids()].copy()
        return self._compact

    def id_positions(self) -> np.ndarray:
        """Id-indexed coordinate buffer: row ``i`` is the position of node ``i``.

        Covers every id ever allocated; rows of deleted nodes hold their last
        position.  The id-space consumers above this layer (topology trackers,
        the distributed repair engine) index it directly instead of translating
        through the compact :meth:`positions` order.  Treat as read-only; the
        array identity may change when the index grows.
        """
        return self._points[: self._size]

    def is_alive(self, node_id: int) -> bool:
        """Whether ``node_id`` refers to a currently alive node."""
        node_id = int(node_id)
        return 0 <= node_id < self._size and bool(self._alive[node_id])

    def position_of(self, node_id: int) -> np.ndarray:
        """Current position of one alive node."""
        node_id = int(node_id)
        if not (0 <= node_id < self._size) or not self._alive[node_id]:
            raise ValueError(f"node id {node_id} is not alive")
        return self._points[node_id].copy()

    # -- updates ----------------------------------------------------------------
    def _validate_ids(self, ids: Iterable[int]) -> np.ndarray:
        if isinstance(ids, np.ndarray) and ids is self._active_ids:
            return ids  # the index's own id array: trusted as-is
        arr = np.asarray(list(ids) if not isinstance(ids, np.ndarray) else ids, dtype=np.int64)
        arr = arr.reshape(-1)
        if arr.size == 0:
            return arr
        if arr.min() < 0 or arr.max() >= self._size or not self._alive[arr].all():
            raise ValueError("all ids must refer to alive nodes")
        # Strictly-ascending input (the common bulk case) is duplicate-free
        # without the O(n log n) unique.
        if arr.size > 1 and not (arr[1:] > arr[:-1]).all():
            if len(np.unique(arr)) != len(arr):
                raise ValueError("duplicate ids in one update call")
        return arr

    def _validate_positions(self, positions: np.ndarray, count: int) -> np.ndarray:
        pts = as_points(positions)
        if len(pts) != count:
            raise ValueError(f"expected {count} positions, got {len(pts)}")
        if len(pts) and not np.isfinite(pts).all():
            raise ValueError("positions must be finite")
        return pts

    def move(self, ids: Iterable[int], new_positions: np.ndarray) -> None:
        """Relocate alive nodes; only structure touched by the moves is patched."""
        ids = self._validate_ids(ids)
        new = self._validate_positions(new_positions, len(ids))
        if ids.size == 0:
            return
        # When every node is alive and the caller moves all of them (the
        # mobility hot path), id arithmetic degenerates to whole-array slices.
        full = ids is self._active_ids and self._n_alive == self._size
        if self.backend == "grid":
            self._grid_move(ids, new, full)
        else:
            self._exclude[ids] = True
            self._delta[ids] = True
        if full:
            self._points[: self._size] = new
            self._dirty[: self._size] = True
        else:
            self._points[ids] = new
            self._dirty[ids] = True
        self.stats.moves += len(ids)
        if self._compact is not None:
            # Rewrite the cached compact rows in place and tell identity-keyed
            # caches above that this array's contents changed.
            if ids is self._active_ids:
                self._compact[:] = new
            else:
                self._compact[np.searchsorted(self.ids(), ids)] = new
            invalidate_neighbour_cache(self._compact)
        if self.backend == "kdtree":
            self._maybe_rebuild()

    def _grid_move(self, ids: np.ndarray, new: np.ndarray, full: bool = False) -> None:
        """Patch only the cells of nodes that actually crossed a boundary.

        The exact-key repair (:meth:`GridIndex._exact_keys`) differs from the
        plain ``floor(x / cell_size)`` only where the computed quotient lands
        exactly on an integer, so it is re-run on just those *suspect* rows
        plus the rows whose plain key changed; everything else provably kept
        its cell, costing one float comparison per moved node.
        """
        quot = new / self.cell_size
        keys_f = np.floor(quot)
        # One reduction guards both overflow and non-finite input: a NaN in
        # the maximum poisons the comparison into raising too.
        max_key = np.abs(keys_f).max(initial=0.0)
        if not max_key < 2**62:
            raise ValueError(
                "point spread spans too many grid cells for this cell_size; "
                "use a larger cell_size or the 'kdtree' backend"
            )
        old_keys_f = self._keys_f[: self._size] if full else self._keys_f[ids]
        if max_key >= 2**53 or not self._mirror_exact:
            # Beyond 2**53 the float key mirror is no longer exact: take the
            # full exact path for the whole batch.
            examine = np.ones(len(ids), dtype=bool)
        else:
            examine = ((keys_f != old_keys_f) | (quot == keys_f)).any(axis=1)
        if examine.any():
            exact = self._geom._exact_keys(new[examine], quot=quot[examine])
            sub_ids = ids[examine]
            crossed = (exact != self._keys[sub_ids]).any(axis=1)
            if crossed.any():
                movers = sub_ids[crossed]
                new_keys = exact[crossed]
                self._regroup_cells(drop=movers, add=movers, add_keys=new_keys)
                self._keys[movers] = new_keys
                self._keys_f[movers] = new_keys
                if np.abs(new_keys).max() >= 2**53:
                    self._mirror_exact = False
                self.stats.cell_transfers += int(crossed.sum())

    def insert(self, positions: np.ndarray) -> np.ndarray:
        """Add new nodes; returns their freshly allocated ids."""
        pts = as_points(positions)
        pts = self._validate_positions(pts, len(pts))
        count = len(pts)
        if count == 0:
            return _EMPTY_IDS.copy()
        self._ensure_capacity(count)
        new_ids = np.arange(self._size, self._size + count, dtype=np.int64)
        self._points[new_ids] = pts
        self._alive[new_ids] = True
        self._dirty[new_ids] = True
        self._size += count
        self._n_alive += count
        if self.backend == "grid":
            keys = self._checked_keys(pts)
            self._keys[new_ids] = keys
            self._keys_f[new_ids] = keys
            if np.abs(keys).max() >= 2**53:
                self._mirror_exact = False
            self._regroup_cells(drop=_EMPTY_IDS, add=new_ids, add_keys=keys)
        else:
            self._delta[new_ids] = True
        self.stats.inserts += count
        self._invalidate_compact()
        if self.backend == "kdtree":
            self._maybe_rebuild()
        return new_ids

    def delete(self, ids: Iterable[int]) -> None:
        """Remove alive nodes (their ids are never reused)."""
        ids = self._validate_ids(ids)
        if ids.size == 0:
            return
        if self.backend == "grid":
            self._regroup_cells(drop=ids, add=_EMPTY_IDS)
        else:
            self._exclude[ids] = True
            self._delta[ids] = False
        self._alive[ids] = False
        self._dirty[ids] = False
        self._n_alive -= len(ids)
        self._deleted_buffer.extend(int(i) for i in ids)
        self.stats.deletes += len(ids)
        self._invalidate_compact()
        if self.backend == "kdtree":
            self._maybe_rebuild()

    def consume_dirty(self) -> Tuple[np.ndarray, np.ndarray]:
        """Ids touched since the last call: ``(moved_or_inserted_alive, deleted)``.

        The topology layer uses this to confine edge repair to the
        neighbourhoods that can actually have changed.
        """
        dirty = np.nonzero(self._dirty[: self._size])[0].astype(np.int64)
        deleted = np.asarray(sorted(set(self._deleted_buffer)), dtype=np.int64)
        self._dirty[: self._size] = False
        self._deleted_buffer = []
        return dirty, deleted

    def _invalidate_compact(self) -> None:
        if self._compact is not None:
            invalidate_neighbour_cache(self._compact)
        self._compact = None
        self._active_ids = None

    def _ensure_capacity(self, extra: int) -> None:
        need = self._size + extra
        capacity = len(self._points)
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity)
        for name in ("_points", "_alive", "_dirty", "_keys", "_keys_f", "_exclude", "_delta"):
            old = getattr(self, name, None)
            if old is None:
                continue
            shape = (new_capacity,) + old.shape[1:]
            grown = np.zeros(shape, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)
        if self.backend == "grid":
            # The bulk view adopted the old coordinate buffer by reference.
            self._bulk_view = None

    # -- grid backend -----------------------------------------------------------
    def _checked_keys(self, pts: np.ndarray) -> np.ndarray:
        """Exact cell keys with the static backend's overflow guard."""
        quot = pts / self.cell_size
        keys_f = np.floor(quot)
        if len(pts) and (not np.isfinite(keys_f).all() or np.abs(keys_f).max() >= 2**62):
            raise ValueError(
                "point spread spans too many grid cells for this cell_size; "
                "use a larger cell_size or the 'kdtree' backend"
            )
        return self._geom._exact_keys(pts, quot=quot)

    def _regroup_cells(
        self,
        drop: np.ndarray,
        add: np.ndarray,
        add_keys: np.ndarray | None = None,
    ) -> None:
        """Re-derive membership of only the cells touched by one batch update.

        ``drop`` ids leave their *current* cells (``self._keys`` must still
        hold their old keys), ``add`` ids enter the cells of ``add_keys``
        (default: their current keys).  All touched cells are pooled,
        re-grouped with one lexsort and written back; cells outside the
        touched set are never visited — the dirty-cell patch.
        """
        if add_keys is None:
            add_keys = self._keys[add]
        parts = []
        if len(drop):
            parts.append(self._keys[drop])
        if len(add):
            parts.append(add_keys)
        if not parts:
            return
        self._bulk_view = None  # cell membership is about to change
        pooled_keys = np.concatenate(parts)
        # Row-dedup via lexsort + boundary diff (cheaper than unique(axis=0),
        # which hashes a void view of every row).
        order = np.lexsort((pooled_keys[:, 1], pooled_keys[:, 0]))
        pooled_keys = pooled_keys[order]
        if len(pooled_keys) > 1:
            keep = np.concatenate([[True], np.diff(pooled_keys, axis=0).any(axis=1)])
            touched = pooled_keys[keep]
        else:
            touched = pooled_keys
        cells = list(zip(touched[:, 0].tolist(), touched[:, 1].tolist()))
        pools = [self._cells.pop(cell, None) for cell in cells]
        members = np.concatenate([p for p in pools if p is not None] or [_EMPTY_IDS])
        if len(drop):
            members = members[~np.isin(members, drop)]
        all_ids = np.concatenate([members, add]) if len(add) else members
        all_keys = (
            np.concatenate([self._keys[members], add_keys]) if len(add) else self._keys[members]
        )
        if len(all_ids):
            order = np.lexsort((all_ids, all_keys[:, 1], all_keys[:, 0]))
            all_ids = all_ids[order]
            all_keys = all_keys[order]
            breaks = np.nonzero(np.diff(all_keys, axis=0).any(axis=1))[0] + 1
            starts = np.concatenate([[0], breaks])
            ends = np.concatenate([breaks, [len(all_ids)]])
            kx = all_keys[:, 0].tolist()
            ky = all_keys[:, 1].tolist()
            store = self._cells
            # Cell arrays are views into one sorted batch buffer: they are
            # only ever read or wholesale replaced, never mutated in place.
            for start, end in zip(starts.tolist(), ends.tolist()):
                store[(kx[start], ky[start])] = all_ids[start:end]

    def _grid_query_one(self, center: np.ndarray, radius: float) -> np.ndarray:
        coords = center.reshape(1, 2)
        key = self._geom._exact_keys(coords)
        reach = self._geom._reach(radius)
        lo, hi = self._geom._boundary_slack(coords, key, radius)
        cx, cy = int(key[0, 0]), int(key[0, 1])
        parts = []
        for dx in range(-reach - int(lo[0, 0]), reach + int(hi[0, 0]) + 1):
            row = cx + dx
            for dy in range(-reach - int(lo[0, 1]), reach + int(hi[0, 1]) + 1):
                arr = self._cells.get((row, cy + dy))
                if arr is not None:
                    parts.append(arr)
        if not parts:
            return _EMPTY_IDS.copy()
        cand = np.concatenate(parts)
        keep = within_ball(self._points[cand], center, radius)
        return np.sort(cand[keep])

    def _grid_view(self) -> GridIndex | None:
        """The patched cell table wrapped as a static :class:`GridIndex`.

        Built lazily from the live cell map (one pass over the occupied
        cells) and kept until the next membership change, so a stream of bulk
        queries between updates pays the flattening once.  ``None`` signals
        the packed-key span overflowed and callers must loop the scalar query
        (the same regime in which a static build would refuse the backend).
        """
        if self._bulk_view is None:
            keys = np.fromiter(
                (coord for cell in self._cells for coord in cell), dtype=np.int64
            ).reshape(-1, 2)
            try:
                self._bulk_view = GridIndex.from_cell_table(
                    self._points, self.cell_size, keys, list(self._cells.values())
                )
            except ValueError:
                self._bulk_view = False
        return self._bulk_view or None

    # -- kdtree backend ---------------------------------------------------------
    def _rebuild_base(self) -> None:
        self._base_ids = self.ids().copy()
        self._base = KDTreeIndex(self._points[self._base_ids])
        self._exclude[: self._size] = False
        self._delta[: self._size] = False
        self._delta_ids_cache: np.ndarray | None = _EMPTY_IDS
        self._delta_index_cache: KDTreeIndex | None = None

    def _maybe_rebuild(self) -> None:
        self._delta_ids_cache = None
        self._delta_index_cache = None
        pending = int(np.count_nonzero(self._exclude[: self._size])) + int(
            np.count_nonzero(self._delta[: self._size])
        )
        if pending > self.rebuild_threshold * max(1, self._n_alive):
            self._rebuild_base()
            self.stats.rebuilds += 1

    def _delta_ids(self) -> np.ndarray:
        if self._delta_ids_cache is None:
            self._delta_ids_cache = np.nonzero(self._delta[: self._size])[0].astype(np.int64)
        return self._delta_ids_cache

    def _delta_index(self) -> KDTreeIndex:
        """A (small) exact index over just the diverged points, for bulk merges."""
        if self._delta_index_cache is None:
            self._delta_index_cache = KDTreeIndex(self._points[self._delta_ids()])
        return self._delta_index_cache

    def _kdtree_query_one(self, center: np.ndarray, radius: float) -> np.ndarray:
        hits = self._base.query_radius(center, radius)
        ids = self._base_ids[hits]
        if ids.size:
            ids = ids[~self._exclude[ids]]
        delta_ids = self._delta_ids()
        if delta_ids.size:
            inside = within_ball(self._points[delta_ids], center, radius)
            ids = np.concatenate([ids, delta_ids[inside]])
        return np.sort(ids)

    # -- queries (id space) -----------------------------------------------------
    def _query_one(self, center: np.ndarray, radius: float) -> np.ndarray:
        if self.backend == "grid":
            return self._grid_query_one(center, radius)
        return self._kdtree_query_one(center, radius)

    def query_radius(self, center: Iterable[float], radius: float) -> np.ndarray:
        """Ids of alive nodes within the exact closed ball, ascending."""
        _check_radius(radius)
        center = np.asarray(tuple(center), dtype=np.float64)
        return self._query_one(center, radius)

    def _grid_query_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """One-gather bulk answers off the patched cell table (id space)."""
        view = self._grid_view()
        if view is None:  # packed-key span overflow: scalar fallback
            return [self._grid_query_one(c, radius) for c in centers]
        cand_queries, cand_ids = view._matches(centers, radius)
        # Same combined-key grouping kernel as the static bulk path, with node
        # ids (bounded by the id high-water mark) as the minor key.
        return kernel_ops.pair_candidates(
            cand_queries, cand_ids, len(centers), self._size
        )

    def _kdtree_query_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Bulk base-tree pass with the divergence buffer merged per center."""
        base_lists = self._base.query_radius_many(centers, radius)
        delta_ids = self._delta_ids()
        delta_lists = (
            self._delta_index().query_radius_many(centers, radius) if delta_ids.size else None
        )
        any_excluded = bool(self._exclude[: self._size].any())
        out = []
        for i, hits in enumerate(base_lists):
            ids = self._base_ids[hits]
            if any_excluded and ids.size:
                ids = ids[~self._exclude[ids]]
            if delta_lists is not None and len(delta_lists[i]):
                ids = np.concatenate([ids, delta_ids[delta_lists[i]]])
            out.append(np.sort(ids))
        return out

    def query_radius_many(self, centers: np.ndarray, radius: float) -> List[np.ndarray]:
        """Per-center id arrays, vectorised (byte-identical to the scalar loop).

        The grid backend runs the static one-gather ``_matches`` scheme over a
        :meth:`~repro.geometry.index.GridIndex.from_cell_table` view of its
        patched cell table; the KD-tree backend answers the base tree in one
        parallel bulk pass and merges the divergence buffer through a second
        index over just the diverged points.
        """
        _check_radius(radius)
        centers = as_points(centers)
        if len(centers) == 0:
            return []
        if self._n_alive == 0:
            return [_EMPTY_IDS.copy() for _ in range(len(centers))]
        if self.backend == "grid":
            return self._grid_query_many(centers, radius)
        return self._kdtree_query_many(centers, radius)

    def count_radius_many(self, centers: np.ndarray, radius: float) -> np.ndarray:
        """Per-center neighbour counts (vectorised; equal to scalar-query lengths)."""
        _check_radius(radius)
        centers = as_points(centers)
        if len(centers) == 0 or self._n_alive == 0:
            return np.zeros(len(centers), dtype=np.int64)
        if self.backend == "grid":
            view = self._grid_view()
            if view is None:
                return np.fromiter(
                    (len(self._grid_query_one(c, radius)) for c in centers),
                    dtype=np.int64,
                    count=len(centers),
                )
            cand_queries, _ = view._matches(centers, radius)
            return kernel_ops.count_in_balls(cand_queries, len(centers))
        if self._exclude[: self._size].any():
            # Exclusion masking needs the materialised base hits anyway.
            return np.fromiter(
                (len(a) for a in self._kdtree_query_many(centers, radius)),
                dtype=np.int64,
                count=len(centers),
            )
        counts = self._base.count_radius_many(centers, radius)
        if self._delta_ids().size:
            counts = counts + self._delta_index().count_radius_many(centers, radius)
        return counts

    def neighbours_of(self, node_id: int, radius: float) -> np.ndarray:
        """Ids within ``radius`` of the alive node ``node_id`` (self excluded)."""
        result = self.query_radius(self.position_of(node_id), radius)
        return result[result != int(node_id)]

    def neighbour_lists(self, radius: float, include_self: bool = False) -> List[np.ndarray]:
        """Neighbour id array per alive node, in :meth:`ids` order (one bulk query)."""
        _check_radius(radius)
        ids = self.ids()
        if len(ids) == 0:
            return []
        lists = self.query_radius_many(self._points[ids], radius)
        if include_self:
            return lists
        return [arr[arr != node_id] for node_id, arr in zip(ids.tolist(), lists)]

    def query_pairs(self, radius: float) -> np.ndarray:
        """All alive id pairs within ``radius`` (``i < j``, lexicographic)."""
        _check_radius(radius)
        ids = self.ids()
        if len(ids) == 0:
            return np.zeros((0, 2), dtype=np.int64)
        lists = self.query_radius_many(self._points[ids], radius)
        return _pairs_from_lists(lists, sources=ids)
