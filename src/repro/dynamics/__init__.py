"""repro.dynamics — mobility, churn and incremental topology maintenance.

The static library answers "what does a frozen Poisson deployment look
like?"; this subsystem answers "what happens to it over time?".

* :mod:`repro.dynamics.mobility` — seeded, vectorised mobility models
  (random waypoint, billiard random walk, drift field).
* :mod:`repro.dynamics.churn` — failure/arrival processes (i.i.d. lifetimes,
  spatially correlated outage discs) and heterogeneous radio radii.
* :mod:`repro.dynamics.incremental` — :class:`DynamicSpatialIndex`: point
  moves/inserts/deletes answered without full rebuilds (dirty-cell patching
  on the grid backend, a rebuild-threshold divergence buffer on the KD-tree
  backend), byte-identical to a from-scratch ``build_index``; bulk queries
  are vectorised straight off the patched structures.
* :mod:`repro.dynamics.topology` — per-timestep UDG/kNN edge *diffs*
  (:class:`TopologyTracker`; :class:`KnnTopologyTracker` bounds each
  update's affected set by the current kNN radii), so downstream metrics and
  the :class:`repro.distributed.repair.DistributedRepairEngine` consume
  deltas instead of recomputing graphs.
* :mod:`repro.dynamics.workloads` — the registered scenario workloads
  ``M01`` (mobility), ``M02`` (mobile distributed build through the repair
  engine), ``F01`` (failure), ``H01`` (heterogeneous radii).
* :mod:`repro.dynamics.bench` — the registered maintenance benchmarks
  ``S02`` (incremental vs rebuild-per-step) and ``S03`` (repair fast paths
  vs their naive baselines).
"""

from repro.dynamics.churn import CorrelatedOutage, LifetimeChurn, heterogeneous_radii
from repro.dynamics.incremental import DynamicIndexStats, DynamicSpatialIndex
from repro.dynamics.mobility import Drift, MobilityModel, RandomWalk, RandomWaypoint, reflect_into
from repro.dynamics.topology import EdgeDiff, KnnTopologyTracker, TopologyTracker

__all__ = [
    "CorrelatedOutage",
    "Drift",
    "DynamicIndexStats",
    "DynamicSpatialIndex",
    "EdgeDiff",
    "KnnTopologyTracker",
    "LifetimeChurn",
    "MobilityModel",
    "RandomWalk",
    "RandomWaypoint",
    "TopologyTracker",
    "heterogeneous_radii",
    "reflect_into",
]
