"""S02 — incremental index maintenance vs rebuild-per-step.

The mobility hot path maintains a queryable spatial index while every node
moves a little each timestep.  The naive approach rebuilds
:func:`repro.geometry.index.build_index` from scratch every step and pays the
full argsort/unique grouping each time; the
:class:`~repro.dynamics.incremental.DynamicSpatialIndex` instead compares new
cell keys against the old ones and patches only the cells of boundary-crossing
nodes.  This experiment times both on the same precomputed trajectory, checks
the incremental result is byte-identical to the final rebuild, and also times
the *churn* regime (a few failures/arrivals per step on otherwise static
nodes) where patching touches O(changes) instead of O(n) and the gap widens
to an order of magnitude.

Registered through :mod:`repro.runner` like S01: rows carry wall-clock
timings and are not byte-stable across recomputations; the ``results_agree``
headline is deterministic.  An identical parameter set is a runner cache hit
(``--force`` re-measures).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.analysis.spatial_bench import _best_of
from repro.dynamics.incremental import DynamicSpatialIndex
from repro.dynamics.mobility import reflect_into
from repro.geometry.index import build_index
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.runner.registry import register

__all__ = ["experiment_s02_incremental_maintenance"]


@register("S02")
def experiment_s02_incremental_maintenance(
    n_points: int = 20000,
    n_steps: int = 15,
    step_fraction: float = 0.005,
    radius: float = 1.0,
    intensity: float = 2.0,
    churn_count: int = 20,
    repeats: int = 3,
    seed: int = 304,
) -> ExperimentResult:
    """Incremental maintenance vs rebuild-per-step on the mobility hot path.

    Parameters
    ----------
    n_points:
        Target expected deployment size (window side is
        ``sqrt(n_points / intensity)``).
    n_steps:
        Timeline steps per timed run.
    step_fraction:
        Per-step per-axis rms displacement as a fraction of ``radius``
        (fine-grained timesteps: a node covers one radio range in roughly
        ``1 / step_fraction`` steps).
    radius:
        Query radius / grid cell size.
    intensity:
        Deployment intensity (controls the occupancy per grid cell).
    churn_count:
        Nodes failing + arriving per step in the churn arm.
    repeats:
        Timing repetitions per arm (best-of).
    seed:
        RNG seed for the deployment and the trajectory.
    """
    if n_points < 1 or n_steps < 1:
        raise ValueError("n_points and n_steps must be positive")
    if radius <= 0 or intensity <= 0:
        raise ValueError("radius and intensity must be positive")
    if step_fraction <= 0:
        raise ValueError("step_fraction must be positive")
    if churn_count < 1:
        raise ValueError("churn_count must be positive")
    rng = np.random.default_rng(seed)
    side = float(np.sqrt(n_points / intensity))
    window = Rect(0, 0, side, side)
    pts = poisson_points(window, intensity, rng)
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="S02",
            title="Incremental index maintenance vs rebuild-per-step",
            paper_reference="dynamics hot path (mobility maintenance)",
            rows=[],
            headline={
                "mobility_speedup_vs_rebuild": None,
                "churn_speedup_vs_rebuild": None,
                "results_agree": None,
            },
            notes=["degenerate realisation (< 2 points); nothing to measure"],
        )

    # Precompute the trajectory outside the timed region so both arms replay
    # the exact same positions.
    trajectory = [pts]
    for _ in range(n_steps):
        displaced = trajectory[-1] + rng.normal(0, step_fraction * radius, size=pts.shape)
        trajectory.append(reflect_into(displaced, window))

    # Both strategies pay one index build at deployment time; the quantity
    # under comparison is the *per-step maintenance* cost, so the incremental
    # arm's clock starts after its (un-timed) initial build — exactly as the
    # rebuild arm's clock covers only the per-step builds.
    def run_incremental() -> tuple[float, DynamicSpatialIndex]:
        dyn = DynamicSpatialIndex(pts, radius=radius, backend="grid")
        started = time.perf_counter()
        for positions in trajectory[1:]:
            dyn.move(dyn.ids(), positions)
        return time.perf_counter() - started, dyn

    def run_rebuild() -> None:
        for positions in trajectory[1:]:
            build_index(positions, radius=radius, backend="grid")

    mobility_inc_s = min(run_incremental()[0] for _ in range(max(1, repeats)))
    mobility_full_s = _best_of(repeats, run_rebuild)

    # Agreement check: the final incremental state answers exactly like a
    # from-scratch rebuild over the final positions (deterministic headline).
    dyn = run_incremental()[1]
    rebuilt = build_index(dyn.positions(), radius=radius, backend="grid")
    ids = dyn.ids()
    results_agree = all(
        np.array_equal(a, ids[b])
        for a, b in zip(dyn.neighbour_lists(radius), rebuilt.neighbour_lists(radius))
    )

    # Churn regime: static survivors, churn_count deletes + arrivals per step.
    # The plan (delete rows in alive order + arrival positions) is drawn once
    # outside the clocks; both arms replay the identical schedule.
    churn_plan = []
    alive_preview = len(pts)
    for _ in range(n_steps):
        k = min(churn_count, max(alive_preview - 2, 0))
        rows = rng.choice(alive_preview, size=k, replace=False) if k else np.zeros(0, np.int64)
        churn_plan.append((rows, window.sample_uniform(churn_count, rng)))
        alive_preview += churn_count - k

    def run_churn_incremental() -> float:
        dyn = DynamicSpatialIndex(pts, radius=radius, backend="grid")
        started = time.perf_counter()
        for rows, arrivals in churn_plan:
            if len(rows):
                dyn.delete(dyn.ids()[rows])
            dyn.insert(arrivals)
        return time.perf_counter() - started

    def run_churn_rebuild() -> None:
        positions = pts
        for rows, arrivals in churn_plan:
            if len(rows):
                keep = np.ones(len(positions), dtype=bool)
                keep[rows] = False
                positions = positions[keep]
            positions = np.vstack([positions, arrivals])
            build_index(positions, radius=radius, backend="grid")

    churn_inc_s = min(run_churn_incremental() for _ in range(max(1, repeats)))
    churn_full_s = _best_of(repeats, run_churn_rebuild)

    def per_step(total_s: float) -> float:
        return round(total_s * 1e3 / n_steps, 4)

    rows: List[Dict] = [
        {"regime": "mobility", "arm": "incremental", "per_step_ms": per_step(mobility_inc_s)},
        {"regime": "mobility", "arm": "rebuild", "per_step_ms": per_step(mobility_full_s)},
        {"regime": "churn", "arm": "incremental", "per_step_ms": per_step(churn_inc_s)},
        {"regime": "churn", "arm": "rebuild", "per_step_ms": per_step(churn_full_s)},
    ]
    return ExperimentResult(
        experiment_id="S02",
        title="Incremental index maintenance vs rebuild-per-step",
        paper_reference="dynamics hot path (mobility maintenance)",
        rows=rows,
        headline={
            "mobility_speedup_vs_rebuild": (
                round(mobility_full_s / mobility_inc_s, 2) if mobility_inc_s > 0 else None
            ),
            "churn_speedup_vs_rebuild": (
                round(churn_full_s / churn_inc_s, 2) if churn_inc_s > 0 else None
            ),
            "results_agree": bool(results_agree),
        },
        notes=[
            "Wall-clock rows vary between reruns; only results_agree is deterministic. "
            "Clocks cover per-step maintenance only — both strategies pay one un-timed "
            "index build at deployment time.  The incremental advantage shrinks as "
            "step_fraction grows (more boundary crossings to patch) and full rebuilds "
            "win past a few percent of the radius per step.",
        ],
    )
