"""S02/S03 — the dynamics hot paths against their naive baselines.

**S02** (:func:`experiment_s02_incremental_maintenance`): maintaining a
queryable spatial index while nodes move.  The naive approach rebuilds
:func:`repro.geometry.index.build_index` from scratch every step; the
:class:`~repro.dynamics.incremental.DynamicSpatialIndex` patches only the
cells of boundary-crossing nodes.  Timed on the same precomputed trajectory,
with a byte-identity check against the final rebuild, in both the mobility
and the churn regime.

**S03** (:func:`experiment_s03_repair_fast_path`): the PR-4 repair fast
paths.  Arm one times the vectorised
:meth:`~repro.dynamics.incremental.DynamicSpatialIndex.query_radius_many`
against the pre-optimisation scalar-per-center loop on a *dirty* index, on
both backends, asserting byte equality.  Arm two times the diff-driven
:class:`~repro.distributed.repair.DistributedRepairEngine` against a full
:func:`~repro.distributed.construct.distributed_build` per step under sparse
motion (~1% of nodes per step), asserting the spliced result equals the
from-scratch build.

Both register through :mod:`repro.runner` like S01: rows carry wall-clock
timings and are not byte-stable across recomputations; the agreement
headlines are deterministic.  An identical parameter set is a runner cache
hit (``--force`` re-measures).
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.analysis.experiments import ExperimentResult
from repro.analysis.spatial_bench import _best_of
from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.construct import distributed_build
from repro.distributed.repair import DistributedRepairEngine
from repro.dynamics.incremental import DynamicSpatialIndex
from repro.dynamics.mobility import reflect_into
from repro.geometry.index import BACKENDS, build_index
from repro.geometry.poisson import poisson_points
from repro.geometry.primitives import Rect
from repro.runner.registry import register

__all__ = [
    "experiment_s02_incremental_maintenance",
    "experiment_s03_repair_fast_path",
]


@register("S02")
def experiment_s02_incremental_maintenance(
    n_points: int = 20000,
    n_steps: int = 15,
    step_fraction: float = 0.005,
    radius: float = 1.0,
    intensity: float = 2.0,
    churn_count: int = 20,
    repeats: int = 3,
    seed: int = 304,
) -> ExperimentResult:
    """Incremental maintenance vs rebuild-per-step on the mobility hot path.

    Parameters
    ----------
    n_points:
        Target expected deployment size (window side is
        ``sqrt(n_points / intensity)``).
    n_steps:
        Timeline steps per timed run.
    step_fraction:
        Per-step per-axis rms displacement as a fraction of ``radius``
        (fine-grained timesteps: a node covers one radio range in roughly
        ``1 / step_fraction`` steps).
    radius:
        Query radius / grid cell size.
    intensity:
        Deployment intensity (controls the occupancy per grid cell).
    churn_count:
        Nodes failing + arriving per step in the churn arm.
    repeats:
        Timing repetitions per arm (best-of).
    seed:
        RNG seed for the deployment and the trajectory.
    """
    if n_points < 1 or n_steps < 1:
        raise ValueError("n_points and n_steps must be positive")
    if radius <= 0 or intensity <= 0:
        raise ValueError("radius and intensity must be positive")
    if step_fraction <= 0:
        raise ValueError("step_fraction must be positive")
    if churn_count < 1:
        raise ValueError("churn_count must be positive")
    rng = np.random.default_rng(seed)
    side = float(np.sqrt(n_points / intensity))
    window = Rect(0, 0, side, side)
    pts = poisson_points(window, intensity, rng)
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="S02",
            title="Incremental index maintenance vs rebuild-per-step",
            paper_reference="dynamics hot path (mobility maintenance)",
            rows=[],
            headline={
                "mobility_speedup_vs_rebuild": None,
                "churn_speedup_vs_rebuild": None,
                "results_agree": None,
            },
            notes=["degenerate realisation (< 2 points); nothing to measure"],
        )

    # Precompute the trajectory outside the timed region so both arms replay
    # the exact same positions.
    trajectory = [pts]
    for _ in range(n_steps):
        displaced = trajectory[-1] + rng.normal(0, step_fraction * radius, size=pts.shape)
        trajectory.append(reflect_into(displaced, window))

    # Both strategies pay one index build at deployment time; the quantity
    # under comparison is the *per-step maintenance* cost, so the incremental
    # arm's clock starts after its (un-timed) initial build — exactly as the
    # rebuild arm's clock covers only the per-step builds.
    def run_incremental() -> tuple[float, DynamicSpatialIndex]:
        dyn = DynamicSpatialIndex(pts, radius=radius, backend="grid")
        started = time.perf_counter()
        for positions in trajectory[1:]:
            dyn.move(dyn.ids(), positions)
        return time.perf_counter() - started, dyn

    def run_rebuild() -> None:
        for positions in trajectory[1:]:
            build_index(positions, radius=radius, backend="grid")

    mobility_inc_s = min(run_incremental()[0] for _ in range(max(1, repeats)))
    mobility_full_s = _best_of(repeats, run_rebuild)

    # Agreement check: the final incremental state answers exactly like a
    # from-scratch rebuild over the final positions (deterministic headline).
    dyn = run_incremental()[1]
    rebuilt = build_index(dyn.positions(), radius=radius, backend="grid")
    ids = dyn.ids()
    results_agree = all(
        np.array_equal(a, ids[b])
        for a, b in zip(dyn.neighbour_lists(radius), rebuilt.neighbour_lists(radius))
    )

    # Churn regime: static survivors, churn_count deletes + arrivals per step.
    # The plan (delete rows in alive order + arrival positions) is drawn once
    # outside the clocks; both arms replay the identical schedule.
    churn_plan = []
    alive_preview = len(pts)
    for _ in range(n_steps):
        k = min(churn_count, max(alive_preview - 2, 0))
        rows = rng.choice(alive_preview, size=k, replace=False) if k else np.zeros(0, np.int64)
        churn_plan.append((rows, window.sample_uniform(churn_count, rng)))
        alive_preview += churn_count - k

    def run_churn_incremental() -> float:
        dyn = DynamicSpatialIndex(pts, radius=radius, backend="grid")
        started = time.perf_counter()
        for rows, arrivals in churn_plan:
            if len(rows):
                dyn.delete(dyn.ids()[rows])
            dyn.insert(arrivals)
        return time.perf_counter() - started

    def run_churn_rebuild() -> None:
        positions = pts
        for rows, arrivals in churn_plan:
            if len(rows):
                keep = np.ones(len(positions), dtype=bool)
                keep[rows] = False
                positions = positions[keep]
            positions = np.vstack([positions, arrivals])
            build_index(positions, radius=radius, backend="grid")

    churn_inc_s = min(run_churn_incremental() for _ in range(max(1, repeats)))
    churn_full_s = _best_of(repeats, run_churn_rebuild)

    def per_step(total_s: float) -> float:
        return round(total_s * 1e3 / n_steps, 4)

    rows: List[Dict] = [
        {"regime": "mobility", "arm": "incremental", "per_step_ms": per_step(mobility_inc_s)},
        {"regime": "mobility", "arm": "rebuild", "per_step_ms": per_step(mobility_full_s)},
        {"regime": "churn", "arm": "incremental", "per_step_ms": per_step(churn_inc_s)},
        {"regime": "churn", "arm": "rebuild", "per_step_ms": per_step(churn_full_s)},
    ]
    return ExperimentResult(
        experiment_id="S02",
        title="Incremental index maintenance vs rebuild-per-step",
        paper_reference="dynamics hot path (mobility maintenance)",
        rows=rows,
        headline={
            "mobility_speedup_vs_rebuild": (
                round(mobility_full_s / mobility_inc_s, 2) if mobility_inc_s > 0 else None
            ),
            "churn_speedup_vs_rebuild": (
                round(churn_full_s / churn_inc_s, 2) if churn_inc_s > 0 else None
            ),
            "results_agree": bool(results_agree),
        },
        notes=[
            "Wall-clock rows vary between reruns; only results_agree is deterministic. "
            "Clocks cover per-step maintenance only — both strategies pay one un-timed "
            "index build at deployment time.  The incremental advantage shrinks as "
            "step_fraction grows (more boundary crossings to patch) and full rebuilds "
            "win past a few percent of the radius per step.",
        ],
    )


@register("S03")
def experiment_s03_repair_fast_path(
    n_points: int = 20000,
    n_centers: int = 100000,
    n_steps: int = 5,
    move_fraction: float = 0.01,
    move_scale: float = 0.2,
    churn_count: int = 20,
    radius: float = 1.0,
    intensity: float = 2.0,
    repeats: int = 2,
    seed: int = 305,
) -> ExperimentResult:
    """Repair fast paths: vectorised dynamic bulk queries + diff-driven rebuild.

    Parameters
    ----------
    n_points:
        Target expected deployment size (window side is
        ``sqrt(n_points / intensity)``).
    n_centers:
        Query centers of the bulk arm.
    n_steps:
        Sparse-motion steps of the repair arm.
    move_fraction:
        Fraction of nodes moving per repair-arm step (the sparse-motion
        regime the repair engine is built for).
    move_scale:
        Per-axis displacement rms of one move, as a fraction of ``radius``.
    churn_count:
        Deletes + inserts applied before the bulk arm so the measured index
        is genuinely dirty (patched grid cells, populated kd-tree divergence
        buffer).
    radius:
        Query radius / UDG connection radius scale of the bulk arm.
    intensity:
        Poisson deployment intensity.
    repeats:
        Timing repetitions per arm (best-of).
    seed:
        RNG seed for the deployment, the churn and the move plan.
    """
    if n_points < 1 or n_centers < 1 or n_steps < 1:
        raise ValueError("n_points, n_centers and n_steps must be positive")
    if radius <= 0 or intensity <= 0:
        raise ValueError("radius and intensity must be positive")
    if not 0 < move_fraction <= 1 or move_scale <= 0:
        raise ValueError("move_fraction must lie in (0, 1] and move_scale be positive")
    if churn_count < 0:
        raise ValueError("churn_count must be non-negative")
    rng = np.random.default_rng(seed)
    side = float(np.sqrt(n_points / intensity))
    window = Rect(0, 0, side, side)
    pts = poisson_points(window, intensity, rng)
    null_headline = {
        "bulk_speedup_grid": None,
        "bulk_speedup_kdtree": None,
        "repair_speedup_vs_rebuild": None,
        "bulk_results_agree": None,
        "repair_results_agree": None,
    }
    if len(pts) < 2:
        return ExperimentResult(
            experiment_id="S03",
            title="Repair fast path: diff-driven rebuild + vectorised bulk queries",
            paper_reference="dynamics hot path (PR-4 incremental repair)",
            rows=[],
            headline=null_headline,
            notes=["degenerate realisation (< 2 points); nothing to measure"],
        )

    rows: List[Dict] = []
    headline: Dict = dict(null_headline)

    # -- Arm one: bulk dynamic queries vs the scalar loop, on a dirty index ----
    centers = window.sample_uniform(n_centers, rng)
    n_move = max(1, int(round(move_fraction * len(pts))))
    churn = min(churn_count, max(len(pts) - 2, 0))
    bulk_agree = True
    for backend in BACKENDS:
        dyn = DynamicSpatialIndex(pts, radius=radius, backend=backend)
        movers = np.sort(rng.choice(dyn.ids(), size=n_move, replace=False))
        displaced = dyn.id_positions()[movers] + rng.normal(
            0, move_scale * radius, size=(n_move, 2)
        )
        dyn.move(movers, reflect_into(displaced, window))
        if churn:
            dyn.delete(np.sort(rng.choice(dyn.ids(), size=churn, replace=False)))
            dyn.insert(window.sample_uniform(churn, rng))
        holder: Dict[str, List[np.ndarray]] = {}

        def run_bulk() -> None:
            holder["bulk"] = dyn.query_radius_many(centers, radius)

        def run_scalar() -> None:
            holder["scalar"] = [dyn.query_radius(c, radius) for c in centers]

        bulk_s = _best_of(repeats, run_bulk)
        scalar_s = _best_of(repeats, run_scalar)
        agree = all(np.array_equal(a, b) for a, b in zip(holder["bulk"], holder["scalar"]))
        bulk_agree = bulk_agree and agree
        speedup = scalar_s / bulk_s if bulk_s > 0 else float("inf")
        rows.append(
            {
                "arm": "bulk",
                "backend": backend,
                "n_centers": len(centers),
                "bulk_ms": round(bulk_s * 1e3, 3),
                "scalar_ms": round(scalar_s * 1e3, 3),
                "speedup": round(speedup, 2),
            }
        )
        headline[f"bulk_speedup_{backend}"] = round(speedup, 1)
    headline["bulk_results_agree"] = bool(bulk_agree)

    # -- Arm two: repair engine vs distributed_build per step, sparse motion ----
    spec = UDGTileSpec.default()
    plan = []
    for _ in range(n_steps):
        movers = np.sort(rng.choice(len(pts), size=n_move, replace=False))
        plan.append((movers, rng.normal(0, move_scale * radius, size=(n_move, 2))))

    def run_repair() -> tuple[float, DistributedRepairEngine]:
        dyn = DynamicSpatialIndex(pts, radius=spec.connection_radius)
        engine = DistributedRepairEngine(dyn, spec, window)
        started = time.perf_counter()
        for movers, displacement in plan:
            target = reflect_into(dyn.id_positions()[movers] + displacement, window)
            dyn.move(movers, target)
            engine.update()
        return time.perf_counter() - started, engine

    def run_rebuild() -> None:
        positions = pts
        for movers, displacement in plan:
            positions = positions.copy()
            positions[movers] = reflect_into(positions[movers] + displacement, window)
            distributed_build(positions, spec, window)

    # run_repair is deterministic (fixed deployment and plan), so the last
    # timed run's final state doubles as the one the agreement check reads.
    repair_s = float("inf")
    for _ in range(max(1, repeats)):
        elapsed, engine = run_repair()
        repair_s = min(repair_s, elapsed)
    rebuild_s = _best_of(repeats, run_rebuild)
    rows.append({"arm": "repair", "strategy": "repair", "per_step_ms": round(repair_s * 1e3 / n_steps, 3)})
    rows.append({"arm": "repair", "strategy": "rebuild", "per_step_ms": round(rebuild_s * 1e3 / n_steps, 3)})
    headline["repair_speedup_vs_rebuild"] = (
        round(rebuild_s / repair_s, 1) if repair_s > 0 else None
    )

    # Agreement (deterministic): the spliced result equals a from-scratch
    # build over the final positions, id-mapped.
    headline["repair_results_agree"] = bool(engine.matches_rebuild())

    return ExperimentResult(
        experiment_id="S03",
        title="Repair fast path: diff-driven rebuild + vectorised bulk queries",
        paper_reference="dynamics hot path (PR-4 incremental repair)",
        rows=rows,
        headline=headline,
        notes=[
            "Wall-clock rows vary between reruns; only the agreement headlines are "
            "deterministic.  The bulk arm queries a dirty index (post moves + churn) "
            "so both backends exercise their patched structures; the repair arm's "
            "clock covers index moves + engine repair vs a full distributed_build "
            "per step under sparse motion.  The repair advantage grows with "
            "deployment size and shrinks as move_fraction approaches 1.",
        ],
    )
