"""Deterministic, seeded mobility models stepping all nodes vectorised.

Three classic sensor/ad-hoc mobility models, all with the same surface: a
model owns the current ``(n, 2)`` position array and :meth:`step` advances
every node at once with numpy operations (no per-node Python loop).  All
randomness flows through the generator handed to the constructor, so a model
seeded the same way replays the same trajectory — the property the dynamics
workloads rely on for byte-identical runner cache rows.

* :class:`RandomWaypoint` — every node picks a uniform target in the window,
  travels towards it at its own (uniformly drawn) speed, optionally pauses on
  arrival, then picks a new target.  The standard MANET benchmark model.
* :class:`RandomWalk` — billiard motion: constant per-node speed along a
  heading that reflects specularly off the window walls, with an optional
  Gaussian heading perturbation per step (``turn_std``).
* :class:`Drift` — a parameterised constant drift field (wind/current) plus
  per-step Gaussian jitter, reflected at the window boundary.  With zero
  jitter it is a deterministic translation flow.

Reflection is implemented by folding the infinite mirrored tiling back into
the window (:func:`reflect_into`), so arbitrarily large per-step
displacements stay inside the window in one vectorised pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geometry.primitives import Rect, as_points
from repro.rng import resolve_rng

__all__ = ["MobilityModel", "RandomWaypoint", "RandomWalk", "Drift", "reflect_into"]


def _fold(coords: np.ndarray, lo: float, hi: float) -> Tuple[np.ndarray, np.ndarray]:
    """Fold 1-D coordinates into ``[lo, hi]`` by specular reflection.

    Returns the folded coordinates and the parity of the number of
    reflections applied (odd parity flips the direction of travel along this
    axis — what a billiard heading update needs).
    """
    width = hi - lo
    if width <= 0:
        return np.full_like(coords, lo), np.zeros(coords.shape, dtype=bool)
    t = (coords - lo) / width
    k = np.floor(t)
    frac = t - k
    odd = (k.astype(np.int64) % 2) != 0
    folded = lo + np.where(odd, 1.0 - frac, frac) * width
    # Guard against the half-ULP overshoot of the arithmetic above.
    return np.clip(folded, lo, hi), odd


def reflect_into(points: np.ndarray, window: Rect) -> np.ndarray:
    """Reflect points into ``window`` (specular, handles arbitrary overshoot)."""
    pts = as_points(points).copy()
    pts[:, 0], _ = _fold(pts[:, 0], window.xmin, window.xmax)
    pts[:, 1], _ = _fold(pts[:, 1], window.ymin, window.ymax)
    return pts


class MobilityModel:
    """Common surface of the mobility models.

    Subclasses own ``self._positions`` and implement :meth:`_advance`.
    :meth:`step` validates the time step, advances the state and returns a
    *copy* of the new positions (callers hand it to
    :meth:`~repro.dynamics.incremental.DynamicSpatialIndex.move`, which keeps
    its own storage).
    """

    def __init__(self, positions: np.ndarray, window: Rect) -> None:
        pts = as_points(positions)
        if not np.isfinite(pts).all():
            raise ValueError("initial positions must be finite")
        if not window.contains(pts).all():
            raise ValueError("initial positions must lie inside the window")
        self.window = window
        self._positions = pts.copy()

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def positions(self) -> np.ndarray:
        """Current positions (copy; the model's state cannot be mutated through it)."""
        return self._positions.copy()

    def step(self, dt: float = 1.0) -> np.ndarray:
        """Advance every node by ``dt`` time units; returns the new positions."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        if len(self._positions):
            self._advance(float(dt))
        return self._positions.copy()

    def _advance(self, dt: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class RandomWaypoint(MobilityModel):
    """Random-waypoint mobility: travel to a uniform target, pause, repeat.

    Parameters
    ----------
    positions:
        ``(n, 2)`` initial node positions inside ``window``.
    window:
        Movement area; targets are drawn uniformly from it.
    speed_range:
        ``(v_min, v_max)``; each leg's speed is drawn uniformly from it.
    pause_time:
        Dwell time at a reached target before the next leg starts.
    rng:
        Generator supplying all randomness (targets, speeds).

    A node that reaches its target inside a step stops there for the rest of
    the step (the residual travel budget is dropped); the classic formulation
    does the same and it keeps the update one vectorised pass.
    """

    def __init__(
        self,
        positions: np.ndarray,
        window: Rect,
        speed_range: Tuple[float, float] = (0.05, 0.2),
        pause_time: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(positions, window)
        v_min, v_max = float(speed_range[0]), float(speed_range[1])
        if not (0 <= v_min <= v_max) or v_max <= 0:
            raise ValueError("speed_range must satisfy 0 <= v_min <= v_max, v_max > 0")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.speed_range = (v_min, v_max)
        self.pause_time = float(pause_time)
        self._rng = resolve_rng(rng)
        n = len(self._positions)
        self._targets = window.sample_uniform(n, self._rng)
        self._speeds = self._rng.uniform(v_min, v_max, size=n)
        self._pause_left = np.zeros(n, dtype=np.float64)

    def _advance(self, dt: float) -> None:
        pos, targets = self._positions, self._targets
        moving = self._pause_left <= 0
        self._pause_left = np.maximum(self._pause_left - dt, 0.0)

        delta = targets - pos
        dist = np.hypot(delta[:, 0], delta[:, 1])
        travel = np.where(moving, self._speeds * dt, 0.0)
        arrived = travel >= dist
        frac = np.where(arrived | (dist == 0), 1.0, travel / np.maximum(dist, 1e-300))
        pos += frac[:, None] * delta

        renew = arrived & moving
        if renew.any():
            idx = np.nonzero(renew)[0]
            pos[idx] = targets[idx]  # land exactly on the target
            self._targets[idx] = self.window.sample_uniform(len(idx), self._rng)
            self._speeds[idx] = self._rng.uniform(*self.speed_range, size=len(idx))
            self._pause_left[idx] = self.pause_time


class RandomWalk(MobilityModel):
    """Billiard random walk: constant speed, specular wall reflection.

    Parameters
    ----------
    positions:
        ``(n, 2)`` initial node positions inside ``window``.
    window:
        Movement area; nodes bounce off its walls.
    speed:
        Common speed (distance per unit time); a per-node ``(n,)`` array is
        also accepted.
    turn_std:
        Standard deviation (radians) of the Gaussian heading perturbation
        applied each step; 0 gives pure deterministic billiard motion after
        the initial headings are drawn.
    rng:
        Generator supplying initial headings and turn noise.
    """

    def __init__(
        self,
        positions: np.ndarray,
        window: Rect,
        speed: float | np.ndarray = 0.1,
        turn_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(positions, window)
        n = len(self._positions)
        speeds = np.broadcast_to(np.asarray(speed, dtype=np.float64), (n,)).copy()
        if (speeds < 0).any():
            raise ValueError("speed must be non-negative")
        if turn_std < 0:
            raise ValueError("turn_std must be non-negative")
        self._speeds = speeds
        self.turn_std = float(turn_std)
        self._rng = resolve_rng(rng)
        self._headings = self._rng.uniform(0.0, 2 * np.pi, size=n)

    def _advance(self, dt: float) -> None:
        if self.turn_std > 0:
            self._headings += self._rng.normal(0.0, self.turn_std, size=len(self._headings))
        step = self._speeds * dt
        raw_x = self._positions[:, 0] + step * np.cos(self._headings)
        raw_y = self._positions[:, 1] + step * np.sin(self._headings)
        self._positions[:, 0], flip_x = _fold(raw_x, self.window.xmin, self.window.xmax)
        self._positions[:, 1], flip_y = _fold(raw_y, self.window.ymin, self.window.ymax)
        # A reflection in x mirrors cos(θ), one in y mirrors sin(θ).
        cos_h = np.where(flip_x, -np.cos(self._headings), np.cos(self._headings))
        sin_h = np.where(flip_y, -np.sin(self._headings), np.sin(self._headings))
        self._headings = np.arctan2(sin_h, cos_h)


class Drift(MobilityModel):
    """Constant drift field plus Gaussian jitter, reflected at the boundary.

    Parameters
    ----------
    positions:
        ``(n, 2)`` initial node positions inside ``window``.
    window:
        Movement area.
    drift:
        ``(dx, dy)`` displacement per unit time applied to every node (the
        wind/current term).
    jitter_std:
        Per-axis standard deviation of the Brownian term per unit time; the
        applied noise scales with ``sqrt(dt)`` as Brownian motion does.
    rng:
        Generator supplying the jitter.
    """

    def __init__(
        self,
        positions: np.ndarray,
        window: Rect,
        drift: Tuple[float, float] = (0.05, 0.0),
        jitter_std: float = 0.02,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(positions, window)
        self.drift = np.asarray(drift, dtype=np.float64).reshape(2)
        if jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")
        self.jitter_std = float(jitter_std)
        self._rng = resolve_rng(rng)

    def _advance(self, dt: float) -> None:
        moved = self._positions + self.drift * dt
        if self.jitter_std > 0:
            moved += self._rng.normal(
                0.0, self.jitter_std * np.sqrt(dt), size=self._positions.shape
            )
        self._positions = reflect_into(moved, self.window)
