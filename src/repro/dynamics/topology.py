"""Incremental topology maintenance: per-step edge diffs instead of rebuilds.

:class:`TopologyTracker` keeps the unit-disk edge set of a
:class:`~repro.dynamics.incremental.DynamicSpatialIndex` current by repairing
only the neighbourhoods that can have changed.  UDG edges have perfect
locality — an edge can appear or disappear only if one of its endpoints
moved, arrived or failed — so each :meth:`~TopologyTracker.update` queries
just the nodes the index marked dirty since the last step, leaves every edge
between two untouched nodes alone, and returns the resulting
:class:`EdgeDiff`.  Downstream consumers (graph metrics, the distributed
construction's repair path) can then process deltas instead of recomputing
the whole graph; :meth:`TopologyTracker.graph` materialises a
:class:`~repro.graphs.base.GeometricGraph` when a consumer does want the full
picture.

:class:`KnnTopologyTracker` provides the same diff surface for the ``NN(2,
k)`` graph.  kNN edges do *not* have the unit disk's fixed-radius locality,
but each node's *current* kNN radius (the distance to its k-th neighbour)
bounds how far away a change can matter: a node's neighbour list can only
change when a changed point's old or new position lands inside that ball.
The tracker exploits exactly that — it re-queries only the affected nodes
and splices the undirected edge set through directed-support bookkeeping,
falling back to recompute-and-diff when the step touched so many nodes that
the locality bound would visit everything anyway.

Edges travel in stable *node-id* space (pairs ``(i, j)``, ``i < j``,
lexicographic), encoded internally as single int64 keys so diffs are set
operations on sorted arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.dynamics.incremental import DynamicSpatialIndex
from repro.geometry.index import build_index
from repro.graphs.base import GeometricGraph
from repro.graphs.knn import _knn_cell_size, knn_edges, knn_neighbour_indices

__all__ = ["EdgeDiff", "TopologyTracker", "KnnTopologyTracker"]

#: Edge keys pack two ids into one int64: ``i * 2**31 + j``.  2³¹ nodes is far
#: beyond anything the simulator holds in memory; the bound is checked.
_ENC = np.int64(2**31)

_EMPTY_KEYS = np.zeros(0, dtype=np.int64)
_EMPTY_EDGES = np.zeros((0, 2), dtype=np.int64)


def _encode(pairs: np.ndarray) -> np.ndarray:
    """Sorted int64 keys of an ``(m, 2)`` id-pair array (``i < j`` rows)."""
    if len(pairs) == 0:
        return _EMPTY_KEYS.copy()
    if pairs.max() >= _ENC:
        raise ValueError("node ids past 2**31 cannot be edge-encoded")
    return np.sort(pairs[:, 0] * _ENC + pairs[:, 1])


def _decode(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_encode`; sorted keys give lexicographic rows."""
    if len(keys) == 0:
        return _EMPTY_EDGES.copy()
    return np.column_stack([keys // _ENC, keys % _ENC])


@dataclass(frozen=True)
class EdgeDiff:
    """Edge delta of one timestep, in stable node-id space.

    ``added`` / ``removed`` are ``(m, 2)`` id pairs, smaller id first, rows
    lexicographic — the same canonical shape the graph builders emit.
    """

    added: np.ndarray
    removed: np.ndarray

    @property
    def n_added(self) -> int:
        return len(self.added)

    @property
    def n_removed(self) -> int:
        return len(self.removed)

    @property
    def churn(self) -> int:
        """Total number of edge changes this step."""
        return self.n_added + self.n_removed


class TopologyTracker:
    """Maintains the UDG edge set of a dynamic index through local repairs.

    Parameters
    ----------
    index:
        The dynamic index whose alive nodes define the graph.  The tracker
        takes over the index's dirty-id stream (it calls
        :meth:`~repro.dynamics.incremental.DynamicSpatialIndex.consume_dirty`),
        so use one tracker per index.
    radius:
        UDG connection radius.  Mirroring
        :func:`repro.graphs.udg.udg_edges`, ``radius == 0`` yields an edgeless
        graph (a zero-range radio connects nothing) rather than the raw
        index layer's coincident-point matching.
    """

    def __init__(self, index: DynamicSpatialIndex, radius: float) -> None:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.index = index
        self.radius = float(radius)
        index.consume_dirty()  # updates before tracking started are not diffs
        self._edge_keys = (
            _encode(index.query_pairs(self.radius)) if self.radius > 0 else _EMPTY_KEYS.copy()
        )

    @property
    def n_edges(self) -> int:
        return len(self._edge_keys)

    def edges(self) -> np.ndarray:
        """Current ``(m, 2)`` edge array (id space, lexicographic)."""
        return _decode(self._edge_keys)

    def update(
        self, dirty: np.ndarray | None = None, deleted: np.ndarray | None = None
    ) -> EdgeDiff:
        """Repair the edge set after index updates; returns what changed.

        Only edges incident to a dirty (moved/inserted) or deleted node are
        re-examined: the dirty nodes' closed balls are re-queried with one
        bulk query and every stale incident edge is dropped.  Edges between
        two untouched nodes are provably unchanged and never visited.

        With no arguments the tracker consumes the index's own dirty stream;
        pass an already-consumed ``(dirty, deleted)`` pair explicitly when
        another consumer (e.g. the
        :class:`~repro.distributed.repair.DistributedRepairEngine`) shares
        the same stream.  Passing only one of the two is rejected — it would
        silently drop the other half of the diff.
        """
        if (dirty is None) != (deleted is None):
            raise ValueError(
                "pass both dirty and deleted (one consumed stream), or neither"
            )
        if dirty is None:
            dirty, deleted = self.index.consume_dirty()
        dirty = np.asarray(dirty, dtype=np.int64).reshape(-1)
        deleted = np.asarray(deleted, dtype=np.int64).reshape(-1)
        if dirty.size == 0 and deleted.size == 0:
            return EdgeDiff(_EMPTY_EDGES.copy(), _EMPTY_EDGES.copy())
        alive = self.index.ids()
        if alive.size and alive[-1] >= _ENC:
            raise ValueError("node ids past 2**31 cannot be edge-encoded")
        affected = np.union1d(dirty, deleted)
        current = self._edge_keys
        incident = np.isin(current // _ENC, affected) | np.isin(current % _ENC, affected)

        parts = []
        if self.radius > 0 and dirty.size:
            centers = self.index.id_positions()[dirty]
            for node_id, nbrs in zip(
                dirty.tolist(), self.index.query_radius_many(centers, self.radius)
            ):
                nbrs = nbrs[nbrs != node_id]
                if nbrs.size:
                    lo = np.minimum(nbrs, node_id)
                    hi = np.maximum(nbrs, node_id)
                    parts.append(lo * _ENC + hi)
        fresh = np.unique(np.concatenate(parts)) if parts else _EMPTY_KEYS

        added = np.setdiff1d(fresh, current, assume_unique=True)
        removed = np.setdiff1d(current[incident], fresh, assume_unique=True)
        self._edge_keys = np.union1d(current[~incident], fresh)
        return EdgeDiff(_decode(added), _decode(removed))

    def matches_recompute(self) -> bool:
        """Whether the maintained edge set equals a from-scratch recompute."""
        expected = (
            _encode(self.index.query_pairs(self.radius)) if self.radius > 0 else _EMPTY_KEYS
        )
        return np.array_equal(self._edge_keys, expected)

    def graph(self, name: str | None = None) -> GeometricGraph:
        """Materialise the current topology as a compacted :class:`GeometricGraph`.

        Node ``k`` of the returned graph is the ``k``-th alive id of the
        index (the :meth:`~repro.dynamics.incremental.DynamicSpatialIndex.ids`
        order), so metrics line up with ``index.positions()``.
        """
        ids = self.index.ids()
        edges = _decode(self._edge_keys)
        remapped = np.searchsorted(ids, edges) if len(edges) else _EMPTY_EDGES.copy()
        return GeometricGraph(
            self.index.positions().copy(),
            remapped,
            name=name or f"UDG(r={self.radius:g}, dynamic)",
        )


def _in_sorted(arr: np.ndarray, value: int) -> bool:
    """Membership probe on a sorted id array."""
    pos = int(np.searchsorted(arr, value))
    return pos < len(arr) and int(arr[pos]) == value


class KnnTopologyTracker:
    """Per-step ``NN(2, k)`` edge diffs, repaired through a kNN-radius bound.

    The undirected ``NN(2, k)`` edge {i, j} exists when either endpoint lists
    the other among its k nearest.  The tracker maintains the *directed*
    lists per node and derives the locality of each update from them: node
    ``j``'s list — the k nearest points, all within ``r_j`` = j's current
    k-th-neighbour distance — can only change when some changed point's old
    or new position lies within ``r_j`` of ``j`` (a point that stays outside
    the ball was not, and cannot become, one of the k nearest, so the point
    set within the ball, hence its k smallest distances, is untouched).
    :meth:`update` therefore:

    1. finds the affected nodes with one bulk radius query at
       ``R = max_j r_j`` around every changed position, filtered per
       candidate against its own ``r_j``,
    2. re-queries the k nearest of just those nodes against a fresh static
       index over the surviving positions (the index build is cheap C code;
       the per-node queries were the recompute bottleneck), and
    3. splices the undirected edge set: a dropped directed edge ``i → t``
       only removes {i, t} when the reverse support ``t → i`` is gone too.

    Two regimes still recompute from scratch (and count in
    ``full_recomputes``): steps that touch more than ``recompute_fraction``
    of the alive nodes (e.g. all-nodes mobility — the locality machinery
    would visit everything anyway), and steps that change the effective
    ``k`` (arrivals/failures around ``n = k + 1``, where every list changes
    length).  Exact distance ties keep the backend's own tie order, as for
    the static builder — a measure-zero divergence for continuous inputs.
    """

    def __init__(
        self,
        index: DynamicSpatialIndex,
        k: int,
        backend: str = "kdtree",
        recompute_fraction: float = 0.25,
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        if recompute_fraction <= 0:
            raise ValueError("recompute_fraction must be positive")
        self.index = index
        self.k = int(k)
        self.backend = backend
        self.recompute_fraction = float(recompute_fraction)
        #: Nodes whose directed lists were repaired / full recompute count.
        self.repaired_nodes = 0
        self.full_recomputes = 0
        index.consume_dirty()
        self._lists: Dict[int, np.ndarray] = {}  # node id → directed targets, ascending
        self._kdist: Dict[int, float] = {}  # node id → k-th-neighbour distance
        self._pos: Dict[int, Tuple[float, float]] = {}  # last-seen positions
        self._k_eff = 0
        self._edge_keys = self._rebuild_all()

    # -- full recompute ---------------------------------------------------------
    def _rebuild_all(self) -> np.ndarray:
        ids = self.index.ids()
        n = len(ids)
        self._lists, self._kdist, self._pos = {}, {}, {}
        self._k_eff = min(self.k, max(n - 1, 0))
        if n == 0:
            return _EMPTY_KEYS.copy()
        if ids[-1] >= _ENC:
            raise ValueError("node ids past 2**31 cannot be edge-encoded")
        positions = self.index.positions()
        for i, node in enumerate(ids.tolist()):
            self._pos[node] = (float(positions[i, 0]), float(positions[i, 1]))
        if self._k_eff == 0:
            for node in ids.tolist():
                self._lists[node] = _EMPTY_KEYS.copy()
                self._kdist[node] = 0.0
            return _EMPTY_KEYS.copy()
        rows = knn_neighbour_indices(positions, self.k, backend=self.backend)
        for i, node in enumerate(ids.tolist()):
            row = rows[i]
            row = row[row >= 0]
            diff = positions[row[-1]] - positions[i]
            self._kdist[node] = float(np.hypot(diff[0], diff[1]))
            self._lists[node] = np.sort(ids[row])
        src = np.repeat(np.arange(n, dtype=np.int64), rows.shape[1])
        tgt = rows.ravel()
        valid = tgt >= 0
        a, b = ids[src[valid]], ids[tgt[valid]]
        return np.unique(np.minimum(a, b) * _ENC + np.maximum(a, b))

    # -- incremental repair ------------------------------------------------------
    def _repair(self, dirty: np.ndarray, deleted: np.ndarray) -> np.ndarray:
        ids = self.index.ids()
        if ids.size and ids[-1] >= _ENC:
            raise ValueError("node ids past 2**31 cannot be edge-encoded")
        pts_by_id = self.index.id_positions()
        k_eff = self._k_eff

        changed_centers: List[Tuple[float, float]] = []
        affected: Set[int] = set()
        removed_candidates: List[Tuple[int, int]] = []  # directed (i, t) drops
        for node in deleted.tolist():
            old = self._pos.pop(node, None)
            if old is not None:
                changed_centers.append(old)
            old_list = self._lists.pop(node, None)
            self._kdist.pop(node, None)
            if old_list is not None:
                removed_candidates.extend((node, int(t)) for t in old_list.tolist())
        new_positions = pts_by_id[dirty]
        for i, node in enumerate(dirty.tolist()):
            affected.add(node)
            old = self._pos.get(node)
            if old is not None:
                changed_centers.append(old)
            current = (float(new_positions[i, 0]), float(new_positions[i, 1]))
            self._pos[node] = current
            changed_centers.append(current)

        # Affected set: every node whose current kNN ball a changed position
        # entered or left.  One bulk query at the largest ball radius, then a
        # per-candidate cut against its own radius.
        reach = max(self._kdist.values(), default=0.0)
        centers = np.asarray(changed_centers, dtype=np.float64).reshape(-1, 2)
        for center, candidates in zip(centers, self.index.query_radius_many(centers, reach)):
            if candidates.size == 0:
                continue
            offsets = pts_by_id[candidates] - center
            distances = np.hypot(offsets[:, 0], offsets[:, 1])
            radii = np.fromiter(
                (self._kdist.get(j, np.inf) for j in candidates.tolist()),
                dtype=np.float64,
                count=len(candidates),
            )
            affected.update(int(j) for j in candidates[distances <= radii].tolist())

        aff = np.fromiter(sorted(affected), dtype=np.int64, count=len(affected))
        positions = self.index.positions()
        rows = np.searchsorted(ids, aff)
        static = build_index(
            positions, backend=self.backend, cell_size=_knn_cell_size(positions, k_eff)
        )
        nearest = static.query_nearest(positions[rows], k_eff + 1)
        added_keys: Set[int] = set()
        for a_i, node in enumerate(aff.tolist()):
            row = nearest[a_i]
            row = row[row != rows[a_i]][:k_eff]
            diff = positions[row[-1]] - positions[rows[a_i]]
            targets = np.sort(ids[row])
            old_list = self._lists.get(node, _EMPTY_KEYS)
            for t in np.setdiff1d(targets, old_list, assume_unique=True).tolist():
                added_keys.add(int(min(node, t) * _ENC + max(node, t)))
            for t in np.setdiff1d(old_list, targets, assume_unique=True).tolist():
                removed_candidates.append((node, int(t)))
            self._lists[node] = targets
            self._kdist[node] = float(np.hypot(diff[0], diff[1]))
        self.repaired_nodes += len(aff)

        # A dropped directed edge only breaks the undirected edge when the
        # (post-repair) reverse support is gone too.
        removed_keys: Set[int] = set()
        for i, t in removed_candidates:
            reverse = self._lists.get(t)
            if reverse is None or not _in_sorted(reverse, i):
                removed_keys.add(int(min(i, t) * _ENC + max(i, t)))
        removed_keys -= added_keys
        fresh = self._edge_keys
        if removed_keys:
            drop = np.fromiter(sorted(removed_keys), dtype=np.int64, count=len(removed_keys))
            fresh = np.setdiff1d(fresh, drop, assume_unique=True)
        if added_keys:
            grow = np.fromiter(sorted(added_keys), dtype=np.int64, count=len(added_keys))
            fresh = np.union1d(fresh, grow)
        return fresh

    # -- diff surface ------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self._edge_keys)

    def edges(self) -> np.ndarray:
        return _decode(self._edge_keys)

    def update(
        self, dirty: np.ndarray | None = None, deleted: np.ndarray | None = None
    ) -> EdgeDiff:
        """Repair the kNN edge set and report the delta since last time.

        With no arguments the tracker consumes the index's own dirty stream;
        pass an already-consumed ``(dirty, deleted)`` pair explicitly when
        another consumer (e.g. the
        :class:`~repro.distributed.repair.DistributedRepairEngine`) shares
        the same stream — the same contract as
        :meth:`TopologyTracker.update`, so the two tracker flavours compose
        with the repair engine interchangeably.  Passing only one of the two
        is rejected; an empty diff is a true no-op (no affected-set
        bookkeeping, no repair/recompute accounting).
        """
        if (dirty is None) != (deleted is None):
            raise ValueError(
                "pass both dirty and deleted (one consumed stream), or neither"
            )
        if dirty is None:
            dirty, deleted = self.index.consume_dirty()
        dirty = np.asarray(dirty, dtype=np.int64).reshape(-1)
        deleted = np.asarray(deleted, dtype=np.int64).reshape(-1)
        if dirty.size == 0 and deleted.size == 0:
            return EdgeDiff(_EMPTY_EDGES.copy(), _EMPTY_EDGES.copy())
        old_keys = self._edge_keys
        n_alive = len(self.index)
        k_eff = min(self.k, max(n_alive - 1, 0))
        n_changed = int(dirty.size + deleted.size)
        if k_eff != self._k_eff or k_eff == 0 or (
            n_changed > self.recompute_fraction * max(1, n_alive)
        ):
            self.full_recomputes += 1
            fresh = self._rebuild_all()
        else:
            fresh = self._repair(dirty, deleted)
        added = np.setdiff1d(fresh, old_keys, assume_unique=True)
        removed = np.setdiff1d(old_keys, fresh, assume_unique=True)
        self._edge_keys = fresh
        return EdgeDiff(_decode(added), _decode(removed))

    def matches_recompute(self) -> bool:
        """Whether the maintained edge set equals a from-scratch recompute."""
        ids = self.index.ids()
        if len(ids) == 0:
            return len(self._edge_keys) == 0
        compact_edges = knn_edges(self.index.positions(), self.k, backend=self.backend)
        expected = _encode(ids[compact_edges]) if len(compact_edges) else _EMPTY_KEYS
        return np.array_equal(self._edge_keys, expected)
