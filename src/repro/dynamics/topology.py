"""Incremental topology maintenance: per-step edge diffs instead of rebuilds.

:class:`TopologyTracker` keeps the unit-disk edge set of a
:class:`~repro.dynamics.incremental.DynamicSpatialIndex` current by repairing
only the neighbourhoods that can have changed.  UDG edges have perfect
locality — an edge can appear or disappear only if one of its endpoints
moved, arrived or failed — so each :meth:`~TopologyTracker.update` queries
just the nodes the index marked dirty since the last step, leaves every edge
between two untouched nodes alone, and returns the resulting
:class:`EdgeDiff`.  Downstream consumers (graph metrics, the distributed
construction's repair path) can then process deltas instead of recomputing
the whole graph; :meth:`TopologyTracker.graph` materialises a
:class:`~repro.graphs.base.GeometricGraph` when a consumer does want the full
picture.

:class:`KnnTopologyTracker` provides the same diff surface for the ``NN(2,
k)`` graph.  kNN edges do *not* have the bounded locality of the unit disk
(one arrival can displace the k-th neighbour of nodes at any distance within
the current kNN radius), so it recomputes and diffs — the honest baseline the
UDG tracker is incremental against.

Edges travel in stable *node-id* space (pairs ``(i, j)``, ``i < j``,
lexicographic), encoded internally as single int64 keys so diffs are set
operations on sorted arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.incremental import DynamicSpatialIndex
from repro.graphs.base import GeometricGraph
from repro.graphs.knn import knn_edges

__all__ = ["EdgeDiff", "TopologyTracker", "KnnTopologyTracker"]

#: Edge keys pack two ids into one int64: ``i * 2**31 + j``.  2³¹ nodes is far
#: beyond anything the simulator holds in memory; the bound is checked.
_ENC = np.int64(2**31)

_EMPTY_KEYS = np.zeros(0, dtype=np.int64)
_EMPTY_EDGES = np.zeros((0, 2), dtype=np.int64)


def _encode(pairs: np.ndarray) -> np.ndarray:
    """Sorted int64 keys of an ``(m, 2)`` id-pair array (``i < j`` rows)."""
    if len(pairs) == 0:
        return _EMPTY_KEYS.copy()
    if pairs.max() >= _ENC:
        raise ValueError("node ids past 2**31 cannot be edge-encoded")
    return np.sort(pairs[:, 0] * _ENC + pairs[:, 1])


def _decode(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_encode`; sorted keys give lexicographic rows."""
    if len(keys) == 0:
        return _EMPTY_EDGES.copy()
    return np.column_stack([keys // _ENC, keys % _ENC])


@dataclass(frozen=True)
class EdgeDiff:
    """Edge delta of one timestep, in stable node-id space.

    ``added`` / ``removed`` are ``(m, 2)`` id pairs, smaller id first, rows
    lexicographic — the same canonical shape the graph builders emit.
    """

    added: np.ndarray
    removed: np.ndarray

    @property
    def n_added(self) -> int:
        return len(self.added)

    @property
    def n_removed(self) -> int:
        return len(self.removed)

    @property
    def churn(self) -> int:
        """Total number of edge changes this step."""
        return self.n_added + self.n_removed


class TopologyTracker:
    """Maintains the UDG edge set of a dynamic index through local repairs.

    Parameters
    ----------
    index:
        The dynamic index whose alive nodes define the graph.  The tracker
        takes over the index's dirty-id stream (it calls
        :meth:`~repro.dynamics.incremental.DynamicSpatialIndex.consume_dirty`),
        so use one tracker per index.
    radius:
        UDG connection radius.  Mirroring
        :func:`repro.graphs.udg.udg_edges`, ``radius == 0`` yields an edgeless
        graph (a zero-range radio connects nothing) rather than the raw
        index layer's coincident-point matching.
    """

    def __init__(self, index: DynamicSpatialIndex, radius: float) -> None:
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.index = index
        self.radius = float(radius)
        index.consume_dirty()  # updates before tracking started are not diffs
        self._edge_keys = (
            _encode(index.query_pairs(self.radius)) if self.radius > 0 else _EMPTY_KEYS.copy()
        )

    @property
    def n_edges(self) -> int:
        return len(self._edge_keys)

    def edges(self) -> np.ndarray:
        """Current ``(m, 2)`` edge array (id space, lexicographic)."""
        return _decode(self._edge_keys)

    def update(self) -> EdgeDiff:
        """Repair the edge set after index updates; returns what changed.

        Only edges incident to a dirty (moved/inserted) or deleted node are
        re-examined: the dirty nodes' closed balls are re-queried and every
        stale incident edge is dropped.  Edges between two untouched nodes
        are provably unchanged and never visited.
        """
        dirty, deleted = self.index.consume_dirty()
        if dirty.size == 0 and deleted.size == 0:
            return EdgeDiff(_EMPTY_EDGES.copy(), _EMPTY_EDGES.copy())
        alive = self.index.ids()
        if alive.size and alive[-1] >= _ENC:
            raise ValueError("node ids past 2**31 cannot be edge-encoded")
        affected = np.union1d(dirty, deleted)
        current = self._edge_keys
        incident = np.isin(current // _ENC, affected) | np.isin(current % _ENC, affected)

        parts = []
        if self.radius > 0:
            for node_id in dirty.tolist():
                nbrs = self.index.neighbours_of(node_id, self.radius)
                if nbrs.size:
                    lo = np.minimum(nbrs, node_id)
                    hi = np.maximum(nbrs, node_id)
                    parts.append(lo * _ENC + hi)
        fresh = np.unique(np.concatenate(parts)) if parts else _EMPTY_KEYS

        added = np.setdiff1d(fresh, current, assume_unique=True)
        removed = np.setdiff1d(current[incident], fresh, assume_unique=True)
        self._edge_keys = np.union1d(current[~incident], fresh)
        return EdgeDiff(_decode(added), _decode(removed))

    def matches_recompute(self) -> bool:
        """Whether the maintained edge set equals a from-scratch recompute."""
        expected = (
            _encode(self.index.query_pairs(self.radius)) if self.radius > 0 else _EMPTY_KEYS
        )
        return np.array_equal(self._edge_keys, expected)

    def graph(self, name: str | None = None) -> GeometricGraph:
        """Materialise the current topology as a compacted :class:`GeometricGraph`.

        Node ``k`` of the returned graph is the ``k``-th alive id of the
        index (the :meth:`~repro.dynamics.incremental.DynamicSpatialIndex.ids`
        order), so metrics line up with ``index.positions()``.
        """
        ids = self.index.ids()
        edges = _decode(self._edge_keys)
        remapped = np.searchsorted(ids, edges) if len(edges) else _EMPTY_EDGES.copy()
        return GeometricGraph(
            self.index.positions().copy(),
            remapped,
            name=name or f"UDG(r={self.radius:g}, dynamic)",
        )


class KnnTopologyTracker:
    """Per-step ``NN(2, k)`` edge diffs by recompute-and-diff.

    The kNN graph lacks the unit disk's bounded edge locality, so this
    tracker recomputes the edge set each :meth:`update` and reports the
    delta — same :class:`EdgeDiff` surface, honest about the cost.
    """

    def __init__(self, index: DynamicSpatialIndex, k: int, backend: str = "kdtree") -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.index = index
        self.k = int(k)
        self.backend = backend
        index.consume_dirty()
        self._edge_keys = self._recompute()

    def _recompute(self) -> np.ndarray:
        ids = self.index.ids()
        if len(ids) == 0:
            return _EMPTY_KEYS.copy()
        compact_edges = knn_edges(self.index.positions(), self.k, backend=self.backend)
        return _encode(ids[compact_edges]) if len(compact_edges) else _EMPTY_KEYS.copy()

    @property
    def n_edges(self) -> int:
        return len(self._edge_keys)

    def edges(self) -> np.ndarray:
        return _decode(self._edge_keys)

    def update(self) -> EdgeDiff:
        """Recompute the kNN edge set and report the delta since last time."""
        self.index.consume_dirty()  # no locality to exploit; diff covers everything
        fresh = self._recompute()
        added = np.setdiff1d(fresh, self._edge_keys, assume_unique=True)
        removed = np.setdiff1d(self._edge_keys, fresh, assume_unique=True)
        self._edge_keys = fresh
        return EdgeDiff(_decode(added), _decode(removed))
