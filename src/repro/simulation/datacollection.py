"""Convergecast data collection over an arbitrary topology.

The canonical WASN workload: every source node periodically reports a reading
to a sink over multihop routes.  The simulation routes every report along the
minimum-energy path of the supplied topology (Dijkstra with ``d^β`` edge
weights — the Li–Wan–Wang power metric), charges transmit/receive energy per
hop to the forwarding nodes, and reports delivery counts, energy per
delivered packet, load concentration and a simple lifetime estimate.

Running the same workload once over the full base graph and once over the
SENS overlay is how experiment E08 and the ``data_collection`` example turn
the paper's power-stretch statement into an end-to-end energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import dijkstra

from repro.graphs.base import GeometricGraph
from repro.simulation.energy import EnergyLedger, EnergyModel

__all__ = ["ConvergecastResult", "run_convergecast"]


@dataclass
class ConvergecastResult:
    """Outcome of a convergecast run.

    Attributes
    ----------
    delivered: number of reports that reached the sink.
    undeliverable: number of reports from nodes disconnected from the sink.
    total_energy: total energy drawn across all nodes (joules).
    energy_per_delivered: ``total_energy / delivered`` (``inf`` if nothing arrived).
    max_node_energy: largest energy drawn by a single node (the hotspot).
    mean_hops: mean hop count of delivered reports.
    rounds_to_first_death: estimated number of reporting rounds until the most
        loaded node exhausts the ledger's initial energy (∞ when no energy was
        drawn).
    ledger: the per-node energy ledger (for detailed analysis).
    """

    delivered: int
    undeliverable: int
    total_energy: float
    energy_per_delivered: float
    max_node_energy: float
    mean_hops: float
    rounds_to_first_death: float
    ledger: EnergyLedger


def _power_weighted_paths(
    graph: GeometricGraph, sink: int, beta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Predecessor array and reachability mask of min-power paths towards ``sink``."""
    n = graph.n_nodes
    if graph.n_edges == 0:
        dist = np.full(n, np.inf)
        dist[sink] = 0.0
        return np.full(n, -9999, dtype=np.int64), dist
    weights = graph.edge_lengths() ** beta
    rows = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    cols = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
    data = np.concatenate([weights, weights])
    adj = coo_matrix((data, (rows, cols)), shape=(n, n))
    dist, predecessors = dijkstra(
        adj, directed=False, indices=sink, return_predecessors=True
    )
    return predecessors.astype(np.int64), dist


def run_convergecast(
    graph: GeometricGraph,
    sink: int,
    sources: Sequence[int] | None = None,
    rounds: int = 1,
    bits_per_report: float = 2000.0,
    energy_model: EnergyModel | None = None,
    initial_energy: float = 0.5,
) -> ConvergecastResult:
    """Simulate ``rounds`` of convergecast reporting towards ``sink``.

    Parameters
    ----------
    graph:
        The communication topology (SENS overlay or the full base graph).
    sink:
        Node index of the data sink.
    sources:
        Reporting nodes (default: every node except the sink).
    rounds:
        Number of reporting rounds; every source sends one report per round.
    bits_per_report:
        Payload size per report.
    energy_model:
        Radio energy model (defaults to :class:`EnergyModel` defaults).
    initial_energy:
        Battery per node used for the lifetime estimate.
    """
    if not 0 <= sink < graph.n_nodes:
        raise ValueError("sink must be a node of the graph")
    if rounds < 1:
        raise ValueError("rounds must be positive")
    model = energy_model or EnergyModel()
    ledger = EnergyLedger(graph.n_nodes, initial_energy=initial_energy)
    if sources is None:
        sources = [i for i in range(graph.n_nodes) if i != sink]

    predecessors, dist = _power_weighted_paths(graph, sink, model.beta)
    pts = graph.points

    delivered = 0
    undeliverable = 0
    hop_counts: list[int] = []
    for _ in range(rounds):
        for src in sources:
            src = int(src)
            if src == sink:
                continue
            if not np.isfinite(dist[src]):
                undeliverable += 1
                continue
            # Walk the predecessor chain from source to sink, charging each hop.
            curr = src
            hops = 0
            while curr != sink:
                nxt = int(predecessors[curr])
                if nxt < 0:
                    undeliverable += 1
                    break
                d = float(np.linalg.norm(pts[curr] - pts[nxt]))
                ledger.charge(curr, model.tx_cost(bits_per_report, d))
                ledger.charge(nxt, model.rx_cost(bits_per_report))
                curr = nxt
                hops += 1
            else:
                delivered += 1
                hop_counts.append(hops)

    total = ledger.total_consumed
    max_node = float(ledger.consumed.max()) if graph.n_nodes else 0.0
    per_round_max = max_node / rounds if rounds else 0.0
    return ConvergecastResult(
        delivered=delivered,
        undeliverable=undeliverable,
        total_energy=total,
        energy_per_delivered=total / delivered if delivered else float("inf"),
        max_node_energy=max_node,
        mean_hops=float(np.mean(hop_counts)) if hop_counts else 0.0,
        rounds_to_first_death=(initial_energy / per_round_max) if per_round_max > 0 else float("inf"),
        ledger=ledger,
    )
