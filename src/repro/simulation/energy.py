"""Radio energy model and per-node energy accounting.

The model is the standard first-order radio model used across the WASN
literature the paper cites (Karl & Willig): transmitting ``b`` bits over
distance ``d`` costs ``b·(e_elec + e_amp·d^β)`` and receiving ``b`` bits costs
``b·e_elec``, with the path-loss exponent β between 2 and 5 (the same β as in
the Li–Wan–Wang power-stretch lemma, which is what ties the simulation back
to the paper's power-efficiency claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EnergyModel", "EnergyLedger"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit radio energy model.

    Attributes
    ----------
    e_elec:
        Electronics energy per bit (transmit and receive), in joules/bit.
    e_amp:
        Amplifier energy per bit per ``metre^beta``.
    beta:
        Path-loss exponent (2 ≤ β ≤ 5).
    """

    e_elec: float = 50e-9
    e_amp: float = 100e-12
    beta: float = 2.0

    def __post_init__(self) -> None:
        if self.e_elec < 0 or self.e_amp < 0:
            raise ValueError("energy coefficients must be non-negative")
        if not 2.0 <= self.beta <= 5.0:
            raise ValueError("beta must lie in [2, 5]")

    def tx_cost(self, bits: float, distance: float) -> float:
        """Energy to transmit ``bits`` over ``distance``."""
        if bits < 0 or distance < 0:
            raise ValueError("bits and distance must be non-negative")
        return bits * (self.e_elec + self.e_amp * distance**self.beta)

    def rx_cost(self, bits: float) -> float:
        """Energy to receive ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.e_elec

    def hop_cost(self, bits: float, distance: float) -> float:
        """Total (transmit + receive) energy of forwarding ``bits`` over one hop."""
        return self.tx_cost(bits, distance) + self.rx_cost(bits)


@dataclass
class EnergyLedger:
    """Per-node battery accounting.

    Attributes
    ----------
    initial_energy:
        Starting battery of every node (joules).
    consumed:
        Energy drawn by each node so far.
    """

    n_nodes: int
    initial_energy: float = 0.5
    consumed: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        if self.initial_energy <= 0:
            raise ValueError("initial_energy must be positive")
        self.consumed = np.zeros(self.n_nodes, dtype=np.float64)

    def charge(self, node: int, amount: float) -> None:
        """Draw ``amount`` joules from ``node`` (no-op guard against negatives)."""
        if amount < 0:
            raise ValueError("cannot charge a negative amount")
        self.consumed[node] += amount

    def remaining(self) -> np.ndarray:
        """Remaining battery per node (can be negative if a node over-spent)."""
        return self.initial_energy - self.consumed

    def alive_mask(self) -> np.ndarray:
        """Nodes whose battery is still positive."""
        return self.remaining() > 0

    @property
    def total_consumed(self) -> float:
        return float(self.consumed.sum())

    @property
    def n_dead(self) -> int:
        return int(np.sum(~self.alive_mask()))

    def most_loaded(self) -> int:
        """Node that has consumed the most energy (the first to die under uniform load)."""
        if self.n_nodes == 0:
            raise ValueError("ledger has no nodes")
        return int(np.argmax(self.consumed))
