"""A minimal discrete-event engine.

The workloads in this package are round/event driven; the engine is a plain
priority queue of timestamped events with deterministic tie-breaking (FIFO
within equal timestamps), which is all they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
import itertools
from typing import Any, Callable, Iterator

__all__ = ["SimulationEvent", "EventQueue"]


@dataclass(order=True, frozen=True)
class SimulationEvent:
    """One scheduled event.

    Ordering is by ``(time, sequence)`` so that events scheduled earlier at
    the same timestamp fire first.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Priority queue of :class:`SimulationEvent` with a simulation clock."""

    def __init__(self) -> None:
        self._heap: list[SimulationEvent] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self.processed: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, kind: str, payload: Any = None) -> SimulationEvent:
        """Schedule an event ``delay`` time units from the current clock."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = SimulationEvent(self.now + delay, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> SimulationEvent:
        """Schedule an event at an absolute time (not before the current clock)."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        event = SimulationEvent(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> SimulationEvent:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise IndexError("event queue is empty")
        event = heapq.heappop(self._heap)
        self.now = event.time
        self.processed += 1
        return event

    def run(
        self,
        handler: Callable[[SimulationEvent, "EventQueue"], None],
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Drain the queue through ``handler``; returns the number of events processed.

        ``until`` stops the run once the clock passes that time; ``max_events``
        caps the number of processed events (safety valve for tests).
        """
        processed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            event = self.pop()
            handler(event, self)
            processed += 1
        return processed

    def drain(self) -> Iterator[SimulationEvent]:
        """Iterate over remaining events in time order (advances the clock)."""
        while self._heap:
            yield self.pop()
