"""A minimal discrete-event engine.

The workloads in this package are round/event driven; the engine is a plain
priority queue of timestamped events with deterministic tie-breaking (FIFO
within equal timestamps), which is all they need.

Stepping goes through the kernel layer: :meth:`EventQueue.run` and
:meth:`EventQueue.drain` sort the pending batch once with
:func:`repro.kernels.ops.step_events` (one vectorised ``(time, sequence)``
lexsort) instead of paying a ``heappop`` — ``O(log n)`` dataclass
comparisons each — per event.  Because ``(time, sequence)`` is a *total*
order (sequence numbers are unique), the batch order is byte-identical to
the heap's pop order; events scheduled mid-run land in the side heap and
are merged back by a head-to-head comparison per pop, so handlers that
schedule follow-up events see exactly the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
import itertools
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.kernels import ops as kernel_ops

__all__ = ["SimulationEvent", "EventQueue"]


@dataclass(order=True, frozen=True)
class SimulationEvent:
    """One scheduled event.

    Ordering is by ``(time, sequence)`` so that events scheduled earlier at
    the same timestamp fire first.
    """

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


#: Re-sort threshold: when a handler has pushed this many events into the
#: side heap during a batch run, fold them into the sorted batch in one
#: kernel call instead of paying a merge comparison per pop.
_RESORT_THRESHOLD = 64


class EventQueue:
    """Priority queue of :class:`SimulationEvent` with a simulation clock."""

    def __init__(self) -> None:
        self._heap: list[SimulationEvent] = []
        # Kernel-sorted batch consumed front-to-first via _batch_pos; always
        # ascending (time, sequence).  pop() merges it with the side heap.
        self._batch: list[SimulationEvent] = []
        self._batch_pos: int = 0
        self._counter = itertools.count()
        self.now: float = 0.0
        self.processed: int = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._batch) - self._batch_pos

    def schedule(self, delay: float, kind: str, payload: Any = None) -> SimulationEvent:
        """Schedule an event ``delay`` time units from the current clock."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = SimulationEvent(self.now + delay, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> SimulationEvent:
        """Schedule an event at an absolute time (not before the current clock)."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        event = SimulationEvent(time, next(self._counter), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at_many(
        self, times: Sequence[float], kind: str, payload: Any = None
    ) -> None:
        """Bulk :meth:`schedule_at`: one validation pass, one heapify.

        Sequence numbers are assigned in ``times`` order, so the call is
        byte-equivalent to a ``schedule_at`` loop (workloads pre-scheduling
        their whole horizon use this to skip per-event heap pushes).
        """
        times_arr = np.asarray(times, dtype=np.float64)
        if times_arr.size == 0:
            return
        if bool((times_arr < self.now).any()):
            raise ValueError("cannot schedule into the past")
        self._heap.extend(
            SimulationEvent(float(t), next(self._counter), kind, payload)
            for t in times_arr.tolist()
        )
        heapq.heapify(self._heap)

    def _batch_head(self) -> SimulationEvent | None:
        if self._batch_pos < len(self._batch):
            return self._batch[self._batch_pos]
        return None

    def _peek(self) -> SimulationEvent | None:
        """The next event under the (time, sequence) order, or ``None``."""
        head = self._batch_head()
        if self._heap and (head is None or self._heap[0] < head):
            return self._heap[0]
        return head

    def pop(self) -> SimulationEvent:
        """Remove and return the next event, advancing the clock."""
        head = self._batch_head()
        if head is not None and (not self._heap or head <= self._heap[0]):
            self._batch_pos += 1
            if self._batch_pos == len(self._batch):
                self._batch = []
                self._batch_pos = 0
            event = head
        elif self._heap:
            event = heapq.heappop(self._heap)
        else:
            raise IndexError("event queue is empty")
        self.now = event.time
        self.processed += 1
        return event

    def _materialise(self) -> None:
        """Fold all pending events into one kernel-sorted batch.

        ``step_events`` orders the pooled (time, sequence) pairs exactly as
        successive ``heappop`` calls would — the order is total — so this is
        a pure representation change.
        """
        pending = self._batch[self._batch_pos :] + self._heap
        self._heap = []
        self._batch_pos = 0
        if len(pending) <= 1:
            self._batch = pending
            return
        n = len(pending)
        times = np.fromiter((e.time for e in pending), dtype=np.float64, count=n)
        seqs = np.fromiter((e.sequence for e in pending), dtype=np.int64, count=n)
        order = kernel_ops.step_events(times, seqs)
        self._batch = [pending[i] for i in order.tolist()]

    def run(
        self,
        handler: Callable[[SimulationEvent, "EventQueue"], None],
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Drain the queue through ``handler``; returns the number of events processed.

        ``until`` stops the run once the clock passes that time; ``max_events``
        caps the number of processed events (safety valve for tests).
        """
        processed = 0
        self._materialise()
        while True:
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            event = self.pop()
            handler(event, self)
            processed += 1
            if len(self._heap) >= _RESORT_THRESHOLD:
                self._materialise()
        return processed

    def drain(self) -> Iterator[SimulationEvent]:
        """Iterate over remaining events in time order (advances the clock)."""
        self._materialise()
        while len(self):
            yield self.pop()
