"""Sensing-field models: random events and a moving target.

The paper's coverage property (P3) is about the sensing function: the region
must be covered by nodes that belong to the connected SENS network.  These
helpers measure that operationally:

* :func:`coverage_fraction` — fraction of randomly placed events that at
  least one *connected* node senses (within the sensing radius).
* :class:`MovingTarget` — a target following a piecewise-linear path, used by
  the collaborative-tracking example (the paper's §1 motivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.geometry.index import KDTreeIndex, build_index, within_ball
from repro.geometry.primitives import Rect, as_points

__all__ = ["SensingField", "MovingTarget", "coverage_fraction"]


def coverage_fraction(
    sensor_positions: np.ndarray,
    events: np.ndarray,
    sensing_radius: float,
    backend: str = "kdtree",
) -> float:
    """Fraction of event positions within ``sensing_radius`` of some sensor.

    An event is covered when its closed sensing ball contains at least one
    sensor.  Existence is all that matters, so the KD-tree backend answers
    each event with one nearest-sensor query confirmed by the backends'
    shared ``within_ball`` predicate — O(log n) per event instead of
    enumerating every sensor inside the ball; the grid backend answers with
    one bulk ``count_radius_many``.
    """
    if sensing_radius <= 0:
        raise ValueError("sensing_radius must be positive")
    sensors = as_points(sensor_positions)
    evts = as_points(events)
    if len(evts) == 0:
        return 1.0
    if len(sensors) == 0:
        return 0.0
    index = build_index(sensors, radius=sensing_radius, backend=backend)
    if isinstance(index, KDTreeIndex):
        nearest = index.query_nearest(evts, 1)[:, 0]
        covered = within_ball(sensors[nearest], evts, sensing_radius)
        # The tree ranks sensors by its own (underflow-prone) metric, so the
        # one it picks can fail the exact predicate while an equidistant-
        # under-rounding sensor covers the event; re-check apparent misses
        # with the exact ball query (cheap: their balls are almost always
        # empty, which is why the nearest-first path is the fast one).
        unsure = np.nonzero(~covered)[0]
        if unsure.size:
            covered[unsure] = index.count_radius_many(evts[unsure], sensing_radius) > 0
    else:
        covered = index.count_radius_many(evts, sensing_radius) > 0
    return float(covered.mean())


@dataclass
class SensingField:
    """A rectangular field in which point events occur uniformly at random.

    Attributes
    ----------
    window: the field extent.
    sensing_radius: detection radius of every sensor.
    """

    window: Rect
    sensing_radius: float

    def __post_init__(self) -> None:
        if self.sensing_radius <= 0:
            raise ValueError("sensing_radius must be positive")

    def sample_events(self, n_events: int, rng: np.random.Generator) -> np.ndarray:
        """``n_events`` uniformly random event positions."""
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        return self.window.sample_uniform(n_events, rng)

    def detectors_of(self, sensor_positions: np.ndarray, event: np.ndarray) -> np.ndarray:
        """Indices of sensors that detect a single event position.

        A one-shot single-event query: the direct vectorised distance check
        (literally the index backends' shared ``within_ball`` predicate)
        beats building a spatial index that would answer only one query.
        """
        sensors = as_points(sensor_positions)
        if len(sensors) == 0:
            return np.zeros(0, dtype=np.int64)
        event = np.asarray(event, dtype=np.float64)
        return np.nonzero(within_ball(sensors, event, self.sensing_radius))[0]

    def coverage(
        self,
        sensor_positions: np.ndarray,
        n_events: int,
        rng: np.random.Generator,
        backend: str = "kdtree",
    ) -> float:
        """Monte-Carlo event-coverage fraction for a set of sensors."""
        events = self.sample_events(n_events, rng)
        return coverage_fraction(sensor_positions, events, self.sensing_radius, backend=backend)


@dataclass
class MovingTarget:
    """A target moving along a piecewise-linear path at constant speed.

    Attributes
    ----------
    waypoints: ``(m, 2)`` array of waypoints visited in order.
    speed: distance covered per time step.
    """

    waypoints: np.ndarray
    speed: float

    def __post_init__(self) -> None:
        self.waypoints = as_points(self.waypoints)
        if len(self.waypoints) < 2:
            raise ValueError("a moving target needs at least two waypoints")
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    @property
    def path_length(self) -> float:
        return float(np.linalg.norm(np.diff(self.waypoints, axis=0), axis=1).sum())

    def positions(self) -> Iterator[np.ndarray]:
        """Yield the target position at each time step until the path ends."""
        seg_vecs = np.diff(self.waypoints, axis=0)
        seg_lens = np.linalg.norm(seg_vecs, axis=1)
        total = float(seg_lens.sum())
        travelled = 0.0
        while travelled <= total:
            yield self.position_at(travelled)
            travelled += self.speed
        yield self.waypoints[-1].copy()

    def position_at(self, distance: float) -> np.ndarray:
        """Position after travelling ``distance`` along the path (clamped to the end)."""
        if distance <= 0:
            return self.waypoints[0].copy()
        seg_vecs = np.diff(self.waypoints, axis=0)
        seg_lens = np.linalg.norm(seg_vecs, axis=1)
        remaining = distance
        for start, vec, length in zip(self.waypoints[:-1], seg_vecs, seg_lens):
            if remaining <= length or length == 0:
                frac = 0.0 if length == 0 else remaining / length
                return start + frac * vec
            remaining -= length
        return self.waypoints[-1].copy()
