"""WASN usage substrate: energy, sensing and data-collection simulation.

The paper motivates its constructions with multihop sensing workloads
(energy-efficient relaying, collaborative target tracking).  This package
provides the simulator those workloads run on:

* :mod:`repro.simulation.energy` — the first-order radio energy model
  (electronics + ``d^β`` amplifier cost per transmitted bit) and per-node
  battery accounting.
* :mod:`repro.simulation.events` — a minimal discrete-event engine used by
  the workloads.
* :mod:`repro.simulation.sensing` — sensing fields: random event coverage and
  a moving target for the tracking workload.
* :mod:`repro.simulation.datacollection` — convergecast data collection over
  an arbitrary topology (SENS overlay or full base graph), reporting energy
  per delivered packet and network lifetime.
"""

from repro.simulation.datacollection import ConvergecastResult, run_convergecast
from repro.simulation.energy import EnergyModel, EnergyLedger
from repro.simulation.events import EventQueue, SimulationEvent
from repro.simulation.sensing import SensingField, MovingTarget, coverage_fraction

__all__ = [
    "EnergyModel",
    "EnergyLedger",
    "EventQueue",
    "SimulationEvent",
    "SensingField",
    "MovingTarget",
    "coverage_fraction",
    "ConvergecastResult",
    "run_convergecast",
]
