"""k-nearest-neighbour graph construction — the paper's ``NN(2, k)`` model.

Each point establishes undirected edges to the ``k`` points nearest to it
(Häggström–Meester model): the edge {x, y} exists when y is among x's k
nearest *or* x is among y's k nearest.  Neighbour queries go through the
:class:`repro.geometry.index.KDTreeIndex` backend (nearest-point queries are
the one operation the grid backend does not offer); ties (a measure-zero
event for Poisson inputs) are broken by index order, matching the paper's
remark that any tie-breaking rule is acceptable.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.index import KDTreeIndex
from repro.geometry.primitives import as_points
from repro.graphs.base import GeometricGraph

__all__ = ["knn_neighbour_indices", "knn_edges", "build_knn"]


def knn_neighbour_indices(points: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k nearest neighbours of every point.

    Returns an ``(n, k)`` integer array; row i lists the k nearest points to
    point i (excluding i itself), nearest first.  When fewer than k other
    points exist, the available neighbours are followed by ``-1`` padding.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    pts = as_points(points)
    n = len(pts)
    if n == 0 or k == 0:
        return np.full((n, k), -1, dtype=np.int64)
    k_eff = min(k, n - 1)
    if k_eff == 0:
        return np.full((n, k), -1, dtype=np.int64)
    index = KDTreeIndex(pts)
    # Query k_eff + 1 because the nearest hit is the point itself.
    idx = index.query_nearest(pts, k_eff + 1)
    neighbours = np.full((n, k), -1, dtype=np.int64)
    for i in range(n):
        row = idx[i]
        row = row[row != i][:k_eff]
        neighbours[i, : len(row)] = row
    return neighbours


def knn_edges(points: np.ndarray, k: int) -> np.ndarray:
    """Undirected edge list of ``NN(2, k)`` on the given point set."""
    pts = as_points(points)
    neighbours = knn_neighbour_indices(pts, k)
    if neighbours.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    sources = np.repeat(np.arange(len(pts), dtype=np.int64), neighbours.shape[1])
    targets = neighbours.ravel()
    valid = targets >= 0
    pairs = np.column_stack([sources[valid], targets[valid]])
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    pairs = np.sort(pairs, axis=1)
    return np.unique(pairs, axis=0)


def build_knn(points: np.ndarray, k: int, name: str | None = None) -> GeometricGraph:
    """Build the undirected k-nearest-neighbour graph ``NN(2, k)``."""
    pts = as_points(points)
    edges = knn_edges(pts, k)
    return GeometricGraph(pts, edges, name=name or f"NN(k={k})")
