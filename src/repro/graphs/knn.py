"""k-nearest-neighbour graph construction — the paper's ``NN(2, k)`` model.

Each point establishes undirected edges to the ``k`` points nearest to it
(Häggström–Meester model): the edge {x, y} exists when y is among x's k
nearest *or* x is among y's k nearest.  Neighbour queries go through the
:mod:`repro.geometry.index` backend layer — both backends now answer
``query_nearest`` (the KD-tree natively, the grid via expanding-ring cell
search), so the kNN builder is backend-pluggable like the UDG builder; ties
(a measure-zero event for Poisson inputs) are broken by each backend's own
rule, matching the paper's remark that any tie-breaking rule is acceptable.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.index import build_index
from repro.geometry.primitives import as_points
from repro.graphs.base import GeometricGraph

__all__ = ["knn_neighbour_indices", "knn_edges", "build_knn"]


def _knn_cell_size(pts: np.ndarray, k: int) -> float:
    """Grid cell size tuned to the expected kNN radius.

    For roughly uniform density ``λ ≈ n / bbox_area`` the k-th neighbour sits
    near ``sqrt((k + 1) / (π λ))``; a cell of that side keeps the expanding
    ring search to a few rings.  Correctness never depends on this choice —
    only ring count does — so degenerate bounding boxes just fall back to 1.
    """
    spans = pts.max(axis=0) - pts.min(axis=0)
    area = float(spans[0] * spans[1])
    if not np.isfinite(area) or area <= 0:
        return 1.0
    return float(np.sqrt((k + 1) * area / (np.pi * len(pts))))


def knn_neighbour_indices(points: np.ndarray, k: int, backend: str = "kdtree") -> np.ndarray:
    """Indices of the k nearest neighbours of every point.

    Returns an ``(n, k)`` integer array; row i lists the k nearest points to
    point i (excluding i itself), nearest first.  When fewer than k other
    points exist, the available neighbours are followed by ``-1`` padding.
    ``backend`` picks the spatial index (``kdtree`` default; ``grid`` uses
    the expanding-ring search with index-order tie-breaking).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    pts = as_points(points)
    n = len(pts)
    if n == 0 or k == 0:
        return np.full((n, k), -1, dtype=np.int64)
    k_eff = min(k, n - 1)
    if k_eff == 0:
        return np.full((n, k), -1, dtype=np.int64)
    index = build_index(pts, backend=backend, cell_size=_knn_cell_size(pts, k_eff))
    # Query k_eff + 1 because the nearest hit is the point itself.
    idx = index.query_nearest(pts, k_eff + 1)
    neighbours = np.full((n, k), -1, dtype=np.int64)
    for i in range(n):
        row = idx[i]
        row = row[row != i][:k_eff]
        neighbours[i, : len(row)] = row
    return neighbours


def knn_edges(points: np.ndarray, k: int, backend: str = "kdtree") -> np.ndarray:
    """Undirected edge list of ``NN(2, k)`` on the given point set."""
    pts = as_points(points)
    neighbours = knn_neighbour_indices(pts, k, backend=backend)
    if neighbours.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    sources = np.repeat(np.arange(len(pts), dtype=np.int64), neighbours.shape[1])
    targets = neighbours.ravel()
    valid = targets >= 0
    pairs = np.column_stack([sources[valid], targets[valid]])
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    pairs = np.sort(pairs, axis=1)
    return np.unique(pairs, axis=0)


def build_knn(
    points: np.ndarray, k: int, name: str | None = None, backend: str = "kdtree"
) -> GeometricGraph:
    """Build the undirected k-nearest-neighbour graph ``NN(2, k)``."""
    pts = as_points(points)
    edges = knn_edges(pts, k, backend=backend)
    return GeometricGraph(pts, edges, name=name or f"NN(k={k})")
