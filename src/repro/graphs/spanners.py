"""Baseline topology-control spanners.

The paper positions its SENS constructions against the classical
topology-control literature, whose goal is a sparse spanner that keeps
*every* node connected (Santi's and Rajaraman's surveys; the Li–Wan–Wang
power spanner).  To let the benchmarks make that comparison concrete we
implement the standard proximity-graph baselines:

* **Gabriel graph** — edge (u, v) iff the disc with diameter uv contains no
  other point; a power spanner for β ≥ 2.
* **Relative neighbourhood graph (RNG)** — edge (u, v) iff no point w is
  simultaneously closer to u and to v than they are to each other.
* **Yao graph** — each node keeps its nearest neighbour in each of ``cones``
  equal angular sectors; a distance spanner for ≥ 7 cones.
* **Euclidean MST** — the sparsest connected baseline (no stretch guarantee).

All baselines are built as *subgraphs of the supplied base graph* when a base
edge set is given (as in the topology-control setting, where only links of
the underlying UDG are usable); otherwise they are built on the complete
Euclidean graph.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.geometry.primitives import as_points, squared_distances
from repro.graphs.base import GeometricGraph
from repro.graphs.udg import udg_edges

__all__ = [
    "build_gabriel_graph",
    "build_relative_neighbourhood_graph",
    "build_yao_graph",
    "build_euclidean_mst",
]


def _candidate_edges(points: np.ndarray, base_edges: np.ndarray | None) -> np.ndarray:
    """Candidate edge list: the base graph's edges, or all pairs if none given."""
    n = len(points)
    if base_edges is not None:
        edges = np.asarray(base_edges, dtype=np.int64)
        if edges.size == 0:
            return np.zeros((0, 2), dtype=np.int64)
        return np.unique(np.sort(edges, axis=1), axis=0)
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)
    a, b = np.triu_indices(n, k=1)
    return np.column_stack([a, b]).astype(np.int64)


def build_gabriel_graph(
    points: np.ndarray, base_edges: np.ndarray | None = None, name: str = "Gabriel"
) -> GeometricGraph:
    """Gabriel graph on ``points`` (optionally restricted to ``base_edges``).

    Edge (u, v) survives iff no third point lies strictly inside the disc
    whose diameter is the segment uv, i.e. ``d(w, m)² < d(u, v)²/4`` for the
    midpoint m.
    """
    pts = as_points(points)
    cand = _candidate_edges(pts, base_edges)
    if cand.size == 0:
        return GeometricGraph(pts, cand, name=name)
    keep = np.zeros(len(cand), dtype=bool)
    for i, (u, v) in enumerate(cand):
        mid = (pts[u] + pts[v]) / 2.0
        r2 = np.sum((pts[u] - pts[v]) ** 2) / 4.0
        d2 = np.sum((pts - mid) ** 2, axis=1)
        d2[u] = np.inf
        d2[v] = np.inf
        # repro: allow[REPRO202] relative witness test, not ball membership
        keep[i] = not np.any(d2 < r2 - 1e-12)
    return GeometricGraph(pts, cand[keep], name=name)


def build_relative_neighbourhood_graph(
    points: np.ndarray, base_edges: np.ndarray | None = None, name: str = "RNG"
) -> GeometricGraph:
    """Relative neighbourhood graph on ``points``.

    Edge (u, v) survives iff there is no witness w with
    ``max(d(u, w), d(v, w)) < d(u, v)``.
    """
    pts = as_points(points)
    cand = _candidate_edges(pts, base_edges)
    if cand.size == 0:
        return GeometricGraph(pts, cand, name=name)
    keep = np.zeros(len(cand), dtype=bool)
    for i, (u, v) in enumerate(cand):
        duv2 = np.sum((pts[u] - pts[v]) ** 2)
        du2 = np.sum((pts - pts[u]) ** 2, axis=1)
        dv2 = np.sum((pts - pts[v]) ** 2, axis=1)
        # repro: allow[REPRO202] relative witness test, not ball membership
        witness = np.maximum(du2, dv2) < duv2 - 1e-12
        witness[u] = False
        witness[v] = False
        keep[i] = not np.any(witness)
    return GeometricGraph(pts, cand[keep], name=name)


def build_yao_graph(
    points: np.ndarray,
    cones: int = 8,
    radius: float | None = None,
    name: str | None = None,
) -> GeometricGraph:
    """Yao graph: each node keeps its nearest neighbour per angular cone.

    Parameters
    ----------
    points:
        Node coordinates.
    cones:
        Number of equal angular sectors per node (≥ 7 gives a spanner).
    radius:
        Optional maximum link length (restricts candidates to the UDG of that
        radius, matching the wireless setting).
    """
    if cones < 1:
        raise ValueError("cones must be positive")
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, np.zeros((0, 2), dtype=np.int64), name=name or f"Yao({cones})")

    if radius is not None:
        cand = udg_edges(pts, radius)
        # Build symmetric candidate adjacency from the UDG edge list.
        neighbours: list[list[int]] = [[] for _ in range(n)]
        for a, b in cand:
            neighbours[int(a)].append(int(b))
            neighbours[int(b)].append(int(a))
    else:
        neighbours = [[j for j in range(n) if j != i] for i in range(n)]

    sector_width = 2.0 * np.pi / cones
    chosen: set[tuple[int, int]] = set()
    for i in range(n):
        nbrs = np.asarray(neighbours[i], dtype=np.int64)
        if nbrs.size == 0:
            continue
        vec = pts[nbrs] - pts[i]
        dist = np.sqrt(np.einsum("ij,ij->i", vec, vec))
        angles = np.mod(np.arctan2(vec[:, 1], vec[:, 0]), 2.0 * np.pi)
        sector = np.minimum((angles / sector_width).astype(np.int64), cones - 1)
        for s in np.unique(sector):
            in_sector = sector == s
            best = nbrs[in_sector][int(np.argmin(dist[in_sector]))]
            chosen.add((min(i, int(best)), max(i, int(best))))
    edges = np.asarray(sorted(chosen), dtype=np.int64) if chosen else np.zeros((0, 2), dtype=np.int64)
    return GeometricGraph(pts, edges, name=name or f"Yao({cones})")


def build_euclidean_mst(points: np.ndarray, name: str = "EMST") -> GeometricGraph:
    """Euclidean minimum spanning tree (via scipy's sparse-graph MST)."""
    pts = as_points(points)
    n = len(pts)
    if n < 2:
        return GeometricGraph(pts, np.zeros((0, 2), dtype=np.int64), name=name)
    d = np.sqrt(squared_distances(pts, pts))
    a, b = np.triu_indices(n, k=1)
    weights = d[a, b]
    graph = coo_matrix((weights, (a, b)), shape=(n, n))
    mst = minimum_spanning_tree(graph).tocoo()
    edges = np.column_stack([mst.row, mst.col]).astype(np.int64)
    return GeometricGraph(pts, edges, name=name)
