"""Unit disk graph construction — the paper's ``UDG(2, λ)`` model.

Given a point set S, the unit disk graph joins x, y ∈ S whenever
``d(x, y) <= radius`` (the paper fixes the radius to 1; we keep it a
parameter so that radio-range experiments can rescale).  Edge enumeration
uses :class:`scipy.spatial.cKDTree.query_pairs`, which is the standard
O(n log n + output) approach and avoids the quadratic distance matrix.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.primitives import as_points
from repro.graphs.base import GeometricGraph

__all__ = ["udg_edges", "build_udg"]


def udg_edges(points: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Edge list of the unit-disk graph with the given connection ``radius``.

    Returns an ``(m, 2)`` integer array of node-index pairs (smaller index
    first, unique rows).
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    pts = as_points(points)
    if len(pts) < 2 or radius == 0:
        return np.zeros((0, 2), dtype=np.int64)
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return np.sort(pairs.astype(np.int64), axis=1)


def build_udg(points: np.ndarray, radius: float = 1.0, name: str | None = None) -> GeometricGraph:
    """Build ``UDG(2, λ)`` on an explicit point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates (typically a Poisson realisation from
        :mod:`repro.geometry.poisson`).
    radius:
        Connection radius (1.0 in the paper).
    name:
        Optional label; defaults to ``"UDG(r=<radius>)"``.
    """
    pts = as_points(points)
    edges = udg_edges(pts, radius)
    return GeometricGraph(pts, edges, name=name or f"UDG(r={radius:g})")
