"""Unit disk graph construction — the paper's ``UDG(2, λ)`` model.

Given a point set S, the unit disk graph joins x, y ∈ S whenever
``d(x, y) <= radius`` (the paper fixes the radius to 1; we keep it a
parameter so that radio-range experiments can rescale).  Edge enumeration
goes through the :mod:`repro.geometry.index` backend layer
(``query_pairs`` on either the cKDTree wrapper or the vectorised grid), which
is the standard O(n log n + output) approach and avoids the quadratic
distance matrix.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.index import build_index
from repro.geometry.primitives import as_points
from repro.graphs.base import GeometricGraph

__all__ = ["udg_edges", "build_udg"]


def udg_edges(points: np.ndarray, radius: float = 1.0, backend: str = "kdtree") -> np.ndarray:
    """Edge list of the unit-disk graph with the given connection ``radius``.

    Returns an ``(m, 2)`` integer array of node-index pairs (smaller index
    first, rows in lexicographic order).  Both spatial-index backends produce
    the identical edge list; ``kdtree`` is the default because one-shot edge
    enumeration does not amortise a grid build.

    ``radius == 0`` returns no edges *by UDG convention* (a zero-range radio
    connects nothing) without consulting the index.  This deliberately
    differs from the raw index layer, where a radius-0 closed ball matches
    exactly coincident points — e.g. ``continuum_cluster_labels`` merges
    coincident points at radius 0 while the UDG on the same set is empty.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    pts = as_points(points)
    if len(pts) < 2 or radius == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return build_index(pts, radius=radius, backend=backend).query_pairs(radius)


def build_udg(
    points: np.ndarray, radius: float = 1.0, name: str | None = None, backend: str = "kdtree"
) -> GeometricGraph:
    """Build ``UDG(2, λ)`` on an explicit point set.

    Parameters
    ----------
    points:
        ``(n, 2)`` node coordinates (typically a Poisson realisation from
        :mod:`repro.geometry.poisson`).
    radius:
        Connection radius (1.0 in the paper).
    name:
        Optional label; defaults to ``"UDG(r=<radius>)"``.
    backend:
        Spatial-index backend used for edge enumeration.
    """
    pts = as_points(points)
    edges = udg_edges(pts, radius, backend=backend)
    return GeometricGraph(pts, edges, name=name or f"UDG(r={radius:g})")
