"""Shared graph metrics used across experiments.

Covers the quantities the paper's properties talk about: degree statistics
(P1 sparsity), connected components and the largest-component fraction
(giant-component existence), hop distances and Euclidean path lengths
(the ingredients of the distance-stretch measurements, P2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components, dijkstra, shortest_path

from repro.graphs.base import GeometricGraph

__all__ = [
    "GraphSummary",
    "degree_statistics",
    "component_labels",
    "component_sizes",
    "largest_component_fraction",
    "largest_component_nodes",
    "shortest_path_hops",
    "shortest_path_euclidean",
    "euclidean_path_length",
    "graph_summary",
]


def _adjacency_matrix(graph: GeometricGraph, weighted: bool) -> coo_matrix:
    n = graph.n_nodes
    if graph.n_edges == 0:
        return coo_matrix((n, n))
    weights = graph.edge_lengths() if weighted else np.ones(graph.n_edges)
    rows = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
    cols = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
    data = np.concatenate([weights, weights])
    return coo_matrix((data, (rows, cols)), shape=(n, n))


def degree_statistics(graph: GeometricGraph) -> Dict[str, float]:
    """Degree summary: min/max/mean degree and the fraction of isolated nodes."""
    deg = graph.degrees()
    if deg.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "isolated_fraction": 0.0}
    return {
        "min": float(deg.min()),
        "max": float(deg.max()),
        "mean": float(deg.mean()),
        "isolated_fraction": float(np.mean(deg == 0)),
    }


def component_labels(graph: GeometricGraph) -> np.ndarray:
    """Connected-component label of every node."""
    if graph.n_nodes == 0:
        return np.zeros(0, dtype=np.int64)
    _, labels = connected_components(_adjacency_matrix(graph, weighted=False), directed=False)
    return labels.astype(np.int64)


def component_sizes(graph: GeometricGraph) -> np.ndarray:
    """Sizes of all connected components, sorted descending."""
    labels = component_labels(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.sort(np.bincount(labels))[::-1]


def largest_component_fraction(graph: GeometricGraph) -> float:
    """Fraction of nodes in the largest connected component."""
    sizes = component_sizes(graph)
    if sizes.size == 0:
        return 0.0
    return float(sizes[0]) / graph.n_nodes


def largest_component_nodes(graph: GeometricGraph) -> np.ndarray:
    """Node indices of the largest connected component."""
    labels = component_labels(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(labels)
    return np.nonzero(labels == int(np.argmax(counts)))[0]


def shortest_path_hops(graph: GeometricGraph, sources: Sequence[int] | None = None) -> np.ndarray:
    """Hop-count shortest path distances.

    Returns an ``(s, n)`` matrix of hop counts from each source (or from all
    nodes when ``sources`` is ``None``); unreachable pairs are ``inf``.
    """
    adj = _adjacency_matrix(graph, weighted=False)
    if sources is None:
        return shortest_path(adj, method="D", unweighted=True, directed=False)
    indices = np.asarray(list(sources), dtype=np.int64)
    return dijkstra(adj, directed=False, indices=indices, unweighted=True)


def shortest_path_euclidean(graph: GeometricGraph, sources: Sequence[int] | None = None) -> np.ndarray:
    """Shortest path distances using Euclidean edge lengths as weights."""
    adj = _adjacency_matrix(graph, weighted=True)
    if sources is None:
        return shortest_path(adj, method="D", directed=False)
    indices = np.asarray(list(sources), dtype=np.int64)
    return dijkstra(adj, directed=False, indices=indices)


def euclidean_path_length(graph: GeometricGraph, path: Sequence[int]) -> float:
    """Total Euclidean length of a node-index path."""
    nodes = np.asarray(list(path), dtype=np.int64)
    if nodes.size < 2:
        return 0.0
    diffs = graph.points[nodes[1:]] - graph.points[nodes[:-1]]
    return float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs)).sum())


@dataclass(frozen=True)
class GraphSummary:
    """Headline metrics of a geometric graph, used in experiment tables."""

    name: str
    n_nodes: int
    n_edges: int
    max_degree: int
    mean_degree: float
    largest_component_fraction: float
    total_edge_length: float


def graph_summary(graph: GeometricGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for a graph."""
    deg = degree_statistics(graph)
    return GraphSummary(
        name=graph.name,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        max_degree=int(deg["max"]),
        mean_degree=deg["mean"],
        largest_component_fraction=largest_component_fraction(graph),
        total_edge_length=float(graph.edge_lengths().sum()),
    )
