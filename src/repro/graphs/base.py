"""Shared geometric-graph container.

A :class:`GeometricGraph` stores node coordinates as an ``(n, 2)`` float
array and edges as an ``(m, 2)`` integer array of node indices.  Keeping the
representation array-based keeps the builders vectorised; conversion to
``networkx`` is provided for algorithms (shortest paths, components) where
the networkx implementation is the clearest correct choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.geometry.primitives import as_points

__all__ = ["GeometricGraph"]


@dataclass
class GeometricGraph:
    """Undirected geometric graph with embedded node positions.

    Attributes
    ----------
    points:
        ``(n, 2)`` node coordinates.
    edges:
        ``(m, 2)`` integer array of undirected edges; each row is stored with
        the smaller index first and rows are unique.
    name:
        Human-readable label used in experiment tables
        (e.g. ``"UDG(2, 1.8)"`` or ``"UDG-SENS"``).
    """

    points: np.ndarray
    edges: np.ndarray
    name: str = "geometric-graph"
    _adjacency: dict[int, np.ndarray] | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.points = as_points(self.points)
        edges = np.asarray(self.edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) integer array")
        n = len(self.points)
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise ValueError("edge endpoints out of range")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops are not allowed")
        edges = np.sort(edges, axis=1)
        edges = np.unique(edges, axis=0) if edges.size else edges
        self.edges = edges

    # -- basic accessors ------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.points)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def degrees(self) -> np.ndarray:
        """Degree of every node."""
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        if self.n_edges:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def edge_lengths(self) -> np.ndarray:
        """Euclidean length of every edge."""
        if self.n_edges == 0:
            return np.zeros(0, dtype=np.float64)
        diff = self.points[self.edges[:, 0]] - self.points[self.edges[:, 1]]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def neighbours(self, node: int) -> np.ndarray:
        """Sorted neighbour indices of ``node`` (cached adjacency)."""
        if self._adjacency is None:
            adjacency: dict[int, list[int]] = {i: [] for i in range(self.n_nodes)}
            for a, b in self.edges:
                adjacency[int(a)].append(int(b))
                adjacency[int(b)].append(int(a))
            self._adjacency = {k: np.asarray(sorted(v), dtype=np.int64) for k, v in adjacency.items()}
        return self._adjacency[int(node)]

    def has_edge(self, a: int, b: int) -> bool:
        return int(b) in set(self.neighbours(int(a)).tolist())

    # -- conversions -----------------------------------------------------------
    def to_networkx(self):
        """Convert to :class:`networkx.Graph` with ``pos`` node attributes and
        ``length`` edge attributes."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for i, (x, y) in enumerate(self.points):
            graph.add_node(int(i), pos=(float(x), float(y)))
        lengths = self.edge_lengths()
        for (a, b), length in zip(self.edges, lengths):
            graph.add_edge(int(a), int(b), length=float(length))
        return graph

    def subgraph(self, node_indices: Iterable[int], name: str | None = None) -> "GeometricGraph":
        """Induced subgraph on the given nodes, with nodes re-indexed 0..m-1."""
        keep = np.asarray(sorted(set(int(i) for i in node_indices)), dtype=np.int64)
        if keep.size and (keep.min() < 0 or keep.max() >= self.n_nodes):
            raise ValueError("node index out of range")
        remap = -np.ones(self.n_nodes, dtype=np.int64)
        remap[keep] = np.arange(len(keep))
        if self.n_edges:
            mask = (remap[self.edges[:, 0]] >= 0) & (remap[self.edges[:, 1]] >= 0)
            new_edges = remap[self.edges[mask]]
        else:
            new_edges = np.zeros((0, 2), dtype=np.int64)
        return GeometricGraph(self.points[keep], new_edges, name=name or f"{self.name}-sub")

    def with_name(self, name: str) -> "GeometricGraph":
        return GeometricGraph(self.points, self.edges, name=name)
