"""Geometric random graph substrate.

The paper builds its overlays on two base interconnection structures:

* ``UDG(2, λ)`` — the unit disk graph on a Poisson point process
  (:func:`repro.graphs.udg.build_udg`).
* ``NN(2, k)`` — the undirected k-nearest-neighbour graph
  (:func:`repro.graphs.knn.build_knn`).

Alongside the base structures this package implements the classical
topology-control baselines the paper's introduction contrasts against
(spanners that keep *every* node connected): Gabriel graph, relative
neighbourhood graph, Yao graph and the Euclidean minimum spanning tree
(:mod:`repro.graphs.spanners`), plus shared graph metrics
(:mod:`repro.graphs.metrics`).

All builders return a :class:`GeometricGraph`, a light wrapper around a node
coordinate array and an edge list that converts to ``networkx`` on demand.
"""

from repro.graphs.base import GeometricGraph
from repro.graphs.knn import build_knn, knn_edges, knn_neighbour_indices
from repro.graphs.metrics import (
    GraphSummary,
    component_sizes,
    degree_statistics,
    euclidean_path_length,
    graph_summary,
    largest_component_fraction,
    shortest_path_hops,
)
from repro.graphs.spanners import (
    build_euclidean_mst,
    build_gabriel_graph,
    build_relative_neighbourhood_graph,
    build_yao_graph,
)
from repro.graphs.udg import build_udg, udg_edges

__all__ = [
    "GeometricGraph",
    "build_udg",
    "udg_edges",
    "build_knn",
    "knn_edges",
    "knn_neighbour_indices",
    "build_gabriel_graph",
    "build_relative_neighbourhood_graph",
    "build_yao_graph",
    "build_euclidean_mst",
    "GraphSummary",
    "graph_summary",
    "degree_statistics",
    "component_sizes",
    "largest_component_fraction",
    "shortest_path_hops",
    "euclidean_path_length",
]
