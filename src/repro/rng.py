"""Seeded-RNG discipline helpers.

Every stochastic entry point in this library accepts an optional
``numpy.random.Generator``.  Historically the fallback for a missing
generator was a *fresh-entropy* ``np.random.default_rng()``, which made
"forgot to pass rng" silently nondeterministic — the exact failure mode the
:mod:`repro.devtools` lint rule ``REPRO102`` now rejects.

:func:`resolve_rng` is the one sanctioned fallback: when neither a generator
nor a seed is supplied it derives the generator from the documented root
:data:`DEFAULT_ROOT_SEED` through :class:`numpy.random.SeedSequence`, so two
calls with default arguments produce byte-identical streams (each call gets
its *own* generator object, so callers never share hidden state).

Child seeds must flow through :meth:`numpy.random.SeedSequence.spawn` —
never through seed arithmetic like ``default_rng(seed + i)`` (rule
``REPRO103``); :func:`spawn_rngs` is the convenience wrapper.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["DEFAULT_ROOT_SEED", "default_seed_sequence", "resolve_rng", "spawn_rngs"]

#: Root entropy for every implicit (argument-less) generator in the library.
#: The value is arbitrary but *fixed*: changing it changes the byte-level
#: output of every default-seeded API and is a breaking change guarded by
#: the determinism regression tests in ``tests/devtools/test_rng_determinism.py``.
DEFAULT_ROOT_SEED: int = 0xBA6C41

SeedLike = Union[int, np.random.SeedSequence]


def default_seed_sequence() -> np.random.SeedSequence:
    """A fresh :class:`~numpy.random.SeedSequence` rooted at :data:`DEFAULT_ROOT_SEED`."""
    return np.random.SeedSequence(DEFAULT_ROOT_SEED)


def resolve_rng(
    rng: Optional[np.random.Generator] = None,
    seed: Optional[SeedLike] = None,
) -> np.random.Generator:
    """Return ``rng``, or a generator derived from ``seed``, or the documented default.

    Resolution order:

    1. an explicit ``rng`` wins (it is returned as-is, *shared* state);
    2. otherwise an explicit ``seed`` (int or ``SeedSequence``) seeds a fresh
       generator;
    3. otherwise a fresh generator is derived from :func:`default_seed_sequence`,
       so the no-argument path is deterministic rather than entropy-seeded.
    """
    if rng is not None:
        if not isinstance(rng, np.random.Generator):
            raise TypeError(f"rng must be a numpy.random.Generator, got {type(rng).__name__}")
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng(default_seed_sequence())


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """``count`` independent generators spawned from one root seed.

    This is the sanctioned way to derive per-worker / per-realisation
    streams: ``SeedSequence.spawn`` guarantees statistical independence,
    unlike arithmetic on the seed value itself.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
