"""Tests for the Angel-et-al mesh routing algorithm (Figure 9)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.percolation.clusters import label_clusters
from repro.percolation.lattice import LatticeConfiguration, sample_site_percolation
from repro.routing.mesh import route_xy_mesh, xy_path

site = st.tuples(st.integers(0, 15), st.integers(0, 15))


class TestXyPath:
    def test_straight_line(self):
        path = xy_path((2, 1), (2, 4))
        assert path == [(2, 1), (2, 2), (2, 3), (2, 4)]

    def test_l_shape_column_first(self):
        path = xy_path((0, 0), (2, 3))
        # The x (column) coordinate is fixed first, then the y (row).
        assert path[0] == (0, 0)
        assert path[1] == (0, 1)
        assert path[-1] == (2, 3)
        assert (0, 3) in path

    def test_same_site(self):
        assert xy_path((1, 1), (1, 1)) == [(1, 1)]

    @given(site, site)
    @settings(max_examples=60, deadline=None)
    def test_path_properties(self, a, b):
        """The x-y path is a lattice path of length |Δrow| + |Δcol| from a to b."""
        path = xy_path(a, b)
        assert path[0] == a
        assert path[-1] == b
        assert len(path) == abs(a[0] - b[0]) + abs(a[1] - b[1]) + 1
        for u, v in zip(path[:-1], path[1:]):
            assert abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1


class TestRouting:
    def test_full_lattice_follows_xy_path(self):
        config = LatticeConfiguration(np.ones((8, 8), dtype=bool))
        result = route_xy_mesh(config, (0, 0), (5, 6))
        assert result.success
        assert result.hops == 11
        assert result.detour_ratio == 1.0
        assert result.path == xy_path((0, 0), (5, 6))

    def test_probe_count_on_clear_path(self):
        config = LatticeConfiguration(np.ones((5, 5), dtype=bool))
        result = route_xy_mesh(config, (0, 0), (0, 4))
        # One probe per step along the unobstructed path.
        assert result.probes == 4

    def test_detour_around_obstacle(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[0, 2] = False  # blocks the straight row-0 path
        config = LatticeConfiguration(mask)
        result = route_xy_mesh(config, (0, 0), (0, 4))
        assert result.success
        assert result.hops > 4
        assert result.probes > 4
        # The walked path only visits open sites.
        assert all(config.is_open(s) for s in result.path)

    def test_failure_when_target_unreachable(self):
        mask = np.ones((3, 5), dtype=bool)
        mask[:, 2] = False  # a closed column splits the lattice
        config = LatticeConfiguration(mask)
        result = route_xy_mesh(config, (1, 0), (1, 4))
        assert not result.success
        assert result.detour_ratio == float("inf")

    def test_closed_endpoint_rejected(self):
        mask = np.ones((3, 3), dtype=bool)
        mask[1, 1] = False
        config = LatticeConfiguration(mask)
        with pytest.raises(ValueError):
            route_xy_mesh(config, (1, 1), (0, 0))
        with pytest.raises(ValueError):
            route_xy_mesh(config, (0, 0), (1, 1))
        with pytest.raises(ValueError):
            route_xy_mesh(config, (0, 0), (9, 9))

    def test_source_equals_target(self):
        config = LatticeConfiguration(np.ones((3, 3), dtype=bool))
        result = route_xy_mesh(config, (1, 1), (1, 1))
        assert result.success
        assert result.hops == 0
        assert result.probes == 0

    def test_supercritical_delivery_within_giant_component(self, rng):
        """Above the threshold, routing between giant-component sites succeeds and the
        detour and probe overheads stay modest (the Angel et al. guarantee)."""
        config = sample_site_percolation(40, 40, 0.8, rng)
        labels = label_clusters(config)
        sizes = np.bincount(labels[labels >= 0])
        coords = np.column_stack(np.nonzero(labels == int(np.argmax(sizes))))
        detours = []
        for _ in range(25):
            a, b = coords[rng.integers(0, len(coords), size=2)]
            src, tgt = (int(a[0]), int(a[1])), (int(b[0]), int(b[1]))
            if src == tgt:
                continue
            result = route_xy_mesh(config, src, tgt)
            assert result.success
            assert result.hops >= result.l1_distance
            detours.append(result.detour_ratio)
        assert np.mean(detours) < 2.5

    def test_path_is_connected_open_walk(self, rng):
        config = sample_site_percolation(30, 30, 0.75, rng)
        labels = label_clusters(config)
        sizes = np.bincount(labels[labels >= 0])
        coords = np.column_stack(np.nonzero(labels == int(np.argmax(sizes))))
        a, b = coords[0], coords[-1]
        result = route_xy_mesh(config, (int(a[0]), int(a[1])), (int(b[0]), int(b[1])))
        if result.success:
            for u, v in zip(result.path[:-1], result.path[1:]):
                assert abs(u[0] - v[0]) + abs(u[1] - v[1]) == 1
                assert config.is_open(u) and config.is_open(v)
