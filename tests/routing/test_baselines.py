"""Tests for the greedy geographic and shortest-path routing baselines."""

import numpy as np
import pytest

from repro.graphs.base import GeometricGraph
from repro.graphs.udg import build_udg
from repro.routing.baselines import greedy_geographic_route, shortest_path_route


@pytest.fixture
def chain_graph():
    pts = np.array([[0, 0], [1, 0], [2, 0], [3, 0]], dtype=float)
    return GeometricGraph(pts, np.array([[0, 1], [1, 2], [2, 3]]))


class TestGreedy:
    def test_success_on_chain(self, chain_graph):
        result = greedy_geographic_route(chain_graph, 0, 3)
        assert result.success
        assert result.path == [0, 1, 2, 3]
        assert result.hops == 3
        assert result.euclidean_length == pytest.approx(3.0)

    def test_local_minimum_failure(self):
        """A void: the greedy next hop moves away from the target, so the route fails."""
        pts = np.array([[0, 0], [0, 2], [2, 2], [2, 0], [1, -0.2]], dtype=float)
        # Node 4 is near the target side but disconnected from the upper path.
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        g = GeometricGraph(pts, edges)
        result = greedy_geographic_route(g, 0, 3)
        # From 0 the only neighbour is 1 which is farther from 3 → stuck immediately.
        assert not result.success
        assert result.stuck_at == 0

    def test_source_equals_target(self, chain_graph):
        result = greedy_geographic_route(chain_graph, 2, 2)
        assert result.success
        assert result.hops == 0

    def test_out_of_range_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            greedy_geographic_route(chain_graph, 0, 10)

    def test_isolated_source_fails(self):
        pts = np.array([[0, 0], [1, 0]], dtype=float)
        g = GeometricGraph(pts, np.zeros((0, 2), dtype=int))
        result = greedy_geographic_route(g, 0, 1)
        assert not result.success

    def test_high_density_udg_usually_delivers(self, rng):
        pts = rng.uniform(0, 8, size=(500, 2))
        g = build_udg(pts, radius=1.0)
        successes = 0
        for _ in range(20):
            a, b = rng.integers(0, len(pts), size=2)
            if a == b:
                continue
            successes += greedy_geographic_route(g, int(a), int(b)).success
        assert successes >= 15


class TestShortestPath:
    def test_weighted_route(self, chain_graph):
        result = shortest_path_route(chain_graph, 0, 3)
        assert result.success
        assert result.euclidean_length == pytest.approx(3.0)

    def test_hop_route(self, chain_graph):
        result = shortest_path_route(chain_graph, 0, 3, weighted=False)
        assert result.hops == 3

    def test_disconnected(self):
        pts = np.array([[0, 0], [1, 0], [5, 5]], dtype=float)
        g = GeometricGraph(pts, np.array([[0, 1]]))
        result = shortest_path_route(g, 0, 2)
        assert not result.success

    def test_greedy_never_beats_shortest_path(self, rng):
        pts = rng.uniform(0, 6, size=(300, 2))
        g = build_udg(pts, radius=1.0)
        for _ in range(10):
            a, b = (int(x) for x in rng.integers(0, len(pts), size=2))
            if a == b:
                continue
            greedy = greedy_geographic_route(g, a, b)
            shortest = shortest_path_route(g, a, b)
            if greedy.success and shortest.success:
                assert greedy.euclidean_length >= shortest.euclidean_length - 1e-9
