"""Tests for routing lifted onto the SENS overlay."""

import pytest

from repro.routing.overlay import expand_site_path, route_on_overlay


@pytest.fixture(scope="module")
def routable(udg_network_module):
    return udg_network_module


@pytest.fixture(scope="module")
def udg_network_module():
    from repro import Rect, build_udg_sens

    return build_udg_sens(intensity=25.0, window=Rect(0, 0, 16, 16), seed=21, build_base_graph=False)


def _two_distant_good_tiles(net, rng):
    tiles = [t for t in net.classification.good_tiles() if t in net.overlay.tile_representatives]
    tiles = sorted(tiles)
    return tiles[0], tiles[-1]


class TestRouteOnOverlay:
    def test_successful_route_fields(self, routable, rng):
        src, tgt = _two_distant_good_tiles(routable, rng)
        result = route_on_overlay(routable, src, tgt)
        assert result.success
        assert result.hops >= 1
        assert result.euclidean_length > 0
        assert result.power > 0
        assert result.stretch >= 1.0 - 1e-9

    def test_route_uses_only_overlay_edges(self, routable, rng):
        src, tgt = _two_distant_good_tiles(routable, rng)
        result = route_on_overlay(routable, src, tgt)
        graph = routable.overlay.graph
        for a, b in zip(result.node_path[:-1], result.node_path[1:]):
            assert graph.has_edge(int(a), int(b))

    def test_route_endpoints_are_representatives(self, routable, rng):
        src, tgt = _two_distant_good_tiles(routable, rng)
        result = route_on_overlay(routable, src, tgt)
        assert result.node_path[0] == routable.overlay.tile_representatives[src]
        assert result.node_path[-1] == routable.overlay.tile_representatives[tgt]

    def test_bad_tile_rejected(self, routable):
        bad = next(
            (t for t in routable.tiling.tiles() if not routable.classification.records[t].good),
            None,
        )
        if bad is None:
            pytest.skip("no bad tile in this realisation")
        good = routable.classification.good_tiles()[0]
        with pytest.raises(ValueError):
            route_on_overlay(routable, bad, good)

    def test_same_tile_route_is_trivial(self, routable):
        tile = routable.classification.good_tiles()[0]
        result = route_on_overlay(routable, tile, tile)
        assert result.success
        assert result.hops == 0

    def test_power_consistent_with_hops(self, routable, rng):
        """All overlay hops are <= 1 long, so power (beta=2) <= hop count."""
        src, tgt = _two_distant_good_tiles(routable, rng)
        result = route_on_overlay(routable, src, tgt, beta=2.0)
        assert result.power <= result.hops + 1e-9


class TestExpandSitePath:
    def test_single_site(self, routable):
        tile = routable.classification.good_tiles()[0]
        site = routable.tiling.lattice_site(tile)
        path = expand_site_path(routable, [site])
        assert path == [routable.overlay.tile_representatives[tile]]

    def test_empty_path(self, routable):
        assert expand_site_path(routable, []) == []

    def test_adjacent_tiles_expand_to_relay_chain(self, routable):
        good = set(routable.classification.good_tiles())
        # Find a pair of horizontally adjacent good tiles.
        pair = None
        for (c, r) in good:
            if (c + 1, r) in good:
                pair = ((c, r), (c + 1, r))
                break
        if pair is None:
            pytest.skip("no adjacent good tiles")
        sites = [routable.tiling.lattice_site(t) for t in pair]
        path = expand_site_path(routable, sites)
        # UDG chain: rep - E_right - E_left(neighbour) - rep = up to 4 distinct nodes.
        assert 2 <= len(path) <= 4
        assert path[0] == routable.overlay.tile_representatives[pair[0]]
        assert path[-1] == routable.overlay.tile_representatives[pair[1]]
