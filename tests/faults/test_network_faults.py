"""Injected message faults in MessageNetwork and election healing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.leader_election import elect_leader_distributed, election_key
from repro.distributed.messages import Message
from repro.distributed.network import MessageNetwork
from repro.faults.plan import DELAY, DROP, DUPLICATE, Fault, FaultInjector, FaultPlan


def _network(n=4, injector=None):
    points = np.array([[float(i), 0.0] for i in range(n)])
    return MessageNetwork(points, radio_range=None, injector=injector)


def test_drop_loses_exactly_the_scheduled_message():
    injector = FaultInjector(FaultPlan([Fault("network.deliver", 1, DROP)]))
    net = _network(injector=injector)
    for recipient in (1, 2, 3):
        net.send(Message(0, recipient, "ping", {}))
    inboxes = net.deliver_round()
    # Occurrence 1 is the second queued message (recipient 2).
    assert [m.recipient for msgs in inboxes.values() for m in msgs] == [1, 3]
    assert net.stats.dropped == 1
    assert net.stats.messages_sent == 3  # send-side accounting unchanged


def test_duplicate_delivers_twice():
    injector = FaultInjector(FaultPlan([Fault("network.deliver", 0, DUPLICATE)]))
    net = _network(injector=injector)
    net.send(Message(0, 1, "ping", {}))
    inboxes = net.deliver_round()
    assert len(inboxes[1]) == 2
    assert net.stats.duplicated == 1


def test_delay_holds_message_for_next_round():
    injector = FaultInjector(FaultPlan([Fault("network.deliver", 0, DELAY)]))
    net = _network(injector=injector)
    net.send(Message(0, 1, "ping", {}))
    assert net.deliver_round() == {}
    assert net.stats.delayed == 1
    # Next round: the held message delivers (injector fires a fresh occurrence).
    inboxes = net.deliver_round()
    assert len(inboxes[1]) == 1
    assert net.stats.rounds == 2


def test_fault_free_network_stats_unchanged():
    net = _network()
    net.send(Message(0, 1, "ping", {}))
    net.deliver_round()
    assert (net.stats.dropped, net.stats.duplicated, net.stats.delayed) == (0, 0, 0)


def test_election_tolerates_duplicates_without_retransmission(rng):
    points = rng.uniform(0.0, 1.0, size=(5, 2))
    members = list(range(5))
    anchor = np.array([0.5, 0.5])
    expected = min(election_key(points, m, anchor) for m in members)[1]
    # Duplicate a few deliveries: min-over-multiset is unaffected.
    plan = FaultPlan([Fault("network.deliver", i, DUPLICATE) for i in (0, 7, 13)])
    net = MessageNetwork(points, radio_range=None, injector=FaultInjector(plan))
    assert elect_leader_distributed(net, members, anchor) == expected


def test_election_heals_drops_with_retransmissions(rng):
    points = rng.uniform(0.0, 1.0, size=(4, 2))
    members = list(range(4))
    anchor = np.array([0.5, 0.5])
    expected = min(election_key(points, m, anchor) for m in members)[1]
    # Drop a whole first-round inbox-worth of keys; the re-broadcast heals it.
    plan = FaultPlan([Fault("network.deliver", i, DROP) for i in range(6)])
    net = MessageNetwork(points, radio_range=None, injector=FaultInjector(plan))
    assert elect_leader_distributed(net, members, anchor, retransmissions=2) == expected


def test_election_beyond_envelope_raises_not_wrong(rng):
    points = rng.uniform(0.0, 1.0, size=(4, 2))
    members = list(range(4))
    anchor = np.array([0.5, 0.5])
    # Drop *everything*, forever: no retransmission budget can heal this, and
    # the election must say so rather than return divergent leaders.
    plan = FaultPlan([Fault("network.deliver", i, DROP) for i in range(500)])
    net = MessageNetwork(points, radio_range=None, injector=FaultInjector(plan))
    with pytest.raises(RuntimeError, match="diverged"):
        elect_leader_distributed(net, members, anchor, retransmissions=3)


def test_fault_free_election_accounting_is_byte_identical(rng):
    """The injector hook must cost nothing when no faults are scheduled."""
    points = rng.uniform(0.0, 1.0, size=(6, 2))
    members = list(range(6))
    anchor = np.array([0.5, 0.5])
    plain = MessageNetwork(points, radio_range=None)
    hooked = MessageNetwork(points, radio_range=None, injector=FaultInjector())
    a = elect_leader_distributed(plain, members, anchor)
    b = elect_leader_distributed(hooked, members, anchor, retransmissions=3)
    assert a == b
    assert plain.stats.rounds == hooked.stats.rounds
    assert plain.stats.messages_sent == hooked.stats.messages_sent
    assert plain.stats.messages_by_kind == hooked.stats.messages_by_kind
