"""RetryPolicy backoff arithmetic and call_with_retry semantics."""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultError
from repro.faults.retry import RetryError, RetryPolicy, call_with_retry


def test_policy_backoff_sequence_is_capped():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5)
    assert policy.delays() == (0.1, 0.2, 0.4, 0.5, 0.5)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)


def test_first_try_success_never_sleeps():
    slept = []
    assert call_with_retry(lambda: 42, sleep=slept.append) == 42
    assert slept == []


def test_retries_then_succeeds_with_injected_backoff():
    calls = []
    slept = []
    notes = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    result = call_with_retry(
        flaky,
        policy=RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0),
        retry_on=(OSError,),
        sleep=slept.append,
        on_retry=lambda attempt, delay, err: notes.append((attempt, delay)),
    )
    assert result == "ok"
    assert len(calls) == 3
    assert slept == [0.1, 0.2]
    assert notes == [(1, 0.1), (2, 0.2)]


def test_budget_exhaustion_raises_retry_error_from_last():
    def always_fails():
        raise OSError("down")

    with pytest.raises(RetryError) as info:
        call_with_retry(always_fails, policy=RetryPolicy(max_attempts=3, base_delay=0.0))
    assert info.value.attempts == 3
    assert isinstance(info.value.__cause__, OSError)
    assert isinstance(info.value, FaultError)  # one catchable family


def test_non_retryable_errors_propagate_immediately():
    calls = []

    def wrong_kind():
        calls.append(1)
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        call_with_retry(wrong_kind, retry_on=(OSError,))
    assert len(calls) == 1


def test_none_sleep_skips_backoff_entirely():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 2:
            raise OSError("transient")
        return "ok"

    # sleep=None: retries happen back-to-back (synchronous-round protocols).
    assert call_with_retry(flaky, retry_on=(OSError,), sleep=None) == "ok"
    assert len(calls) == 2
