"""Chaos property: queue worker-death storms drain to byte-identical stores."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import CHAOS_EXPERIMENT_ID, chaos_queue_storm, store_fingerprint
from repro.faults.plan import CRASH, STALL, Fault, FaultPlan


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_seeded_worker_death_storms_never_corrupt(tmp_path_factory, seed):
    """chaos_queue_storm raises ChaosViolation on any silent divergence from
    the fault-free serial run; the property is that every storm returns."""
    workdir = tmp_path_factory.mktemp("storm")
    report = chaos_queue_storm(seed, workdir, n_jobs=4, rate=0.3)
    assert report.outcome == "recovered"
    assert report.detail["worker_deaths"] >= 0


def test_crash_takeover_produces_byte_identical_store(tmp_path):
    """One injected death mid-drain: the replacement worker takes over the
    expired lease and the final store matches the fault-free run."""
    plan = FaultPlan([Fault("queue.execute", 1, CRASH)])
    report = chaos_queue_storm(3, tmp_path, n_jobs=4, plan=plan)
    assert report.outcome == "recovered"
    assert report.detail == {"worker_deaths": 1, "quarantined": 0}


def test_stalls_only_slow_things_down(tmp_path):
    plan = FaultPlan(
        [Fault("queue.execute", 0, STALL, arg=0.0), Fault("queue.execute", 2, STALL, arg=0.0)]
    )
    report = chaos_queue_storm(4, tmp_path, n_jobs=3, plan=plan)
    assert report.outcome == "recovered"
    assert report.detail == {"worker_deaths": 0, "quarantined": 0}


def test_poison_storm_quarantines_then_requeue_drains_same_bytes(tmp_path):
    """Crashes on every claim of the first jobs exhaust the attempts budget:
    the jobs land in quarantine (explicit degradation, not silence), and the
    requeue path drains them to the same bytes as the unfaulted run."""
    plan = FaultPlan([Fault("queue.execute", i, CRASH) for i in range(4)])
    report = chaos_queue_storm(5, tmp_path, n_jobs=3, max_attempts=2, plan=plan)
    assert report.outcome == "recovered"
    assert report.detail["worker_deaths"] == 4
    assert report.detail["quarantined"] >= 1
    # chaos_queue_storm already byte-compared; cross-check the certificate
    # machinery itself agrees with a direct fingerprint call.
    ref = store_fingerprint(tmp_path / "queue-ref-5", CHAOS_EXPERIMENT_ID)
    got = store_fingerprint(tmp_path / "queue-chaos-5.sqlite", CHAOS_EXPERIMENT_ID)
    assert ref == got


def test_fault_free_storm_is_a_plain_drain(tmp_path):
    report = chaos_queue_storm(6, tmp_path, n_jobs=3, plan=FaultPlan([]))
    assert report.outcome == "recovered"
    assert report.n_fired == 0
    assert report.detail == {"worker_deaths": 0, "quarantined": 0}
