"""Chaos property: shard crash storms recover byte-identically or fail loudly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.core.tiles_udg import UDGTileSpec
from repro.distributed.construct import distributed_build
from repro.distributed.sharding import ShardedBuilder, sharded_build
from repro.faults.chaos import chaos_shard_storm
from repro.faults.plan import (
    CRASH,
    STALL,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultToleranceExceeded,
)
from repro.faults.retry import RetryPolicy
from repro.geometry.primitives import Rect

WINDOW = Rect(0.0, 0.0, 15.0, 15.0)


def _points(seed, n=140):
    return np.random.default_rng(seed).uniform(0.0, 15.0, size=(n, 2))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_seeded_storms_never_corrupt_serial(seed):
    """Any seeded storm either recovers byte-identically or raises explicitly.

    chaos_shard_storm raises ChaosViolation on silent corruption — the
    property is simply that it returns.
    """
    report = chaos_shard_storm(seed, executor="serial", n_points=120, rate=0.3)
    assert report.outcome in ("recovered", "exceeded")


def test_within_envelope_crashes_recover_exactly():
    """max_attempts-1 crashes per shard: resubmission, then byte-identity."""
    points = _points(0)
    spec = UDGTileSpec.default()
    reference = distributed_build(points, spec, WINDOW, radio_range=None)
    # Two crashes in a row on the first shard's attempts: with max_attempts=3
    # the third attempt succeeds.
    plan = FaultPlan([Fault("shard.build", 0, CRASH), Fault("shard.build", 1, CRASH)])
    injector = FaultInjector(plan)
    backoffs = []
    with ShardedBuilder(
        points,
        spec,
        WINDOW,
        n_shards=4,
        executor="serial",
        injector=injector,
        retry=RetryPolicy(max_attempts=3, base_delay=0.1),
        sleep=backoffs.append,
    ) as builder:
        result = builder.build()
        assert builder.fault_resubmissions == 2
        assert builder.matches_unsharded(reference)
    assert backoffs == [0.1, 0.2]  # exponential, injected — no wall time
    assert result.stats.messages_by_kind == reference.stats.messages_by_kind


def test_beyond_envelope_raises_never_stitches_partial():
    points = _points(1)
    spec = UDGTileSpec.default()
    plan = FaultPlan([Fault("shard.build", i, CRASH) for i in range(3)])
    with pytest.raises(FaultToleranceExceeded, match="crashed 3 time"):
        sharded_build(
            points,
            spec,
            WINDOW,
            n_shards=4,
            executor="serial",
            injector=FaultInjector(plan),
            retry=RetryPolicy(max_attempts=3),
        )


def test_process_pool_survives_hard_crash_and_stall():
    """arg>=1 kills the worker process: the pool breaks, is recreated, and
    the resubmitted build still matches the unsharded reference."""
    points = _points(2, n=120)
    spec = UDGTileSpec.default()
    reference = distributed_build(points, spec, WINDOW, radio_range=None)
    plan = FaultPlan(
        [Fault("shard.build", 0, CRASH, arg=1.0), Fault("shard.build", 3, STALL, arg=0.01)]
    )
    injector = FaultInjector(plan)
    with ShardedBuilder(
        points,
        spec,
        WINDOW,
        n_shards=2,
        executor="process",
        max_workers=2,
        injector=injector,
        retry=RetryPolicy(max_attempts=3),
    ) as builder:
        builder.build()
        assert builder.pool_restarts == 1
        assert builder.fault_resubmissions >= 1
        assert builder.matches_unsharded(reference)


def test_in_worker_crash_resubmits_without_breaking_pool():
    """arg<1 crashes raise inside the worker: resubmission only, no restart."""
    points = _points(3, n=120)
    spec = UDGTileSpec.default()
    reference = distributed_build(points, spec, WINDOW, radio_range=None)
    plan = FaultPlan([Fault("shard.build", 1, CRASH, arg=0.0)])
    injector = FaultInjector(plan)
    with ShardedBuilder(
        points,
        spec,
        WINDOW,
        n_shards=2,
        executor="process",
        max_workers=2,
        injector=injector,
        retry=RetryPolicy(max_attempts=3),
    ) as builder:
        builder.build()
        assert builder.pool_restarts == 0
        assert builder.fault_resubmissions == 1
        assert builder.matches_unsharded(reference)


def test_fault_free_build_with_injector_is_byte_identical():
    """The injector hook must not perturb a fault-free sharded build."""
    points = _points(4, n=120)
    spec = UDGTileSpec.default()
    plain, _ = sharded_build(points, spec, WINDOW, n_shards=3, executor="serial")
    hooked, _ = sharded_build(
        points, spec, WINDOW, n_shards=3, executor="serial", injector=FaultInjector()
    )
    assert np.array_equal(plain.edges, hooked.edges)
    assert plain.representatives == hooked.representatives
    assert plain.stats.messages_by_kind == hooked.stats.messages_by_kind
