"""FaultPlan: sampling determinism, canonical serialisation, injector replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.plan import (
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FAULT_KINDS,
    KILL,
    STALL,
    Fault,
    FaultInjector,
    FaultPlan,
    PointSpec,
    sample_plan,
)


def test_fault_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        Fault("p", 0, "explode")
    with pytest.raises(ValueError, match="non-negative"):
        Fault("p", -1, DROP)


def test_plan_rejects_duplicate_slots():
    with pytest.raises(ValueError, match="duplicate fault slot"):
        FaultPlan([Fault("p", 3, DROP), Fault("p", 3, DELAY)])


def test_plan_is_order_independent():
    a = FaultPlan([Fault("p", 1, DROP), Fault("q", 0, CRASH)])
    b = FaultPlan([Fault("q", 0, CRASH), Fault("p", 1, DROP)])
    assert a == b
    assert a.canonical() == b.canonical()


def test_canonical_round_trip():
    plan = FaultPlan(
        [Fault("network.deliver", 2, DELAY, arg=1.0), Fault("shard.build", 0, STALL, arg=0.5)]
    )
    payload = json.loads(plan.canonical())
    assert FaultPlan.from_payload(payload) == plan


def test_from_payload_rejects_unknown_version():
    with pytest.raises(ValueError, match="version"):
        FaultPlan.from_payload({"version": 99, "faults": []})


def test_count_and_for_point_filters():
    plan = FaultPlan(
        [Fault("a", 0, DROP), Fault("a", 1, DUPLICATE), Fault("b", 0, KILL)]
    )
    assert plan.count() == 3
    assert plan.count(point="a") == 2
    assert plan.count(kind=KILL) == 1
    assert set(plan.for_point("a")) == {0, 1}
    assert plan.for_point("missing") == {}


def test_sample_plan_is_seed_deterministic():
    specs = {"network.deliver": PointSpec(kinds=(DROP, DELAY), horizon=50, rate=0.3)}
    assert sample_plan(7, specs).canonical() == sample_plan(7, specs).canonical()
    assert sample_plan(7, specs).canonical() != sample_plan(8, specs).canonical()


def test_sample_plan_point_isolation():
    """Adding an injection point must not perturb the others' faults."""
    base = {"b.point": PointSpec(kinds=(DROP,), horizon=40, rate=0.4)}
    extended = dict(base)
    extended["a.point"] = PointSpec(kinds=(CRASH,), horizon=40, rate=0.4)
    solo = sample_plan(3, base)
    both = sample_plan(3, extended)
    assert [f for f in both.faults if f.point == "b.point"] == list(solo.faults)


def test_sample_plan_respects_max_faults_and_ranges():
    spec = PointSpec(
        kinds=FAULT_KINDS, horizon=200, rate=0.9, arg_range=(0.5, 1.5), max_faults=5
    )
    plan = sample_plan(11, {"p": spec})
    assert len(plan) == 5
    assert all(0.5 <= f.arg <= 1.5 for f in plan.faults)
    occurrences = [f.occurrence for f in plan.faults]
    assert occurrences == sorted(occurrences)


def test_sample_plan_accepts_seed_sequence():
    seq = np.random.SeedSequence(21)
    specs = {"p": PointSpec(kinds=(DROP,), horizon=20, rate=0.5)}
    assert sample_plan(seq, specs) == sample_plan(np.random.SeedSequence(21), specs)


def test_point_spec_validation():
    with pytest.raises(ValueError, match="non-empty"):
        PointSpec(kinds=(), horizon=1, rate=0.5)
    with pytest.raises(ValueError, match="unknown fault kind"):
        PointSpec(kinds=("nope",), horizon=1, rate=0.5)
    with pytest.raises(ValueError, match="rate"):
        PointSpec(kinds=(DROP,), horizon=1, rate=1.5)


def test_injector_replays_plan_exactly():
    plan = FaultPlan([Fault("p", 1, DROP), Fault("p", 3, DELAY, arg=2.0)])
    injector = FaultInjector(plan)
    fired = [injector.fire("p") for _ in range(5)]
    assert [f.kind if f else None for f in fired] == [None, DROP, None, DELAY, None]
    assert injector.visits("p") == 5
    assert injector.n_fired("p") == 2
    assert injector.n_fired("p", DELAY) == 1
    assert injector.visits("unseen") == 0


def test_injector_without_plan_never_fires():
    injector = FaultInjector()
    assert all(injector.fire("anything") is None for _ in range(10))
    assert injector.fired == []
